//! Seeded disk-fault campaign: inject bit rot into one replica's storage at
//! a time (backup first, then the primary) and assert the cluster detects
//! the corruption, quarantines the damaged tables, evicts and re-recruits
//! the replica under an epoch fence, and never loses — or misreports — a
//! single acked write.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use lambda_coordinator::ShardId;
use lambda_kv::{DiskFaultPlan, DiskFaultSpec, FaultVfs, FileKind, Options};
use lambda_net::NodeId;
use lambda_objects::{FieldDef, FieldKind, ObjectId};
use lambda_store::{AggregatedCluster, ClusterConfig, StoreClient};
use lambda_vm::{assemble, Module, VmValue};

/// Seed for this file's fault plans; `CHAOS_SEED` (hex with optional `0x`,
/// or decimal) overrides it so a failing nightly run can be replayed.
fn chaos_seed(default: u64) -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => {
            let t = s.trim().trim_start_matches("0x").replace('_', "");
            u64::from_str_radix(&t, 16)
                .or_else(|_| s.trim().parse())
                .unwrap_or_else(|_| panic!("unparseable CHAOS_SEED {s:?}"))
        }
        Err(_) => default,
    }
}

fn account_module() -> Module {
    assemble(
        r#"
        fn deposit(1) locals=2 {
            push.s "balance"
            host.get
            btoi
            load 0
            add
            store 1
            push.s "balance"
            load 1
            itob
            host.put
            pop
            load 1
            ret
        }
        fn balance(0) ro det {
            push.s "balance"
            host.get
            btoi
            ret
        }
        "#,
    )
    .expect("account module assembles")
}

fn account_fields() -> Vec<FieldDef> {
    vec![FieldDef { name: "balance".into(), kind: FieldKind::Scalar }]
}

fn as_int(v: VmValue) -> i64 {
    v.as_int().unwrap_or_else(|| panic!("expected int, got {v}"))
}

fn wait_for_shard(
    client: &StoreClient,
    id: &ObjectId,
    what: &str,
    timeout: Duration,
    pred: impl Fn(&lambda_coordinator::ShardInfo) -> bool,
) -> (ShardId, lambda_coordinator::ShardInfo) {
    let deadline = Instant::now() + timeout;
    loop {
        client.refresh();
        if let Some((shard, info)) = client.placement().locate(id) {
            if pred(&info) {
                return (shard, info);
            }
            assert!(Instant::now() < deadline, "timed out waiting for {what}; last {info:?}");
        } else {
            assert!(Instant::now() < deadline, "timed out waiting for {what}; object unplaced");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Deposit with retries: corruption evictions and failovers are allowed to
/// fail individual calls, never to strand them forever.
fn deposit_retry(client: &StoreClient, id: &ObjectId, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        match client.invoke(id, "deposit", vec![VmValue::Int(1)], false) {
            Ok(_) => return,
            Err(e) => {
                assert!(Instant::now() < deadline, "deposit failed through chaos: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn read_balance(client: &StoreClient, id: &ObjectId, timeout: Duration) -> i64 {
    let deadline = Instant::now() + timeout;
    loop {
        match client.invoke(id, "balance", vec![], true) {
            Ok(v) => return as_int(v),
            Err(e) => {
                assert!(Instant::now() < deadline, "balance unreadable: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn storage_idx(cluster: &AggregatedCluster, node: NodeId) -> usize {
    cluster.core.storage.iter().position(|n| n.id() == node).expect("node present")
}

/// A 4-node cluster (rf 3 + one spare) where every storage node runs on its
/// own seeded [`FaultVfs`] — quiet until a round of the campaign turns one
/// replica's table reads into bit rot.
fn chaos_cluster(seed: u64) -> (AggregatedCluster, Vec<std::sync::Arc<FaultVfs>>) {
    let mut config = ClusterConfig::for_tests();
    config.storage_nodes = 4;
    config.replication_factor = 3;
    let mut faults = Vec::new();
    let mut overrides = HashMap::new();
    for idx in 0..config.storage_nodes {
        let fault = FaultVfs::seeded(DiskFaultPlan::new(), seed + u64::from(idx));
        let mut opts = Options::small_for_tests();
        opts.vfs = fault.clone();
        opts.scrub_interval = Duration::from_millis(50);
        faults.push(fault);
        overrides.insert(idx, opts);
    }
    config.kv_overrides = overrides;
    let cluster = AggregatedCluster::build(config).unwrap();
    (cluster, faults)
}

fn storage_counter(cluster: &AggregatedCluster, name: &str) -> u64 {
    cluster.core.storage.iter().map(|n| n.registry().counter_value(name)).sum()
}

fn coord_counter(cluster: &AggregatedCluster, name: &str) -> u64 {
    cluster.core.coordinators.iter().map(|c| c.registry().counter_value(name)).sum()
}

/// Run one round of the campaign: rot `victim`'s tables, wait for the
/// coordinator to evict it under a bumped epoch, lift the rot, and wait for
/// the shard to heal back to full strength. Deposits keep flowing the whole
/// time; returns the number acked during the round.
fn rot_and_heal(
    cluster: &AggregatedCluster,
    faults: &[std::sync::Arc<FaultVfs>],
    client: &StoreClient,
    id: &ObjectId,
    victim: NodeId,
    epoch_before: u64,
    what: &str,
) -> i64 {
    let vidx = storage_idx(cluster, victim);
    // The scrubber verifies what is on disk: make sure the victim's memtable
    // has been flushed into tables the rot can land on.
    cluster.core.storage[vidx].engine().db().flush().unwrap();
    let reg = cluster.core.storage[vidx].registry();
    let quarantined_before = reg.counter_value("kv_tables_quarantined");
    let chunks_before = reg.counter_value("repair_chunks_applied");
    faults[vidx].set_plan(DiskFaultPlan::new().kind(FileKind::Table, DiskFaultSpec::bit_rot(1.0)));

    // The scrubber must notice and quarantine the rot on its own.
    let deadline = Instant::now() + Duration::from_secs(10);
    while reg.counter_value("kv_tables_quarantined") == quarantined_before {
        assert!(
            Instant::now() < deadline,
            "{what}: scrubber never quarantined the rot (detected={} scrubbed={} injected={})",
            reg.counter_value("kv_corruptions_detected"),
            reg.counter_value("scrub_blocks_verified"),
            faults[vidx].stats().total(),
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // Damage done and detected: lift the fault, as replacing the failing
    // disk would, so the repair machinery re-syncs onto healthy media.
    faults[vidx].clear();

    // Quarantine → heartbeat report → epoch-fenced eviction. Repair can
    // re-recruit and confirm the victim faster than this poll observes the
    // transient "victim absent" placement, so a completed round trip also
    // counts as eviction evidence: the victim is back as a *backup* (a
    // demoted primary never returns as primary) at a bumped epoch, and its
    // `repair_chunks_applied` moved — the purge-and-restream happened.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        client.refresh();
        if let Some((_, info)) = client.placement().locate(id) {
            let bumped = info.epoch > epoch_before && info.primary != victim;
            let evicted = bumped && !info.backups.contains(&victim);
            let readmitted = bumped
                && info.backups.contains(&victim)
                && !info.is_syncing(victim)
                && reg.counter_value("repair_chunks_applied") > chunks_before;
            if evicted || readmitted {
                break;
            }
        }
        if Instant::now() >= deadline {
            let reg = cluster.core.storage[vidx].registry();
            panic!(
                "{what}: eviction timeout; victim detected={} quarantined={} scrubbed={} \
                 reports={} coord_repairs={} faults_injected={} coord_view={:?}",
                reg.counter_value("kv_corruptions_detected"),
                reg.counter_value("kv_tables_quarantined"),
                reg.counter_value("scrub_blocks_verified"),
                reg.counter_value("node_corruption_reports"),
                coord_counter(cluster, "coord_corruption_repairs"),
                faults[vidx].stats().total(),
                client.placement().locate(id),
            );
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    let mut acked = 0i64;
    for _ in 0..5 {
        deposit_retry(client, id, Duration::from_secs(15));
        acked += 1;
    }

    let (_, healed) =
        wait_for_shard(client, id, &format!("{what}: re-heal"), Duration::from_secs(20), |info| {
            info.replicas().len() == 3 && info.syncing.is_empty() && !info.lost
        });
    // Quiesce: hold the healed configuration steady for a moment so one
    // round's tail (late reports, in-flight repairs) cannot bleed into the
    // next round's fault injection.
    let mut stable_since = Instant::now();
    let mut last_epoch = healed.epoch;
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        std::thread::sleep(Duration::from_millis(50));
        client.refresh();
        let (_, info) = client.placement().locate(id).expect("object placed");
        if info.epoch != last_epoch || info.replicas().len() != 3 || !info.syncing.is_empty() {
            assert!(Instant::now() < deadline, "{what}: configuration never quiesced: {info:?}");
            last_epoch = info.epoch;
            stable_since = Instant::now();
            continue;
        }
        if stable_since.elapsed() >= Duration::from_millis(500) {
            break;
        }
    }
    acked
}

/// The headline invariant of the storage fault model: a seeded disk-fault
/// campaign corrupting one replica at a time — first a backup, then the
/// primary — loses no acked write and never serves wrong data, while the
/// detection/quarantine/repair counters all move.
#[test]
fn disk_fault_campaign_loses_no_acked_write() {
    let (cluster, faults) = chaos_cluster(chaos_seed(0x0d15_c0de));
    let client = cluster.client();
    client.deploy_type("Account", account_fields(), &account_module()).unwrap();
    let id = ObjectId::from("acct/chaos");
    client.create_object("Account", &id, &[]).unwrap();

    // Enough acked writes that every replica has real on-disk state.
    let mut acked = 0i64;
    for _ in 0..40 {
        client.invoke(&id, "deposit", vec![VmValue::Int(1)], false).unwrap();
        acked += 1;
    }

    // Round 1: rot a backup's tables.
    client.refresh();
    let (_, before) = client.placement().locate(&id).unwrap();
    let backup = *before.backups.first().expect("rf 3 shard has backups");
    acked += rot_and_heal(&cluster, &faults, &client, &id, backup, before.epoch, "backup rot");

    // Round 2: rot the current primary's tables; it must demote, not serve
    // corrupt state.
    client.refresh();
    let (_, mid) = client.placement().locate(&id).unwrap();
    let primary = mid.primary;
    acked += rot_and_heal(&cluster, &faults, &client, &id, primary, mid.epoch, "primary rot");
    client.refresh();
    let (_, after) = client.placement().locate(&id).unwrap();
    assert_ne!(after.primary, primary, "corrupt primary must be demoted");

    // Zero acked-write loss, and the balance is *right*, not merely present.
    let balance = read_balance(&client, &id, Duration::from_secs(15));
    assert_eq!(balance, acked, "acked deposits lost or invented during the campaign");

    // Every stage of the pipeline left a trace.
    assert!(storage_counter(&cluster, "kv_corruptions_detected") >= 2, "both rounds detected");
    assert!(storage_counter(&cluster, "kv_tables_quarantined") >= 2, "corrupt tables quarantined");
    assert!(storage_counter(&cluster, "scrub_blocks_verified") >= 1, "scrubbers ran");
    assert!(storage_counter(&cluster, "node_corruption_reports") >= 2, "nodes reported upward");
    assert!(
        coord_counter(&cluster, "coord_corruption_repairs") >= 2,
        "coordinator acted on reports"
    );
    assert!(
        faults.iter().map(|f| f.stats().total()).sum::<u64>() >= 1,
        "campaign injected no faults at all"
    );

    cluster.shutdown();
}

/// Scrubber smoke test: on a healthy cluster the background scrubbers make
/// verification progress on every node and never cry wolf.
#[test]
fn scrubbers_verify_healthy_cluster_without_false_positives() {
    let (cluster, faults) = chaos_cluster(chaos_seed(0xc1ea_0000));
    let client = cluster.client();
    client.deploy_type("Account", account_fields(), &account_module()).unwrap();
    let id = ObjectId::from("acct/clean");
    client.create_object("Account", &id, &[]).unwrap();
    for _ in 0..40 {
        client.invoke(&id, "deposit", vec![VmValue::Int(1)], false).unwrap();
    }
    for node in &cluster.core.storage {
        node.engine().db().flush().unwrap();
    }

    // Give every node's scrubber (50ms cadence) a few cycles over the
    // flushed tables.
    let deadline = Instant::now() + Duration::from_secs(10);
    while storage_counter(&cluster, "scrub_blocks_verified") == 0 {
        assert!(Instant::now() < deadline, "scrubbers made no progress");
        std::thread::sleep(Duration::from_millis(20));
    }

    assert_eq!(storage_counter(&cluster, "kv_corruptions_detected"), 0, "false positive");
    assert_eq!(storage_counter(&cluster, "kv_tables_quarantined"), 0, "healthy table quarantined");
    assert_eq!(read_balance(&client, &id, Duration::from_secs(10)), 40);
    assert!(faults.iter().all(|f| f.stats().total() == 0), "quiet plans must inject nothing");

    cluster.shutdown();
}
