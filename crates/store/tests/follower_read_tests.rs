//! Leased follower reads: linearizability under concurrent writers,
//! seeded network faults, and primary failover mid-lease.
//!
//! The invariant checked throughout: a read-only invocation may execute at
//! any replica, but must never return a value older than a write the
//! client observed acked before the read started. Syncing recruits never
//! serve reads, and a backup whose lease lapsed redirects the client to
//! the primary rather than answering stale.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::time::{Duration, Instant};

use lambda_net::{FaultPlan, FaultSpec, NodeId};
use lambda_objects::{FieldDef, FieldKind, InvokeError, ObjectId};
use lambda_store::{AggregatedCluster, ClusterConfig, StoreClient, StoreRequest};
use lambda_vm::{assemble, Module, VmValue};

/// Seed for this file's fault plans; `CHAOS_SEED` (hex with optional `0x`,
/// or decimal) overrides it so a failing nightly run can be replayed.
fn chaos_seed(default: u64) -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => {
            let t = s.trim().trim_start_matches("0x").replace('_', "");
            u64::from_str_radix(&t, 16)
                .or_else(|_| s.trim().parse())
                .unwrap_or_else(|_| panic!("unparseable CHAOS_SEED {s:?}"))
        }
        Err(_) => default,
    }
}

fn counter_module() -> Module {
    assemble(
        r#"
        fn bump(1) locals=2 {
            push.s "count"
            host.get
            btoi
            load 0
            add
            store 1
            push.s "count"
            load 1
            itob
            host.put
            pop
            load 1
            ret
        }
        fn read(0) ro det {
            push.s "count"
            host.get
            btoi
            ret
        }
        "#,
    )
    .expect("counter module assembles")
}

fn counter_fields() -> Vec<FieldDef> {
    vec![FieldDef { name: "count".into(), kind: FieldKind::Scalar }]
}

fn storage_idx(cluster: &AggregatedCluster, node: NodeId) -> usize {
    cluster.core.storage.iter().position(|n| n.id() == node).expect("node present")
}

fn wait_for_failover(client: &StoreClient, id: &ObjectId, dead: NodeId, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        client.refresh();
        if let Some((_, info)) = client.placement().locate(id) {
            if !info.lost && info.primary != dead {
                return;
            }
        }
        assert!(Instant::now() < deadline, "failover off {dead} never completed");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Drive `writers` bump threads and `readers` staleness-checking read
/// threads against one counter object while `disrupt` runs on the main
/// thread; returns the total acked bump count.
fn run_monotonic_workload(
    cluster: &AggregatedCluster,
    id: &ObjectId,
    writers: usize,
    readers: usize,
    writes_per_writer: usize,
    disrupt: impl FnOnce(&AtomicI64),
) -> i64 {
    let acked = AtomicI64::new(0);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..writers {
            let client = cluster.client();
            let acked = &acked;
            s.spawn(move || {
                for _ in 0..writes_per_writer {
                    // Ride through failover noise: the write is only
                    // counted as acked once some attempt returns Ok.
                    let deadline = Instant::now() + Duration::from_secs(20);
                    loop {
                        match client.invoke(id, "bump", vec![VmValue::Int(1)], false) {
                            Ok(_) => break,
                            Err(e) => {
                                assert!(Instant::now() < deadline, "bump starved: {e}");
                                std::thread::sleep(Duration::from_millis(5));
                            }
                        }
                    }
                    acked.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        for _ in 0..readers {
            let client = cluster.client();
            let acked = &acked;
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    // Lower bound fixed *before* the read starts: every
                    // bump acked by then must be visible, wherever the
                    // read executes. (A read may also observe a write that
                    // is applied at its replica but not yet acked — that is
                    // allowed; missing an *acked* write is not.)
                    let low = acked.load(Ordering::SeqCst);
                    match client.invoke(id, "read", vec![], true) {
                        Ok(v) => {
                            let got = v.as_int().expect("int counter");
                            assert!(
                                got >= low,
                                "stale read: got {got}, but {low} bumps were acked first"
                            );
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(2)),
                    }
                }
            });
        }
        disrupt(&acked);
        // Writers finish on their own; readers spin until released.
        while acked.load(Ordering::SeqCst) < (writers * writes_per_writer) as i64 {
            std::thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::Release);
    });
    acked.load(Ordering::SeqCst)
}

/// Steady state: reads spread across the replica set under leases and stay
/// linearizable against concurrent writers; backups demonstrably serve.
#[test]
fn follower_reads_linearizable_under_concurrent_writes() {
    let mut config = ClusterConfig::for_tests();
    config.storage_nodes = 3;
    config.replication_factor = 3;
    let cluster = AggregatedCluster::build(config).unwrap();
    let client = cluster.client();
    client.deploy_type("Counter", counter_fields(), &counter_module()).unwrap();
    let id = ObjectId::from("cnt/steady");
    client.create_object("Counter", &id, &[]).unwrap();

    let total = run_monotonic_workload(&cluster, &id, 2, 2, 100, |_| {});
    assert_eq!(total, 200);
    let v = client.invoke(&id, "read", vec![], true).unwrap();
    assert_eq!(v.as_int(), Some(200));

    let follower_reads: u64 = cluster.core.storage.iter().map(|n| n.stats().follower_reads).sum();
    assert!(follower_reads > 0, "no read ever executed at a backup");
    cluster.shutdown();
}

/// Kill the primary mid-lease while writers and readers run: reads during
/// the lease-expiry/failover window either redirect (lease rejections) or
/// answer from a replica that holds every acked write — never stale.
#[test]
fn follower_reads_survive_primary_failover_mid_lease() {
    let mut config = ClusterConfig::for_tests();
    config.storage_nodes = 4;
    config.replication_factor = 3;
    let cluster = AggregatedCluster::build(config).unwrap();
    let client = cluster.client();
    client.deploy_type("Counter", counter_fields(), &counter_module()).unwrap();
    let id = ObjectId::from("cnt/failover");
    client.create_object("Counter", &id, &[]).unwrap();

    client.refresh();
    let (_, before) = client.placement().locate(&id).unwrap();
    let primary = before.primary;

    let backups = before.backups.clone();
    let total = run_monotonic_workload(&cluster, &id, 2, 3, 120, |acked| {
        // Let leases circulate and some writes land, then depose the
        // grantor while its grants are still live at the backups.
        while acked.load(Ordering::SeqCst) < 40 {
            std::thread::sleep(Duration::from_millis(5));
        }
        cluster.core.kill_storage_node(storage_idx(&cluster, primary));
        // With the grantor dead, renewals stop and every held lease runs
        // out after `lease_duration`; until the new primary's replication
        // traffic re-grants, a read at a surviving backup must be fenced,
        // not answered. Probe the backups directly (the workload's own
        // readers may sit out this window parked on RPC timeouts to the
        // dead node) and insist on seeing the redirect.
        let probe = StoreRequest::Invoke {
            object: id.0.clone(),
            method: "read".into(),
            args: vec![],
            read_only: true,
            internal: false,
            collect_read_set: false,
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        'fenced: loop {
            for &b in &backups {
                if matches!(client.raw(b, &probe), Err(InvokeError::LeaseExpired(_))) {
                    break 'fenced;
                }
            }
            assert!(
                Instant::now() < deadline,
                "no backup ever fenced a read after the lease grantor died"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        wait_for_failover(&client, &id, primary, Duration::from_secs(15));
    });
    assert_eq!(total, 240);

    // The failover window forces the lease machinery through its paces:
    // expired/stale-epoch leases must have bounced at least one read back
    // toward the primary instead of serving it.
    let rejections: u64 = cluster.core.storage.iter().map(|n| n.stats().lease_rejections).sum();
    assert!(rejections > 0, "no read was ever fenced by an expired lease");

    let v = client.invoke(&id, "read", vec![], true).unwrap();
    assert_eq!(v.as_int(), Some(240));
    cluster.shutdown();
}

/// The failover scenario under a seeded fault plan on every storage link:
/// drops, duplicates, delays and reply loss in the replication and lease
/// traffic never let a stale read through, and the recruit that replaces
/// the dead primary is never read from while it is still syncing.
#[test]
fn follower_reads_chaos_failover_stays_linearizable() {
    let mut config = ClusterConfig::for_tests();
    config.storage_nodes = 4;
    config.replication_factor = 3;
    let cluster = AggregatedCluster::build(config).unwrap();
    let client = cluster.client();
    client.deploy_type("Counter", counter_fields(), &counter_module()).unwrap();
    let id = ObjectId::from("cnt/chaos");
    client.create_object("Counter", &id, &[]).unwrap();

    // Data-plane faults between storage nodes only; the coordinator
    // control plane stays clean so the failure detector exercises the
    // lease fencing rather than a liveness lottery.
    let spec = FaultSpec {
        drop: 0.02,
        duplicate: 0.05,
        delay: 0.30,
        delay_spike: Duration::from_millis(1),
        reply_loss: 0.02,
    };
    let mut plan = FaultPlan::new();
    for &a in &cluster.core.storage_ids {
        for &b in &cluster.core.storage_ids {
            if a != b {
                plan = plan.link(a, b, spec);
            }
        }
    }
    cluster.core.net.set_fault_plan(plan, chaos_seed(0x001e_a5ed));

    client.refresh();
    let (_, before) = client.placement().locate(&id).unwrap();
    let primary = before.primary;

    let total = run_monotonic_workload(&cluster, &id, 2, 2, 80, |acked| {
        while acked.load(Ordering::SeqCst) < 30 {
            std::thread::sleep(Duration::from_millis(5));
        }
        cluster.core.kill_storage_node(storage_idx(&cluster, primary));
        wait_for_failover(&client, &id, primary, Duration::from_secs(20));
    });
    assert_eq!(total, 160);

    let v = client.invoke(&id, "read", vec![], true).unwrap();
    assert_eq!(v.as_int(), Some(160));
    cluster.shutdown();
}
