//! Admission-control integration tests: shedding semantics at the
//! aggregated nodes, client-side retry of shed requests, and the
//! guarantee that internal traffic (replication, repair) is never shed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lambda_objects::{FieldDef, FieldKind, InvokeError, ObjectId};
use lambda_store::{AggregatedCluster, ClusterConfig, StoreRequest, StoreResponse};
use lambda_vm::{assemble, Module, VmValue};

fn counter_module() -> Module {
    assemble(
        r#"
        fn bump(1) locals=2 {
            push.s "n"
            host.get
            btoi
            load 0
            add
            store 1
            push.s "n"
            load 1
            itob
            host.put
            pop
            load 1
            ret
        }
        fn read(0) ro det {
            push.s "n"
            host.get
            btoi
            ret
        }
        fn spin(1) locals=2 {
            ; arg 0: iterations of busy work
            load 0
            store 1
        loop:
            load 1
            jz done
            load 1
            push.i 1
            sub
            store 1
            jmp loop
        done:
            push.i 0
            ret
        }
        "#,
    )
    .expect("counter module assembles")
}

fn counter_fields() -> Vec<FieldDef> {
    vec![FieldDef { name: "n".into(), kind: FieldKind::Scalar }]
}

/// A cluster whose storage nodes trip admission control almost
/// immediately: one worker, run queue depth 1.
fn tiny_queue_cluster() -> AggregatedCluster {
    let config = ClusterConfig { workers: 1, run_queue_depth: 1, ..ClusterConfig::for_tests() };
    AggregatedCluster::build(config).unwrap()
}

fn deploy_counter(cluster: &AggregatedCluster, object: &ObjectId) {
    let client = cluster.client();
    client.deploy_type("Counter", counter_fields(), &counter_module()).unwrap();
    // Empty bytes decode to 0 under `btoi` (little-endian).
    client.create_object("Counter", object, &[("n", b"" as &[u8])]).unwrap();
}

/// Over-depth client requests are refused with `Overloaded` — a distinct,
/// immediately-retryable signal — never with `DeadlineExceeded` (the
/// request was shed before burning any budget) and never a hang.
#[test]
fn overload_sheds_with_overloaded_error_not_deadline() {
    let cluster = tiny_queue_cluster();
    let client = cluster.client();
    client.deploy_type("Counter", counter_fields(), &counter_module()).unwrap();
    // Distinct objects so nothing queues behind an object guard: each
    // request occupies the single worker for the whole VM spin, so a
    // synchronized volley of 24 must overflow the depth-1 run queue.
    let objects: Vec<ObjectId> =
        (0..24).map(|i| ObjectId::new(format!("cnt{i}").into_bytes())).collect();
    for o in &objects {
        client.create_object("Counter", o, &[("n", b"" as &[u8])]).unwrap();
    }
    client.refresh();
    let primary = client.placement().locate(&objects[0]).expect("placement").1.primary;

    // `raw` bypasses the client's retry loop: we see each attempt's
    // verbatim outcome. Aim everything at the shard primary at once.
    let barrier = Arc::new(std::sync::Barrier::new(24));
    let threads: Vec<_> = objects
        .iter()
        .map(|object| {
            let client = cluster.client();
            let object = object.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let req = StoreRequest::Invoke {
                    object: object.0.clone(),
                    method: "spin".into(),
                    args: vec![VmValue::Int(100_000)],
                    read_only: false,
                    internal: false,
                    collect_read_set: false,
                };
                barrier.wait();
                client.raw(primary, &req)
            })
        })
        .collect();

    let mut ok = 0u64;
    let mut shed = 0u64;
    for t in threads {
        match t.join().unwrap() {
            Ok(StoreResponse::Value(_)) => ok += 1,
            Ok(other) => panic!("unexpected reply {other:?}"),
            Err(InvokeError::Overloaded(msg)) => {
                assert!(msg.contains("run queue full"), "shed reason names the queue: {msg}");
                shed += 1;
            }
            Err(other) => panic!("shed must surface as Overloaded, got {other:?}"),
        }
    }
    assert!(shed >= 1, "24 concurrent requests against depth-1 queue must shed (ok={ok})");
    assert!(ok >= 1, "the queue still serves admitted requests");

    let node_shed: u64 = cluster.core.storage.iter().map(|n| n.stats().shed).sum();
    assert!(node_shed >= shed, "node gauges record every shed ({node_shed} < {shed})");
    cluster.shutdown();
}

/// Shed requests retried by the StoreClient succeed within the deadline
/// budget: the full blocking `invoke` path absorbs overload transparently.
#[test]
fn shed_requests_retried_by_client_succeed() {
    let cluster = tiny_queue_cluster();
    let object = ObjectId::new(b"cnt".to_vec());
    deploy_counter(&cluster, &object);

    let succeeded = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..16)
        .map(|t| {
            let client = cluster.client();
            let object = object.clone();
            let succeeded = Arc::clone(&succeeded);
            std::thread::spawn(move || {
                for i in 0..3 {
                    let v = client
                        .invoke(&object, "bump", vec![VmValue::Int(1)], false)
                        .unwrap_or_else(|e| panic!("thread {t} op {i}: {e}"));
                    assert!(v.as_int().is_some());
                    succeeded.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(succeeded.load(Ordering::Relaxed), 48);

    // The counter saw every increment exactly once (retries are
    // deduplicated by invocation id).
    let client = cluster.client();
    let v = client.invoke(&object, "read", vec![], true).unwrap();
    assert_eq!(v.as_int(), Some(48));

    let node_shed: u64 = cluster.core.storage.iter().map(|n| n.stats().shed).sum();
    assert!(node_shed > 0, "depth-1 queue under 16 closed-loop writers must shed at least once");
    cluster.shutdown();
}

/// Internal traffic is never shed: while client requests are being
/// refused, replication (node-origin) keeps flowing, so every acked write
/// is fully replicated and no write is lost.
#[test]
fn replication_and_internal_traffic_never_shed() {
    let cluster = tiny_queue_cluster();
    let object = ObjectId::new(b"cnt".to_vec());
    deploy_counter(&cluster, &object);

    let threads: Vec<_> = (0..12)
        .map(|_| {
            let client = cluster.client();
            let object = object.clone();
            std::thread::spawn(move || {
                let mut acked = 0u64;
                for _ in 0..4 {
                    if client.invoke(&object, "bump", vec![VmValue::Int(1)], false).is_ok() {
                        acked += 1;
                    }
                }
                acked
            })
        })
        .collect();
    let acked: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(acked > 0);

    let node_shed: u64 = cluster.core.storage.iter().map(|n| n.stats().shed).sum();
    assert!(node_shed > 0, "client overload must be visible in the shed gauge");

    // Every acked write was replicated despite the shedding: the backups
    // applied replication batches (node-origin traffic was admitted).
    let applied: u64 = cluster.core.storage.iter().map(|n| n.stats().replications_applied).sum();
    assert!(applied > 0, "replication must keep flowing under client overload");

    // Zero acked-write loss: the counter equals the number of acks (reads
    // retry through any residual shedding).
    let client = cluster.client();
    let v = client.invoke(&object, "read", vec![], true).unwrap();
    assert_eq!(v.as_int(), Some(acked as i64), "acked writes survive overload");
    cluster.shutdown();
}
