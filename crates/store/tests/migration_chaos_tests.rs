//! Crash-safe live migration: the chaos campaign for the coordinator-owned
//! migration protocol. Every scenario kills a protocol participant
//! mid-migration — source primary, target primary, a coordinator replica —
//! and checks the same invariants afterwards: the object is served by
//! exactly one shard, no acked write is lost, and no invocation executed
//! twice (dedup records ride the migration snapshot).
//!
//! Override the fault-plan seed with `CHAOS_SEED=<hex|dec>` to replay a
//! nightly failure deterministically.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lambda_coordinator::{ClusterState, ShardId, PAXOS_ID_OFFSET};
use lambda_net::{FaultPlan, FaultSpec, NodeId};
use lambda_objects::{FieldDef, FieldKind, ObjectId};
use lambda_store::{AggregatedCluster, ClusterConfig, ClusterCore, StoreClient};
use lambda_vm::{assemble, Module, VmValue};

/// Seed for this file's fault plans; `CHAOS_SEED` (hex with optional `0x`,
/// or decimal) overrides it so a failing nightly run can be replayed.
fn chaos_seed(default: u64) -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => {
            let t = s.trim().trim_start_matches("0x").replace('_', "");
            u64::from_str_radix(&t, 16)
                .or_else(|_| s.trim().parse())
                .unwrap_or_else(|_| panic!("unparseable CHAOS_SEED {s:?}"))
        }
        Err(_) => default,
    }
}

fn account_module() -> Module {
    assemble(
        r#"
        fn deposit(1) locals=2 {
            push.s "balance"
            host.get
            btoi
            load 0
            add
            store 1
            push.s "balance"
            load 1
            itob
            host.put
            pop
            load 1
            ret
        }
        fn balance(0) ro det {
            push.s "balance"
            host.get
            btoi
            ret
        }
        "#,
    )
    .expect("account module assembles")
}

fn account_fields() -> Vec<FieldDef> {
    vec![FieldDef { name: "balance".into(), kind: FieldKind::Scalar }]
}

fn wall_module() -> Module {
    assemble(
        r#"
        fn post(1) {
            push.s "posts"
            load 0
            host.push
            ret
        }
        fn feed(1) ro {
            push.s "posts"
            load 0
            push.i 0
            host.scan
            ret
        }
        "#,
    )
    .expect("wall module assembles")
}

fn wall_fields() -> Vec<FieldDef> {
    vec![FieldDef { name: "posts".into(), kind: FieldKind::Collection }]
}

fn as_int(v: VmValue) -> i64 {
    v.as_int().unwrap_or_else(|| panic!("expected int, got {v}"))
}

fn storage_idx(cluster: &AggregatedCluster, node: NodeId) -> usize {
    cluster.core.storage.iter().position(|n| n.id() == node).expect("node present")
}

/// Crash coordinator replica `idx`: stop the service and cut both its RPC
/// endpoints (the client-facing one and the Paxos peer endpoint).
fn kill_coordinator(core: &ClusterCore, idx: usize) {
    let id = core.coordinators[idx].id();
    core.coordinators[idx].shutdown();
    core.net.isolate(id);
    core.net.isolate(NodeId(id.0 + PAXOS_ID_OFFSET));
}

/// A total stall: every message on the link vanishes.
fn blackhole() -> FaultSpec {
    FaultSpec {
        drop: 1.0,
        duplicate: 0.0,
        delay: 0.0,
        delay_spike: Duration::ZERO,
        reply_loss: 0.0,
    }
}

/// Wait until the client's placement routes `id` to `shard` with no
/// migration of it still in flight.
fn wait_routed_to(client: &StoreClient, id: &ObjectId, shard: ShardId, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        client.refresh();
        let st = client.placement().snapshot();
        if st.shard_for_object(id.as_bytes()) == Some(shard)
            && !st.migrations.contains_key(id.as_bytes())
        {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "object never settled on shard {shard}: routed {:?}, migration {:?}",
            st.shard_for_object(id.as_bytes()),
            st.migrations.get(id.as_bytes()),
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Wait until the client sees a migration of `id` in flight (the plan is
/// chosen into the log before any data moves, so observing the entry
/// guarantees the kill that follows lands mid-protocol).
fn wait_migration_visible(client: &StoreClient, id: &ObjectId, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        client.refresh();
        if client.placement().snapshot().migrations.contains_key(id.as_bytes()) {
            return;
        }
        assert!(Instant::now() < deadline, "migration plan never became visible");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Keep retrying `migrate_object` until it lands: mid-chaos attempts may
/// be aborted by failovers — the protocol's job is that a retry converges.
fn migrate_until_done(client: &StoreClient, id: &ObjectId, shard: ShardId, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        match client.migrate_object(id, shard) {
            Ok(()) => return,
            Err(e) => {
                assert!(Instant::now() < deadline, "migration never converged: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// `(acked, unacked)` payloads a background writer saw — input to
/// [`audit_feed`]'s exactly-once check.
type WriterAudit = (Vec<Vec<u8>>, Vec<Vec<u8>>);

/// Background writer posting uniquely-tagged entries until stopped.
/// Returns `(acked, unacked)` payloads for the exactly-once audit.
fn spawn_writer(
    client: StoreClient,
    wall: ObjectId,
    tag: &'static str,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<WriterAudit> {
    std::thread::spawn(move || {
        let mut acked = Vec::new();
        let mut unacked = Vec::new();
        let mut i = 0u64;
        while !stop.load(Ordering::Relaxed) {
            let text = format!("{tag}-{i}").into_bytes();
            i += 1;
            match client.invoke(&wall, "post", vec![VmValue::Bytes(text.clone())], false) {
                Ok(_) => acked.push(text),
                // A failed post may or may not have landed; the audit only
                // requires that it did not land twice.
                Err(_) => unacked.push(text),
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        (acked, unacked)
    })
}

/// Read the full feed (routed like a mutation, so it audits the
/// authoritative replica chain) and verify exactly-once semantics.
fn audit_feed(client: &StoreClient, wall: &ObjectId, acked: &[Vec<u8>], unacked: &[Vec<u8>]) {
    let deadline = Instant::now() + Duration::from_secs(15);
    let feed = loop {
        match client.invoke(wall, "feed", vec![VmValue::Int(100_000)], false) {
            Ok(v) => break v,
            Err(e) => {
                assert!(Instant::now() < deadline, "feed unreadable after chaos: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    let VmValue::List(rows) = feed else { panic!("expected list, got {feed}") };
    let count = |text: &Vec<u8>| {
        rows.iter().filter(|r| matches!(r, VmValue::Bytes(b) if b == text)).count()
    };
    let missing: Vec<String> = acked
        .iter()
        .filter(|t| count(t) == 0)
        .map(|t| String::from_utf8_lossy(t).into_owned())
        .collect();
    if !missing.is_empty() {
        eprintln!(
            "AUDIT: rows={} acked={} unacked={} missing={} first={:?} last={:?}",
            rows.len(),
            acked.len(),
            unacked.len(),
            missing.len(),
            missing.first(),
            missing.last()
        );
    }
    for text in acked {
        assert_eq!(
            count(text),
            1,
            "acked post {:?} must survive the migration exactly once",
            String::from_utf8_lossy(text)
        );
    }
    for text in unacked {
        assert!(count(text) <= 1, "unacked post {:?} landed twice", String::from_utf8_lossy(text));
    }
}

fn sum_coord_counter(cluster: &AggregatedCluster, name: &str) -> u64 {
    cluster.core.coordinators.iter().map(|c| c.registry().counter_value(name)).sum()
}

/// The shard the migration should target: any shard other than `from`.
fn other_shard(state: &ClusterState, from: ShardId) -> ShardId {
    *state.shards.keys().find(|&&s| s != from).expect("cluster has a second shard")
}

/// Happy path plus pin hygiene: a migration away from the hash home pins
/// the object at the target; migrating back to the hash home retires the
/// pin instead of writing a redundant one, and the `coord_pins` gauge
/// tracks the directory size throughout. The source's copy is purged once
/// the move commits.
#[test]
fn migration_round_trip_keeps_pin_directory_clean() {
    let mut config = ClusterConfig::for_tests();
    config.storage_nodes = 4;
    config.shards = 2;
    config.replication_factor = 2;
    let cluster = AggregatedCluster::build(config).unwrap();
    let client = cluster.client();
    client.deploy_type("Account", account_fields(), &account_module()).unwrap();
    let id = ObjectId::from("acct/roundtrip");
    client.create_object("Account", &id, &[]).unwrap();
    for _ in 0..10 {
        client.invoke(&id, "deposit", vec![VmValue::Int(1)], false).unwrap();
    }

    client.refresh();
    let state = client.placement().snapshot();
    let home = state.shard_for_object(id.as_bytes()).expect("placed");
    let away = other_shard(&state, home);
    let home_primary = state.shard(home).unwrap().primary;

    // Away from home: the commit must pin the object at the target.
    client.migrate_object(&id, away).unwrap();
    wait_routed_to(&client, &id, away, Duration::from_secs(10));
    let st = client.placement().snapshot();
    assert_eq!(st.pins.get(id.as_bytes()), Some(&away), "off-home landing needs a pin");
    let pins_gauge =
        cluster.core.coordinators.iter().map(|c| c.registry().gauge_value("coord_pins")).max();
    assert_eq!(pins_gauge, Some(1), "coord_pins must track the directory");
    assert_eq!(
        as_int(client.invoke(&id, "balance", vec![], true).unwrap()),
        10,
        "state must survive the move"
    );
    // The source retires its copy after the commit (retirement runs just
    // behind the routing flip, so poll briefly).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let listed = client.list_objects(home_primary).unwrap().contains(&id);
        if !listed {
            break;
        }
        assert!(Instant::now() < deadline, "source primary never purged the moved object");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Writes keep working at the new home (and dedup state moved with the
    // object, so this is a fresh invocation, not a replay).
    assert_eq!(as_int(client.invoke(&id, "deposit", vec![VmValue::Int(5)], false).unwrap()), 15);

    // Back to the hash home: pin hygiene retires the pin instead of
    // pinning the object to its own hash placement.
    client.migrate_object(&id, home).unwrap();
    wait_routed_to(&client, &id, home, Duration::from_secs(10));
    let st = client.placement().snapshot();
    assert!(!st.pins.contains_key(id.as_bytes()), "hash-home landing must unpin");
    let pins_gauge =
        cluster.core.coordinators.iter().map(|c| c.registry().gauge_value("coord_pins")).max();
    assert_eq!(pins_gauge, Some(0), "coord_pins must drop with the retired pin");
    assert_eq!(as_int(client.invoke(&id, "balance", vec![], true).unwrap()), 15);

    assert!(sum_coord_counter(&cluster, "coord_migrations_committed") >= 2);
    // The driver counts a completion one poll-iteration after the routing
    // flip becomes visible, so give it a moment.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let completed: u64 = cluster
            .core
            .storage
            .iter()
            .map(|n| n.registry().counter_value("node_migrations_completed"))
            .sum();
        if completed >= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "source drivers never counted their completions (completed={completed})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    cluster.shutdown();
}

/// Kill the **source primary** mid-copy. The replicated plan survives the
/// crash, the coordinator aborts it when the source shard fails over (the
/// driver died with its node), and a retry converges — with every acked
/// write intact and nothing executed twice.
#[test]
fn migration_survives_source_primary_crash() {
    let mut config = ClusterConfig::for_tests();
    config.storage_nodes = 4;
    config.shards = 2;
    config.replication_factor = 2;
    let cluster = AggregatedCluster::build(config).unwrap();
    let client = cluster.client();
    client.deploy_type("Wall", wall_fields(), &wall_module()).unwrap();
    let wall = ObjectId::from("wall/src-crash");
    client.create_object("Wall", &wall, &[]).unwrap();

    client.refresh();
    let state = client.placement().snapshot();
    let from = state.shard_for_object(wall.as_bytes()).expect("placed");
    let to = other_shard(&state, from);
    let src_primary = state.shard(from).unwrap().primary;
    let dst_primary = state.shard(to).unwrap().primary;

    let stop = Arc::new(AtomicBool::new(false));
    let writer = spawn_writer(cluster.client(), wall.clone(), "src", Arc::clone(&stop));

    // Stall the copy stream so the kill is guaranteed to land mid-protocol,
    // then start the migration from a background client.
    let mut plan = FaultPlan::new();
    plan = plan.between(src_primary, dst_primary, blackhole());
    cluster.core.net.set_fault_plan(plan, chaos_seed(0x0b5e_55ed));

    let mig_client = cluster.client();
    let mig_wall = wall.clone();
    let migrator = std::thread::spawn(move || {
        migrate_until_done(&mig_client, &mig_wall, to, Duration::from_secs(40));
    });

    wait_migration_visible(&client, &wall, Duration::from_secs(10));
    cluster.core.kill_storage_node(storage_idx(&cluster, src_primary));
    cluster.core.net.clear_fault_plan();

    // The retry (driven by the failed-over source primary) must converge.
    migrator.join().expect("migrator panicked");
    wait_routed_to(&client, &wall, to, Duration::from_secs(20));
    stop.store(true, Ordering::Relaxed);
    let (acked, unacked) = writer.join().expect("writer panicked");

    assert!(
        sum_coord_counter(&cluster, "coord_migrations_aborted") >= 1,
        "the crashed attempt must abort, not dangle"
    );
    assert!(!acked.is_empty(), "writer never got a post through");
    audit_feed(&client, &wall, &acked, &unacked);
    cluster.shutdown();
}

/// Kill the **target primary** mid-copy. The coordinator aborts the plan
/// when the target shard fails over; the source keeps serving throughout
/// (it never gave up its copy), and the retried migration lands on the
/// target's new primary.
#[test]
fn migration_survives_target_primary_crash() {
    let mut config = ClusterConfig::for_tests();
    config.storage_nodes = 4;
    config.shards = 2;
    config.replication_factor = 2;
    let cluster = AggregatedCluster::build(config).unwrap();
    let client = cluster.client();
    client.deploy_type("Wall", wall_fields(), &wall_module()).unwrap();
    let wall = ObjectId::from("wall/dst-crash");
    client.create_object("Wall", &wall, &[]).unwrap();

    client.refresh();
    let state = client.placement().snapshot();
    let from = state.shard_for_object(wall.as_bytes()).expect("placed");
    let to = other_shard(&state, from);
    let src_primary = state.shard(from).unwrap().primary;
    let dst_primary = state.shard(to).unwrap().primary;

    let stop = Arc::new(AtomicBool::new(false));
    let writer = spawn_writer(cluster.client(), wall.clone(), "dst", Arc::clone(&stop));

    let mut plan = FaultPlan::new();
    plan = plan.between(src_primary, dst_primary, blackhole());
    cluster.core.net.set_fault_plan(plan, chaos_seed(0x7a26_e7ed));

    let mig_client = cluster.client();
    let mig_wall = wall.clone();
    let migrator = std::thread::spawn(move || {
        migrate_until_done(&mig_client, &mig_wall, to, Duration::from_secs(40));
    });

    wait_migration_visible(&client, &wall, Duration::from_secs(10));
    cluster.core.kill_storage_node(storage_idx(&cluster, dst_primary));
    cluster.core.net.clear_fault_plan();

    migrator.join().expect("migrator panicked");
    wait_routed_to(&client, &wall, to, Duration::from_secs(20));
    stop.store(true, Ordering::Relaxed);
    let (acked, unacked) = writer.join().expect("writer panicked");

    // The object's new home is the failed-over target shard, not the dead
    // primary.
    client.refresh();
    let now = client.placement().snapshot();
    let info = now.shard(to).unwrap();
    assert!(!info.lost && info.primary != dst_primary, "target shard must have failed over");
    assert!(
        sum_coord_counter(&cluster, "coord_migrations_aborted") >= 1,
        "the attempt against the dead target must abort"
    );
    assert!(!acked.is_empty(), "writer never got a post through");
    audit_feed(&client, &wall, &acked, &unacked);
    cluster.shutdown();
}

/// Kill a **coordinator replica** (the proposers' first contact, i.e. the
/// usual leader) mid-copy. The plan lives in the replicated log, so the
/// surviving majority finishes the migration without any retry from the
/// caller.
#[test]
fn migration_survives_coordinator_crash() {
    let mut config = ClusterConfig::for_tests();
    config.storage_nodes = 4;
    config.shards = 2;
    config.replication_factor = 2;
    let cluster = AggregatedCluster::build(config).unwrap();
    let client = cluster.client();
    client.deploy_type("Wall", wall_fields(), &wall_module()).unwrap();
    let wall = ObjectId::from("wall/coord-crash");
    client.create_object("Wall", &wall, &[]).unwrap();

    client.refresh();
    let state = client.placement().snapshot();
    let from = state.shard_for_object(wall.as_bytes()).expect("placed");
    let to = other_shard(&state, from);
    let src_primary = state.shard(from).unwrap().primary;
    let dst_primary = state.shard(to).unwrap().primary;

    let stop = Arc::new(AtomicBool::new(false));
    let writer = spawn_writer(cluster.client(), wall.clone(), "coord", Arc::clone(&stop));

    let mut plan = FaultPlan::new();
    plan = plan.between(src_primary, dst_primary, blackhole());
    cluster.core.net.set_fault_plan(plan, chaos_seed(0xc002_d1ed));

    let mig_client = cluster.client();
    let mig_wall = wall.clone();
    let migrator = std::thread::spawn(move || {
        migrate_until_done(&mig_client, &mig_wall, to, Duration::from_secs(60));
    });

    wait_migration_visible(&client, &wall, Duration::from_secs(10));
    kill_coordinator(&cluster.core, 0);
    cluster.core.net.clear_fault_plan();

    migrator.join().expect("migrator panicked");
    wait_routed_to(&client, &wall, to, Duration::from_secs(30));
    stop.store(true, Ordering::Relaxed);
    let (acked, unacked) = writer.join().expect("writer panicked");

    assert!(
        sum_coord_counter(&cluster, "coord_migrations_committed") >= 1,
        "the surviving majority must commit the migration"
    );
    assert!(!acked.is_empty(), "writer never got a post through");
    audit_feed(&client, &wall, &acked, &unacked);
    cluster.shutdown();
}

/// A migration through seeded data-plane faults (drops, duplicates,
/// delays, reply loss on every storage↔storage and client↔storage link):
/// the copy stream retries through the noise, redelivered posts hit the
/// dedup records that moved with the object, and the audit still finds
/// every acked post exactly once.
#[test]
fn migration_exactly_once_under_network_chaos() {
    let mut config = ClusterConfig::for_tests();
    config.storage_nodes = 4;
    config.shards = 2;
    config.replication_factor = 2;
    let cluster = AggregatedCluster::build(config).unwrap();
    // A client with a known endpoint id so the fault plan can target it.
    let client_id = NodeId(9101);
    let client = StoreClient::new(
        &cluster.core.net,
        client_id,
        cluster.core.coordinator_ids.clone(),
        Duration::from_secs(5),
    );
    client.deploy_type("Wall", wall_fields(), &wall_module()).unwrap();
    let wall = ObjectId::from("wall/mig-chaos");
    client.create_object("Wall", &wall, &[]).unwrap();

    client.refresh();
    let state = client.placement().snapshot();
    let from = state.shard_for_object(wall.as_bytes()).expect("placed");
    let to = other_shard(&state, from);

    let spec = FaultSpec {
        drop: 0.02,
        duplicate: 0.10,
        delay: 0.30,
        delay_spike: Duration::from_millis(1),
        reply_loss: 0.05,
    };
    let mut plan = FaultPlan::new();
    for &sid in &cluster.core.storage_ids {
        plan = plan.between(client_id, sid, spec);
        for &other in &cluster.core.storage_ids {
            if sid != other {
                plan = plan.link(sid, other, spec);
            }
        }
    }
    cluster.core.net.set_fault_plan(plan, chaos_seed(0x0317_ca7e));

    let stop = Arc::new(AtomicBool::new(false));
    let writer = spawn_writer(client.clone(), wall.clone(), "chaos", Arc::clone(&stop));
    std::thread::sleep(Duration::from_millis(100));

    migrate_until_done(&client, &wall, to, Duration::from_secs(40));
    wait_routed_to(&client, &wall, to, Duration::from_secs(20));

    std::thread::sleep(Duration::from_millis(200));
    stop.store(true, Ordering::Relaxed);
    let (acked, unacked) = writer.join().expect("writer panicked");
    cluster.core.net.clear_fault_plan();

    assert!(!acked.is_empty(), "chaos overwhelmed the writer entirely");
    audit_feed(&client, &wall, &acked, &unacked);
    let (dropped, duplicated, delayed) = cluster.core.net.fault_stats();
    assert!(dropped + duplicated + delayed > 0, "fault plan never fired");
    client.shutdown();
    cluster.shutdown();
}

/// Satellite regression: `rebalance_slot` tolerates a partially-moved
/// slot. An object that an earlier (interrupted) rebalance already landed
/// on the target is skipped cleanly, the rest move, and a second sweep is
/// an idempotent no-op.
#[test]
fn rebalance_slot_tolerates_partially_moved_slot() {
    let mut config = ClusterConfig::for_tests();
    config.storage_nodes = 4;
    config.shards = 2;
    config.replication_factor = 2;
    let cluster = AggregatedCluster::build(config).unwrap();
    let client = cluster.client();
    client.deploy_type("Account", account_fields(), &account_module()).unwrap();

    // Gather several objects that hash into the same slot (so one
    // rebalance call covers them all).
    client.refresh();
    let state = client.placement().snapshot();
    let mut slot_mates: std::collections::HashMap<u16, Vec<ObjectId>> =
        std::collections::HashMap::new();
    let mut chosen: Option<(u16, Vec<ObjectId>)> = None;
    for i in 0..512 {
        let id = ObjectId::from(format!("acct/slotmate-{i}").as_str());
        let slot = ClusterState::slot_of(id.as_bytes());
        let mates = slot_mates.entry(slot).or_default();
        mates.push(id);
        if mates.len() == 3 {
            chosen = Some((slot, mates.clone()));
            break;
        }
    }
    let (slot, objects) = chosen.expect("512 ids always yield 3 slot-mates in 64 slots");
    let source_shard = *state.slots.get(&slot).expect("slot assigned");
    let target_shard = other_shard(&state, source_shard);

    for (i, id) in objects.iter().enumerate() {
        client.create_object("Account", id, &[]).unwrap();
        for _ in 0..=i {
            client.invoke(id, "deposit", vec![VmValue::Int(1)], false).unwrap();
        }
    }

    // Simulate an interrupted earlier rebalance: the first object already
    // lives on the target (pinned there by its own committed migration).
    client.migrate_object(&objects[0], target_shard).unwrap();
    wait_routed_to(&client, &objects[0], target_shard, Duration::from_secs(10));

    // The sweep must skip the already-moved object, move the other two,
    // and flip the slot — not abort on the partial state.
    let moved = client.rebalance_slot(slot, target_shard).unwrap();
    assert_eq!(moved, 2, "exactly the not-yet-moved slot-mates move");

    client.refresh();
    let now = client.placement().snapshot();
    assert_eq!(now.slots.get(&slot), Some(&target_shard), "slot table flipped");
    for (i, id) in objects.iter().enumerate() {
        assert_eq!(
            now.shard_for_object(id.as_bytes()),
            Some(target_shard),
            "slot-mate {i} not routed to the target"
        );
        assert_eq!(
            as_int(client.invoke(id, "balance", vec![], true).unwrap()),
            (i + 1) as i64,
            "slot-mate {i} lost state in the sweep"
        );
    }
    // Pin hygiene: the swept objects' pins were retired with the flip
    // (pin == hash home is a redundant directory entry).
    assert!(!now.pins.contains_key(objects[1].as_bytes()), "swept object kept a redundant pin");
    assert!(!now.pins.contains_key(objects[2].as_bytes()), "swept object kept a redundant pin");

    // Idempotence: re-sweeping the now-empty slot converges to a no-op.
    assert_eq!(client.rebalance_slot(slot, target_shard).unwrap(), 0);
    cluster.shutdown();
}
