//! Wire protocol of LambdaStore nodes (and of the disaggregated baseline's
//! storage layer).

use serde::{Deserialize, Serialize};

use lambda_coordinator::{Epoch, ShardId};
use lambda_net::wire::{self, RequestHeader, WireError, HEADER_VERSION};
use lambda_objects::{migration::ObjectSnapshot, FieldDef, InvocationContext, TxCall, WriteSetOps};
use lambda_vm::{Module, VmValue};

/// Serialize `req` behind the versioned request envelope carrying `ctx`:
/// trace id, remaining deadline budget, and origin travel out-of-band
/// ahead of the body, so the context reaches every hop without touching
/// the request enum itself.
///
/// # Errors
/// Body serialization failures.
pub fn encode_request(ctx: &InvocationContext, req: &StoreRequest) -> Result<Vec<u8>, WireError> {
    let header = RequestHeader {
        version: HEADER_VERSION,
        trace_id: ctx.trace_id,
        budget_nanos: ctx.budget_nanos(),
        origin: ctx.origin.to_wire(),
        invocation_id: ctx.invocation_id,
        attempt: ctx.attempt,
    };
    let body = wire::to_bytes(req)?;
    Ok(header.encode_with_body(&body))
}

/// Parse a request frame into the sender's context and the request.
/// Headered frames re-derive the deadline from the carried budget
/// (`deadline = now + budget`); legacy headerless frames decode as the
/// bare body under a fresh unbounded background context, so old senders
/// keep working.
///
/// # Errors
/// Truncated envelopes and malformed bodies.
pub fn decode_request(bytes: &[u8]) -> Result<(InvocationContext, StoreRequest), WireError> {
    let (header, body) = wire::split_header(bytes)?;
    let ctx = match header {
        Some(h) => {
            let mut ctx = InvocationContext::from_wire(h.trace_id, h.budget_nanos, h.origin);
            ctx.invocation_id = h.invocation_id;
            ctx.attempt = h.attempt;
            ctx
        }
        None => InvocationContext::background(),
    };
    Ok((ctx, wire::from_bytes(body)?))
}

/// Requests understood by storage nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StoreRequest {
    /// Invoke a method on an object (aggregated architecture: executes at
    /// the storage node). `read_only` is the client's routing hint: it
    /// allows execution at a backup; the node re-verifies against the
    /// method's declared metadata.
    Invoke {
        /// Target object id.
        object: Vec<u8>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<VmValue>,
        /// Routing hint from the client.
        read_only: bool,
        /// Set for node-to-node nested invocations: allows calling
        /// non-public methods (a production system would authenticate the
        /// sender; nodes are trusted here).
        internal: bool,
        /// Client-edge caching: when set and the method is cacheable
        /// (deterministic read-only), the node answers with
        /// [`StoreResponse::CachedValue`] carrying the recorded read set so
        /// the client can cache the result consistently.
        collect_read_set: bool,
    },
    /// Instantiate an object.
    CreateObject {
        /// Type name (must be deployed).
        type_name: String,
        /// New object id.
        object: Vec<u8>,
        /// Initial scalar fields.
        fields: Vec<(String, Vec<u8>)>,
    },
    /// Remove an object.
    DeleteObject {
        /// Object id.
        object: Vec<u8>,
    },
    /// Deploy a bytecode object type (the serverless "upload functions"
    /// step).
    DeployType {
        /// Type name.
        name: String,
        /// Field schema.
        fields: Vec<FieldDef>,
        /// Validated module.
        module: Module,
    },
    /// Primary→backup replication of one committed write set.
    Replicate {
        /// Shard the object belongs to.
        shard: ShardId,
        /// The primary's configuration epoch (fencing).
        epoch: Epoch,
        /// Object whose data changed.
        object: Vec<u8>,
        /// `(key, Some(value))` puts / `(key, None)` deletes.
        ops: WriteSetOps,
        /// Piggybacked read-lease grant: the backup may serve reads for
        /// this shard at this epoch for `lease_nanos` from receipt. Zero
        /// grants nothing (the primary withholds leases while its own
        /// coordinator contact is stale).
        lease_nanos: u64,
    },
    /// Primary→backup replication of a window of committed write sets,
    /// coalesced by the primary's per-shard replication batcher into one
    /// RPC. The backup applies the window atomically and in order.
    ReplicateBatch {
        /// Shard the objects belong to.
        shard: ShardId,
        /// The primary's configuration epoch (fencing; the whole window
        /// carries one epoch — the batcher never coalesces write sets
        /// across a reconfiguration).
        epoch: Epoch,
        /// `(object, ops)` per committed write set, in commit order.
        /// `(key, Some(value))` puts / `(key, None)` deletes.
        entries: Vec<(Vec<u8>, WriteSetOps)>,
        /// Piggybacked read-lease grant (see [`StoreRequest::Replicate`]).
        lease_nanos: u64,
    },
    /// Migration: export an object (source side executes `evict`).
    FetchObject {
        /// Object id.
        object: Vec<u8>,
        /// When true the source deletes its copy (move); otherwise copy.
        evict: bool,
    },
    /// Migration: install an exported object here.
    InstallObject {
        /// The snapshot.
        snapshot: ObjectSnapshot,
        /// The destination shard (this node must be its primary); the
        /// install is replicated to that shard's backups.
        shard: ShardId,
    },
    /// Coordinator-owned migration: install (or replace) a snapshot shipped
    /// by the source shard's migration runner. Unlike [`InstallObject`]
    /// (`StoreRequest::InstallObject`) this overwrites any earlier copy of
    /// the object, so the warm pass, the final fenced pass, and any
    /// post-crash resume are all idempotent.
    MigrateInstall {
        /// The snapshot (dedup records ride along inside the key prefix).
        snapshot: ObjectSnapshot,
        /// The destination shard (this node must be its primary); the
        /// install is replicated to that shard's backups.
        shard: ShardId,
    },
    /// Raw storage API used by the disaggregated baseline's compute layer;
    /// each call is exactly one network round-trip (§4.1).
    RawGet {
        /// Full storage key.
        key: Vec<u8>,
    },
    /// Raw put (see [`StoreRequest::RawGet`]).
    RawPut {
        /// Full storage key.
        key: Vec<u8>,
        /// Value.
        value: Vec<u8>,
    },
    /// Raw delete.
    RawDelete {
        /// Full storage key.
        key: Vec<u8>,
    },
    /// Append to an object collection (single round-trip read-modify-write
    /// of the length counter, mirroring what the aggregated host does
    /// locally).
    RawPush {
        /// Object id.
        object: Vec<u8>,
        /// Collection field.
        field: Vec<u8>,
        /// Entry payload.
        value: Vec<u8>,
    },
    /// Scan an object collection.
    RawScan {
        /// Object id.
        object: Vec<u8>,
        /// Collection field.
        field: Vec<u8>,
        /// Maximum entries.
        limit: u64,
        /// Newest entries first.
        newest_first: bool,
    },
    /// Collection length.
    RawCount {
        /// Object id.
        object: Vec<u8>,
        /// Collection field.
        field: Vec<u8>,
    },
    /// Enumerate the objects stored on this node (admin/rebalancing).
    ListObjects,
    /// Execute a serializable multi-call transaction (the paper's §3.1 /
    /// §7 future-work extension). All objects must be served by this node
    /// as primary; cross-shard transactions are rejected.
    Transact {
        /// The calls, executed in order under strict 2PL.
        calls: Vec<TxCall>,
    },
    /// Node statistics snapshot.
    Stats,
    /// Repair: pull one bounded chunk of the shard's objects from its
    /// primary (diagnostics / pull-based transfer). `cursor` is the last
    /// object id of the previous chunk (exclusive); `None` starts over.
    FetchShardChunk {
        /// Shard to export.
        shard: ShardId,
        /// Requester's view of the shard epoch (fencing: stale readers are
        /// rejected rather than fed a superseded key range).
        epoch: Epoch,
        /// Resume after this object id; `None` for the first chunk.
        cursor: Option<Vec<u8>>,
        /// Stop adding objects once the chunk payload exceeds this.
        max_bytes: u64,
    },
    /// Repair: install a batch of state-transfer items on a syncing
    /// backup, in stream order.
    InstallShardChunk {
        /// Shard under transfer.
        shard: ShardId,
        /// The sending primary's epoch (fencing).
        epoch: Epoch,
        /// Items, applied strictly in order.
        items: Vec<SyncItem>,
    },
    /// Primary→backup standalone read-lease renewal, sent from the
    /// primary's heartbeat loop so leases stay fresh on write-idle shards
    /// (replication traffic piggybacks grants on busy ones). Oneway.
    RenewLease {
        /// Shard the lease covers.
        shard: ShardId,
        /// The granting primary's configuration epoch; the lease is only
        /// good for reads at this epoch.
        epoch: Epoch,
        /// Lease duration from receipt.
        lease_nanos: u64,
    },
    /// Client→node: register the sender for the commit invalidation
    /// stream. The node pushes [`ClientPush::Invalidate`] frames with the
    /// written keys of every commit it applies (primary or backup role),
    /// keeping client-edge result caches consistent.
    SubscribeInvalidations {
        /// RPC id of the subscribing client.
        subscriber: lambda_net::NodeId,
    },
}

/// Unsolicited node→client frames (oneway pushes, outside the
/// request/response pattern).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientPush {
    /// Keys written by a commit this node just applied; subscribed
    /// client-edge caches drop every entry whose read set overlaps.
    Invalidate {
        /// The commit's written storage keys.
        keys: Vec<Vec<u8>>,
    },
}

/// One item of a shard state-transfer stream (primary → syncing backup).
/// Stream order is commit order per object: the primary enqueues snapshots
/// and forwarded commits while holding each object's exclusive lock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SyncItem {
    /// Stream start: the receiver wipes any stale residue of the shard
    /// (a crash-restart rejoin may hold superseded objects).
    Begin,
    /// A consistent snapshot of one object.
    Object(ObjectSnapshot),
    /// A write set committed at the primary during the transfer, forwarded
    /// so the syncing backup converges without blocking the hot path.
    Forward {
        /// Object whose data changed.
        object: Vec<u8>,
        /// `(key, Some(value))` puts / `(key, None)` deletes.
        ops: WriteSetOps,
    },
}

/// Per-node counters returned by [`StoreRequest::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NodeStatsWire {
    /// Requests handled.
    pub requests: u64,
    /// Invocations executed here.
    pub invocations: u64,
    /// Results served from the consistent cache.
    pub cache_hits: u64,
    /// Replication messages applied (backup role).
    pub replications_applied: u64,
    /// Redelivered mutations answered from the dedup window without
    /// re-executing.
    pub duplicates_suppressed: u64,
    /// Nanoseconds spent actually executing requests (utilization).
    pub busy_nanos: u64,
    /// Nanoseconds since the node started.
    pub uptime_nanos: u64,
    /// Requests admitted but not yet picked up by a worker (instantaneous
    /// run-queue depth at the time of the stats read).
    pub run_queue_depth: u64,
    /// Requests admitted and not yet replied to — queued, executing, or
    /// parked as deferred replies (instantaneous).
    pub inflight: u64,
    /// Requests refused by admission control since the node started.
    pub shed: u64,
    /// Read-only invocations served here under a follower read lease.
    pub follower_reads: u64,
    /// Reads refused because the node's lease was missing, expired, or
    /// epoch-stale (each bounces the client back to the primary).
    pub lease_rejections: u64,
    /// Commit invalidation frames pushed to subscribed client-edge caches.
    pub invalidations_published: u64,
    /// Disk-corruption reports proposed to the coordinator (one per shard
    /// this node was configured in when an unrecoverable kv corruption
    /// surfaced).
    pub corruption_reports: u64,
    /// Promotion re-syncs completed: ring replays of recent committed
    /// write sets to the surviving backups after this node took over a
    /// shard's primary role.
    pub promotion_resyncs: u64,
}

impl NodeStatsWire {
    /// Fraction of wall-clock time spent serving requests.
    pub fn utilization(&self) -> f64 {
        if self.uptime_nanos == 0 {
            0.0
        } else {
            self.busy_nanos as f64 / self.uptime_nanos as f64
        }
    }
}

/// Responses from storage nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StoreResponse {
    /// Invocation result.
    Value(VmValue),
    /// Generic success.
    Ok,
    /// Raw read result.
    MaybeBytes(Option<Vec<u8>>),
    /// Raw scan rows.
    Rows(Vec<Vec<u8>>),
    /// Raw count.
    Count(u64),
    /// Migration export.
    Snapshot(ObjectSnapshot),
    /// Statistics.
    NodeStats(NodeStatsWire),
    /// Transaction results, one per call.
    Values(Vec<VmValue>),
    /// Object ids (ListObjects).
    Objects(Vec<Vec<u8>>),
    /// One bounded chunk of a shard export ([`StoreRequest::FetchShardChunk`]).
    ShardChunk {
        /// Objects in this chunk.
        objects: Vec<ObjectSnapshot>,
        /// Cursor for the next chunk; `None` when the export is complete.
        next_cursor: Option<Vec<u8>>,
    },
    /// Invocation result plus its recorded read set, answered to
    /// [`StoreRequest::Invoke`] with `collect_read_set` when the method
    /// was cacheable; non-cacheable methods still answer
    /// [`StoreResponse::Value`].
    CachedValue {
        /// Invocation result.
        value: VmValue,
        /// `(key, value hash)` pairs the execution read (§4.2.2).
        read_set: Vec<(Vec<u8>, u64)>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_net::wire;
    use lambda_objects::{FieldKind, ObjectId};

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            StoreRequest::Invoke {
                object: b"user/1".to_vec(),
                method: "create_post".into(),
                args: vec![VmValue::str("hi"), VmValue::Int(3)],
                read_only: false,
                internal: false,
                collect_read_set: false,
            },
            StoreRequest::Invoke {
                object: b"user/1".to_vec(),
                method: "get_timeline".into(),
                args: vec![VmValue::Int(10)],
                read_only: true,
                internal: false,
                collect_read_set: true,
            },
            StoreRequest::CreateObject {
                type_name: "User".into(),
                object: b"user/1".to_vec(),
                fields: vec![("name".into(), b"ada".to_vec())],
            },
            StoreRequest::DeleteObject { object: b"user/1".to_vec() },
            StoreRequest::DeployType {
                name: "User".into(),
                fields: vec![FieldDef { name: "tl".into(), kind: FieldKind::Collection }],
                module: Module::default(),
            },
            StoreRequest::Replicate {
                shard: 3,
                epoch: 7,
                object: b"user/1".to_vec(),
                ops: vec![(b"k".to_vec(), Some(b"v".to_vec())), (b"d".to_vec(), None)],
                lease_nanos: 400_000_000,
            },
            StoreRequest::ReplicateBatch {
                shard: 3,
                epoch: 7,
                entries: vec![
                    (
                        b"user/1".to_vec(),
                        vec![(b"k".to_vec(), Some(b"v".to_vec())), (b"d".to_vec(), None)],
                    ),
                    (b"user/2".to_vec(), vec![(b"x".to_vec(), Some(b"y".to_vec()))]),
                ],
                lease_nanos: 0,
            },
            StoreRequest::RenewLease { shard: 3, epoch: 7, lease_nanos: 400_000_000 },
            StoreRequest::SubscribeInvalidations { subscriber: lambda_net::NodeId(501) },
            StoreRequest::FetchObject { object: b"user/1".to_vec(), evict: true },
            StoreRequest::InstallObject {
                snapshot: ObjectSnapshot {
                    id: ObjectId::from("user/1"),
                    entries: vec![(b"m".to_vec(), b"User".to_vec())],
                },
                shard: 2,
            },
            StoreRequest::MigrateInstall {
                snapshot: ObjectSnapshot {
                    id: ObjectId::from("user/2"),
                    entries: vec![(b"m".to_vec(), b"User".to_vec())],
                },
                shard: 4,
            },
            StoreRequest::RawGet { key: b"k".to_vec() },
            StoreRequest::RawPut { key: b"k".to_vec(), value: b"v".to_vec() },
            StoreRequest::RawDelete { key: b"k".to_vec() },
            StoreRequest::RawPush {
                object: b"u".to_vec(),
                field: b"tl".to_vec(),
                value: b"p".to_vec(),
            },
            StoreRequest::RawScan {
                object: b"u".to_vec(),
                field: b"tl".to_vec(),
                limit: 10,
                newest_first: true,
            },
            StoreRequest::RawCount { object: b"u".to_vec(), field: b"tl".to_vec() },
            StoreRequest::ListObjects,
            StoreRequest::Transact {
                calls: vec![TxCall::new(
                    lambda_objects::ObjectId::from("acct/a"),
                    "add",
                    vec![VmValue::Int(4)],
                )],
            },
            StoreRequest::Stats,
            StoreRequest::FetchShardChunk {
                shard: 1,
                epoch: 4,
                cursor: Some(b"user/1".to_vec()),
                max_bytes: 65536,
            },
            StoreRequest::FetchShardChunk { shard: 1, epoch: 4, cursor: None, max_bytes: 1 },
            StoreRequest::InstallShardChunk {
                shard: 1,
                epoch: 4,
                items: vec![
                    SyncItem::Begin,
                    SyncItem::Object(ObjectSnapshot {
                        id: ObjectId::from("user/1"),
                        entries: vec![(b"m".to_vec(), b"User".to_vec())],
                    }),
                    SyncItem::Forward {
                        object: b"user/1".to_vec(),
                        ops: vec![(b"k".to_vec(), Some(b"v".to_vec())), (b"d".to_vec(), None)],
                    },
                ],
            },
        ];
        for r in reqs {
            let bytes = wire::to_bytes(&r).unwrap();
            let back: StoreRequest = wire::from_bytes(&bytes).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            StoreResponse::Value(VmValue::List(vec![VmValue::Int(1)])),
            StoreResponse::Ok,
            StoreResponse::MaybeBytes(Some(b"v".to_vec())),
            StoreResponse::MaybeBytes(None),
            StoreResponse::Rows(vec![b"a".to_vec(), b"b".to_vec()]),
            StoreResponse::Count(42),
            StoreResponse::NodeStats(NodeStatsWire {
                requests: 1,
                invocations: 2,
                cache_hits: 3,
                replications_applied: 4,
                duplicates_suppressed: 6,
                busy_nanos: 5,
                uptime_nanos: 10,
                run_queue_depth: 7,
                inflight: 8,
                shed: 9,
                follower_reads: 11,
                lease_rejections: 12,
                invalidations_published: 13,
                corruption_reports: 14,
                promotion_resyncs: 15,
            }),
            StoreResponse::Values(vec![VmValue::Unit, VmValue::Int(1)]),
            StoreResponse::Objects(vec![b"user/1".to_vec()]),
            StoreResponse::ShardChunk {
                objects: vec![ObjectSnapshot {
                    id: ObjectId::from("user/1"),
                    entries: vec![(b"m".to_vec(), b"User".to_vec())],
                }],
                next_cursor: Some(b"user/1".to_vec()),
            },
            StoreResponse::ShardChunk { objects: vec![], next_cursor: None },
            StoreResponse::CachedValue {
                value: VmValue::List(vec![VmValue::Int(1)]),
                read_set: vec![
                    (b"user/1/tl/0".to_vec(), 0x9e3779b9),
                    (b"user/1/tl#len".to_vec(), 7),
                ],
            },
        ];
        for r in resps {
            let bytes = wire::to_bytes(&r).unwrap();
            let back: StoreResponse = wire::from_bytes(&bytes).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn client_pushes_round_trip() {
        let pushes = vec![
            ClientPush::Invalidate { keys: vec![b"user/1/tl/0".to_vec(), b"user/1/v".to_vec()] },
            ClientPush::Invalidate { keys: vec![] },
        ];
        for p in pushes {
            let bytes = wire::to_bytes(&p).unwrap();
            let back: ClientPush = wire::from_bytes(&bytes).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn request_envelope_round_trips_context() {
        use std::time::Duration;
        let ctx = InvocationContext::client(Duration::from_secs(5));
        let req = StoreRequest::Invoke {
            object: b"user/1".to_vec(),
            method: "post".into(),
            args: vec![VmValue::Int(1)],
            read_only: false,
            internal: false,
            collect_read_set: false,
        };
        let frame = encode_request(&ctx, &req).unwrap();
        let (back_ctx, back_req) = decode_request(&frame).unwrap();
        assert_eq!(back_req, req);
        assert_eq!(back_ctx.trace_id, ctx.trace_id);
        assert_eq!(back_ctx.origin, ctx.origin);
        assert_eq!(back_ctx.invocation_id, ctx.invocation_id, "dedup identity survives the wire");
        assert_eq!(back_ctx.attempt, ctx.attempt);
        // The receiving hop re-derives the deadline from the budget; it
        // can only have shrunk in transit.
        assert!(back_ctx.budget_nanos() <= Duration::from_secs(5).as_nanos() as u64);
        assert!(!back_ctx.expired());
    }

    #[test]
    fn legacy_request_frames_decode_with_background_context() {
        let req = StoreRequest::Stats;
        let frame = wire::to_bytes(&req).unwrap();
        let (ctx, back) = decode_request(&frame).unwrap();
        assert_eq!(back, req);
        assert!(ctx.deadline.is_none());
        assert!(!ctx.expired());
    }

    #[test]
    fn expired_budget_survives_the_wire() {
        let ctx = InvocationContext::from_wire(9, 0, 0);
        let frame = encode_request(&ctx, &StoreRequest::ListObjects).unwrap();
        let (back_ctx, _) = decode_request(&frame).unwrap();
        assert_eq!(back_ctx.trace_id, 9);
        assert!(back_ctx.expired());
    }

    #[test]
    fn utilization_math() {
        let s = NodeStatsWire { busy_nanos: 25, uptime_nanos: 100, ..Default::default() };
        assert!((s.utilization() - 0.25).abs() < 1e-9);
        assert_eq!(NodeStatsWire::default().utilization(), 0.0);
    }
}
