//! Primary-side state-transfer sessions for self-healing replication.
//!
//! When the coordinator recruits a syncing backup (`AddBackup`), the
//! shard's primary opens one [`SyncSession`] per recruit: a single FIFO
//! stream of [`SyncItem`]s shipped in order by a dedicated worker thread.
//! Both object snapshots and forwarded commits are enqueued *while holding
//! the object's exclusive lock*, so per-object stream order equals commit
//! order — the receiver can apply items blindly in sequence and converge.
//!
//! The session moves through phases:
//!
//! ```text
//! Streaming ──► Draining ──► Admitted ──► Done
//!     │             │            │
//!     └─────────────┴────────────┴──► Failed { hard }
//! ```
//!
//! - **Streaming**: the bulk snapshot scan; commits forward without
//!   blocking (fire-and-forget enqueue).
//! - **Draining**: snapshot done; each commit waits until its forward is
//!   shipped, squeezing the stream dry before promotion.
//! - **Admitted**: `ConfirmBackup` has been proposed — the recruit may
//!   already count as a replica, so a ship failure is *hard*: the waiting
//!   commit must fail rather than be acked without the new backup.
//! - **Failed { hard: false }** (before admission) only abandons the
//!   recruit; in-flight commits were never promised the new replica, so
//!   they succeed on the old replica set.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex, RwLock};

use lambda_coordinator::{Epoch, ShardId};
use lambda_net::NodeId;

use crate::proto::SyncItem;

/// Session phase; see the module docs for the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPhase {
    /// Bulk snapshot scan; forwards enqueue without blocking.
    Streaming,
    /// Scan finished; forwards block until shipped.
    Draining,
    /// `ConfirmBackup` proposed; ship failures fail the commit.
    Admitted,
    /// Transfer complete, session closing.
    Done,
    /// Transfer aborted; `hard` when a durability promise was broken.
    Failed {
        /// True when the failure happened after admission.
        hard: bool,
    },
}

struct SessState {
    queue: VecDeque<(u64, SyncItem)>,
    next_seq: u64,
    shipped_seq: u64,
    phase: SyncPhase,
}

/// One in-flight state transfer: primary → one syncing backup.
pub struct SyncSession {
    /// Shard under transfer.
    pub shard: ShardId,
    /// The syncing backup receiving the stream.
    pub peer: NodeId,
    /// The shard epoch the session was opened under; forwards are only
    /// accepted from commits at exactly this epoch (older are stale, newer
    /// means the recruit was already confirmed and uses normal
    /// replication).
    pub epoch: Epoch,
    state: Mutex<SessState>,
    cv: Condvar,
}

impl SyncSession {
    /// Open a session in the Streaming phase.
    pub fn new(shard: ShardId, peer: NodeId, epoch: Epoch) -> Arc<SyncSession> {
        Arc::new(SyncSession {
            shard,
            peer,
            epoch,
            state: Mutex::new(SessState {
                queue: VecDeque::new(),
                next_seq: 0,
                shipped_seq: 0,
                phase: SyncPhase::Streaming,
            }),
            cv: Condvar::new(),
        })
    }

    /// Enqueue one stream item. In Streaming this returns immediately; in
    /// Draining/Admitted it blocks until the item is shipped to the peer.
    ///
    /// # Errors
    /// `Err` when the stream can no longer deliver the item under a
    /// durability promise: a hard failure, or the session closed before
    /// the item shipped (the caller's commit must fail so the client
    /// retries against fresh placement).
    pub fn offer(&self, item: SyncItem) -> Result<(), String> {
        let mut st = self.state.lock();
        match st.phase {
            SyncPhase::Done => {
                return Err(format!("sync session to {} closed; retry", self.peer));
            }
            SyncPhase::Failed { hard } => {
                return if hard {
                    Err(format!("sync session to {} failed after admission", self.peer))
                } else {
                    Ok(()) // recruit abandoned pre-promise; nothing owed
                };
            }
            SyncPhase::Streaming | SyncPhase::Draining | SyncPhase::Admitted => {}
        }
        st.next_seq += 1;
        let seq = st.next_seq;
        st.queue.push_back((seq, item));
        self.cv.notify_all();
        if st.phase == SyncPhase::Streaming {
            return Ok(());
        }
        // Draining/Admitted: wait for the worker to ship our item.
        loop {
            if st.shipped_seq >= seq {
                return Ok(());
            }
            match st.phase {
                SyncPhase::Failed { hard: true } => {
                    return Err(format!("sync session to {} failed after admission", self.peer));
                }
                SyncPhase::Failed { hard: false } => return Ok(()),
                SyncPhase::Done => {
                    return Err(format!("sync session to {} closed before ship; retry", self.peer));
                }
                _ => {}
            }
            self.cv.wait(&mut st);
        }
    }

    /// Worker: drain up to `max_items` from the stream head without
    /// blocking. Returns the items and the sequence number of the last one
    /// (to pass to [`mark_shipped`](SyncSession::mark_shipped)).
    pub fn take_batch(&self, max_items: usize) -> (Vec<SyncItem>, u64) {
        let mut st = self.state.lock();
        let mut items = Vec::new();
        let mut last = st.shipped_seq;
        while items.len() < max_items {
            match st.queue.pop_front() {
                Some((seq, item)) => {
                    last = seq;
                    items.push(item);
                }
                None => break,
            }
        }
        (items, last)
    }

    /// Worker: block until the queue is non-empty or `timeout` passes.
    /// Returns the queue length.
    pub fn wait_for_items(&self, timeout: Duration) -> usize {
        let mut st = self.state.lock();
        if st.queue.is_empty() {
            self.cv.wait_for(&mut st, timeout);
        }
        st.queue.len()
    }

    /// Worker: record that everything up to `seq` reached the peer.
    pub fn mark_shipped(&self, seq: u64) {
        let mut st = self.state.lock();
        if seq > st.shipped_seq {
            st.shipped_seq = seq;
        }
        self.cv.notify_all();
    }

    /// Worker: re-queue a batch at the stream head after a failed ship
    /// (retry without losing order).
    pub fn requeue_front(&self, items: Vec<SyncItem>, last_seq: u64) {
        let mut st = self.state.lock();
        let first_seq = last_seq + 1 - items.len() as u64;
        for (i, item) in items.into_iter().enumerate().rev() {
            st.queue.push_front((first_seq + i as u64, item));
        }
        self.cv.notify_all();
    }

    /// Worker: advance the phase.
    pub fn set_phase(&self, phase: SyncPhase) {
        let mut st = self.state.lock();
        st.phase = phase;
        self.cv.notify_all();
    }

    /// Current phase.
    pub fn phase(&self) -> SyncPhase {
        self.state.lock().phase
    }

    /// Items accepted but not yet shipped (sync lag, for telemetry).
    pub fn lag(&self) -> u64 {
        let st = self.state.lock();
        st.next_seq - st.shipped_seq
    }
}

/// The primary's table of open sessions, keyed by (shard, peer).
#[derive(Default)]
pub struct SyncManager {
    sessions: RwLock<HashMap<(ShardId, NodeId), Arc<SyncSession>>>,
}

impl SyncManager {
    /// Empty table.
    pub fn new() -> SyncManager {
        SyncManager::default()
    }

    /// True when a session to `peer` for `shard` is open.
    pub fn contains(&self, shard: ShardId, peer: NodeId) -> bool {
        self.sessions.read().contains_key(&(shard, peer))
    }

    /// All open sessions streaming `shard`.
    pub fn sessions_for(&self, shard: ShardId) -> Vec<Arc<SyncSession>> {
        self.sessions
            .read()
            .iter()
            .filter(|((s, _), _)| *s == shard)
            .map(|(_, sess)| Arc::clone(sess))
            .collect()
    }

    /// Register a session; replaces any previous one for the same key.
    pub fn insert(&self, session: Arc<SyncSession>) {
        self.sessions.write().insert((session.shard, session.peer), session);
    }

    /// Drop the session for (shard, peer), if any.
    pub fn remove(&self, shard: ShardId, peer: NodeId) {
        self.sessions.write().remove(&(shard, peer));
    }

    /// Total unshipped items across all sessions (sync lag).
    pub fn total_lag(&self) -> u64 {
        self.sessions.read().values().map(|s| s.lag()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item() -> SyncItem {
        SyncItem::Forward { object: b"o".to_vec(), ops: vec![(b"k".to_vec(), None)] }
    }

    #[test]
    fn streaming_offers_do_not_block() {
        let s = SyncSession::new(0, NodeId(5), 3);
        s.offer(SyncItem::Begin).unwrap();
        s.offer(item()).unwrap();
        assert_eq!(s.lag(), 2);
        let (batch, last) = s.take_batch(10);
        assert_eq!(batch.len(), 2);
        s.mark_shipped(last);
        assert_eq!(s.lag(), 0);
    }

    #[test]
    fn draining_offer_waits_for_ship() {
        let s = SyncSession::new(0, NodeId(5), 3);
        s.set_phase(SyncPhase::Draining);
        let s2 = Arc::clone(&s);
        let t = std::thread::spawn(move || s2.offer(item()));
        // Ship whatever arrives until the offer returns.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while !t.is_finished() {
            assert!(std::time::Instant::now() < deadline, "offer never unblocked");
            let (batch, last) = s.take_batch(10);
            if !batch.is_empty() {
                s.mark_shipped(last);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        t.join().unwrap().unwrap();
    }

    #[test]
    fn hard_failure_fails_blocked_offers() {
        let s = SyncSession::new(0, NodeId(5), 3);
        s.set_phase(SyncPhase::Admitted);
        let s2 = Arc::clone(&s);
        let t = std::thread::spawn(move || s2.offer(item()));
        std::thread::sleep(Duration::from_millis(20));
        s.set_phase(SyncPhase::Failed { hard: true });
        assert!(t.join().unwrap().is_err(), "admitted ship failure must fail the commit");
        // Later offers fail immediately.
        assert!(s.offer(item()).is_err());
    }

    #[test]
    fn soft_failure_releases_blocked_offers_ok() {
        let s = SyncSession::new(0, NodeId(5), 3);
        s.set_phase(SyncPhase::Draining);
        let s2 = Arc::clone(&s);
        let t = std::thread::spawn(move || s2.offer(item()));
        std::thread::sleep(Duration::from_millis(20));
        s.set_phase(SyncPhase::Failed { hard: false });
        assert!(t.join().unwrap().is_ok(), "pre-admission abort owes the commit nothing");
    }

    #[test]
    fn done_rejects_new_offers() {
        let s = SyncSession::new(0, NodeId(5), 3);
        s.set_phase(SyncPhase::Done);
        assert!(s.offer(item()).is_err());
    }

    #[test]
    fn requeue_preserves_order() {
        let s = SyncSession::new(0, NodeId(5), 3);
        s.offer(SyncItem::Begin).unwrap();
        s.offer(item()).unwrap();
        let (batch, last) = s.take_batch(10);
        assert_eq!(batch.len(), 2);
        s.requeue_front(batch, last);
        let (batch, last2) = s.take_batch(10);
        assert_eq!(batch.len(), 2);
        assert!(matches!(batch[0], SyncItem::Begin));
        assert_eq!(last2, last);
    }

    #[test]
    fn manager_tracks_sessions() {
        let m = SyncManager::new();
        let s = SyncSession::new(2, NodeId(5), 1);
        m.insert(Arc::clone(&s));
        assert!(m.contains(2, NodeId(5)));
        assert_eq!(m.sessions_for(2).len(), 1);
        assert!(m.sessions_for(3).is_empty());
        s.offer(SyncItem::Begin).unwrap();
        assert_eq!(m.total_lag(), 1);
        m.remove(2, NodeId(5));
        assert!(!m.contains(2, NodeId(5)));
    }
}
