//! Client-side handle to a LambdaStore cluster.
//!
//! Per §5, "clients directly contact the executing node and there is no
//! load balancer or frontend": the client caches the shard map, routes
//! mutating invocations to the primary, routes read-only invocations to a
//! (rotating) replica, and refreshes + retries on `WrongNode` or timeouts
//! (the paper's "clients... will reissue their request if needed",
//! §4.2.1).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use lambda_coordinator::{CoordClient, CoordCmd, ShardId};
use lambda_net::rpc::sync_handler;
use lambda_net::{wire, Network, NodeId, RpcError, RpcNode};
use lambda_objects::{
    decode_error, CacheStats, ConsistentCache, InvocationContext, InvokeError, ObjectId, TxCall,
};
use lambda_vm::{Module, VmValue};

use crate::placement::Placement;
use crate::proto::{self, ClientPush, NodeStatsWire, StoreRequest, StoreResponse};

/// How long [`StoreClient::migrate_object`] waits for the coordinator's
/// replicated state machine to drive a planned migration to commit (or
/// abort) before reporting a timeout.
const MIGRATE_WAIT: Duration = Duration::from_secs(30);

/// A cluster client. Cheap to clone ([`Arc`] inside); safe to share across
/// request-generator threads.
#[derive(Clone)]
pub struct StoreClient {
    inner: Arc<ClientInner>,
}

struct ClientInner {
    id: NodeId,
    rpc: Arc<RpcNode>,
    coord: Option<CoordClient>,
    placement: Placement,
    timeout: Duration,
    /// Client-edge result cache for cacheable (deterministic read-only)
    /// invocations, disabled until [`StoreClient::enable_edge_cache`] is
    /// called. Kept correct by the commit invalidation stream the client
    /// subscribes to: repeat reads short-circuit here without any RPC.
    edge: Arc<OnceLock<Arc<ConsistentCache>>>,
    /// Per-attempt RPC cap: a fraction of the end-to-end budget, so one
    /// lost reply stalls a single attempt instead of consuming the whole
    /// deadline — the redelivery (same invocation id) is what the server's
    /// dedup window absorbs.
    attempt_timeout: Duration,
    retries: usize,
    round_robin: AtomicU64,
    /// Attempts beyond the first, across all operations of this client.
    client_retries: AtomicU64,
    /// When set, read-only invocations skip the replica rotation and go
    /// straight to the primary (measurement ablation: the pre-lease read
    /// path, with identical execution semantics).
    pin_reads_to_primary: AtomicBool,
}

/// Backoff schedule for one routing loop: exponential growth with full
/// jitter, capped, and never longer than the invocation's remaining
/// deadline budget. Seeded from the invocation identity so a replayed
/// simulation retries at the same instants.
struct RetryPolicy {
    base: Duration,
    cap: Duration,
    rng: SmallRng,
}

impl RetryPolicy {
    fn new(seed: u64) -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(100),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The pause to take after a failed `attempt` (0-based). Full jitter —
    /// uniform in `[0, min(cap, base·2^attempt)]` — spreads synchronized
    /// retry storms; clamping to the remaining budget keeps the last sleep
    /// from overshooting the deadline.
    fn pause(&mut self, attempt: usize, ctx: &InvocationContext) -> Duration {
        let exp = self.base.saturating_mul(1 << attempt.min(16) as u32).min(self.cap);
        let jittered = Duration::from_nanos(self.rng.gen_range(0..exp.as_nanos() as u64 + 1));
        match ctx.remaining() {
            Some(rem) => jittered.min(rem),
            None => jittered,
        }
    }
}

impl std::fmt::Debug for StoreClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreClient").finish()
    }
}

impl StoreClient {
    /// Create a client with its own network endpoint `id`.
    pub fn new(
        net: &Network,
        id: NodeId,
        coordinators: Vec<NodeId>,
        timeout: Duration,
    ) -> StoreClient {
        // The client's endpoint doubles as the sink of the commit
        // invalidation stream: storage nodes push `ClientPush::Invalidate`
        // frames here once the client subscribes (edge cache enabled).
        let edge: Arc<OnceLock<Arc<ConsistentCache>>> = Arc::new(OnceLock::new());
        let push_edge = Arc::clone(&edge);
        let rpc = RpcNode::start(
            net,
            id,
            sync_handler(move |_, body| {
                if let Some(cache) = push_edge.get() {
                    if let Ok(ClientPush::Invalidate { keys }) = wire::from_bytes(&body) {
                        cache.invalidate_keys(keys.iter().map(Vec::as_slice));
                    }
                }
                Ok(vec![])
            }),
            1,
        );
        let coord = if coordinators.is_empty() {
            None
        } else {
            Some(CoordClient::new(Arc::clone(&rpc), coordinators, timeout))
        };
        let client = StoreClient {
            inner: Arc::new(ClientInner {
                id,
                rpc,
                coord,
                placement: Placement::new(),
                timeout,
                edge,
                attempt_timeout: (timeout / 5).max(Duration::from_millis(1)),
                retries: 20,
                round_robin: AtomicU64::new(0),
                client_retries: AtomicU64::new(0),
                pin_reads_to_primary: AtomicBool::new(false),
            }),
        };
        client.refresh();
        client
    }

    /// Re-fetch the shard map from the coordinators.
    pub fn refresh(&self) {
        if let Some(coord) = &self.inner.coord {
            if let Ok(Some(state)) = coord.get_state(self.inner.placement.version()) {
                self.inner.placement.update(state);
            }
        }
    }

    /// The client's placement view (also used to install static maps in
    /// coordinator-less deployments).
    pub fn placement(&self) -> &Placement {
        &self.inner.placement
    }

    fn call(&self, node: NodeId, req: &StoreRequest) -> Result<StoreResponse, InvokeError> {
        // One-shot call outside any routing loop: fresh context, full
        // client timeout as its budget.
        self.call_ctx(&InvocationContext::client(self.inner.timeout), node, req)
    }

    fn call_ctx(
        &self,
        ctx: &InvocationContext,
        node: NodeId,
        req: &StoreRequest,
    ) -> Result<StoreResponse, InvokeError> {
        let frame = proto::encode_request(ctx, req).expect("requests serialize");
        match self.inner.rpc.call(node, frame, ctx.rpc_timeout(self.inner.attempt_timeout)) {
            Ok(bytes) => wire::from_bytes(&bytes)
                .map_err(|e| InvokeError::Nested(format!("bad response: {e}"))),
            Err(RpcError::Remote(msg)) => Err(decode_error(&msg)),
            Err(other) => Err(InvokeError::Nested(other.to_string())),
        }
    }

    /// Pick the node for the next attempt. Reads rotate across the live
    /// replica set for scaling ("read-only functions can execute at any
    /// replica", §4.2.1); `prefer_primary` pins them to the primary after a
    /// misroute (`WrongNode`/`LeaseExpired` from a replica) — the primary
    /// always serves, so one refresh + fall-back beats spinning through a
    /// replica set the local map has wrong.
    fn target_for(
        &self,
        object: &ObjectId,
        read_only: bool,
        prefer_primary: bool,
    ) -> Option<NodeId> {
        let (_, info) = self.inner.placement.locate(object)?;
        if read_only
            && !prefer_primary
            && !self.inner.pin_reads_to_primary.load(Ordering::Relaxed)
            && !info.backups.is_empty()
        {
            // Only rotate across replicas still registered with the
            // coordinator: routing a read at a dead backup costs a full
            // RPC timeout before the retry loop recovers.
            let live: Vec<NodeId> =
                info.replicas().into_iter().filter(|n| self.inner.placement.is_live(*n)).collect();
            if !live.is_empty() {
                let i = self.inner.round_robin.fetch_add(1, Ordering::Relaxed) as usize;
                return Some(live[i % live.len()]);
            }
        }
        Some(info.primary)
    }

    fn with_routing<T>(
        &self,
        object: &ObjectId,
        read_only: bool,
        op: impl FnMut(&InvocationContext, NodeId) -> Result<T, InvokeError>,
    ) -> Result<T, InvokeError> {
        self.with_routing_ctx(InvocationContext::client(self.inner.timeout), object, read_only, op)
    }

    /// The routing loop. One *logical* invocation: every attempt carries
    /// the same invocation id (so servers can deduplicate redeliveries),
    /// a bumped attempt number, and spends from the one shared deadline
    /// budget — a retry never resets the clock.
    fn with_routing_ctx<T>(
        &self,
        mut ctx: InvocationContext,
        object: &ObjectId,
        read_only: bool,
        mut op: impl FnMut(&InvocationContext, NodeId) -> Result<T, InvokeError>,
    ) -> Result<T, InvokeError> {
        let mut policy = RetryPolicy::new(ctx.invocation_id ^ ctx.trace_id);
        let mut last_err = InvokeError::Nested("no storage nodes known".into());
        let mut prefer_primary = false;
        for attempt in 0..self.inner.retries {
            ctx.attempt = attempt as u32;
            if attempt > 0 {
                self.inner.client_retries.fetch_add(1, Ordering::Relaxed);
                if ctx.expired() {
                    return Err(InvokeError::DeadlineExceeded);
                }
            }
            let final_attempt = attempt + 1 == self.inner.retries;
            // A shard marked lost has no live replica anywhere; calling
            // out would only burn the deadline on RPC timeouts. Keep
            // refreshing — the repair loop revives a lost shard as soon as
            // a former member rejoins — and if the retry budget runs out
            // first, surface the real condition instead of a timeout.
            if let Some((shard, info)) = self.inner.placement.locate(object) {
                if info.lost {
                    last_err = InvokeError::ShardUnavailable(format!(
                        "shard {shard} for object {object} lost every replica"
                    ));
                    self.refresh();
                    if !final_attempt {
                        std::thread::sleep(policy.pause(attempt, &ctx));
                    }
                    continue;
                }
            }
            let Some(node) = self.target_for(object, read_only, prefer_primary) else {
                self.refresh();
                if !final_attempt {
                    std::thread::sleep(policy.pause(attempt, &ctx));
                }
                continue;
            };
            match op(&ctx, node) {
                Ok(v) => return Ok(v),
                Err(e @ InvokeError::WrongNode(_)) => {
                    // Stale map: refresh and retry (§4.2.1 — clients
                    // reissue after reconfiguration), pinning reads to the
                    // primary from here on — re-rotating through a replica
                    // set the local map has wrong just burns attempts.
                    last_err = e;
                    prefer_primary = true;
                    self.refresh();
                    if !final_attempt {
                        std::thread::sleep(policy.pause(attempt, &ctx));
                    }
                }
                Err(e @ InvokeError::LeaseExpired(_)) => {
                    // A replica without a current read lease. The data is
                    // fine and the primary serves unconditionally: refresh
                    // and go straight there, with no backoff — this is a
                    // routing redirect, not congestion or failure. If the
                    // *primary* answered LeaseExpired, though, it cannot
                    // attest its own leadership until the next coordinator
                    // heartbeat lands; that is transient unavailability,
                    // so back off instead of burning the remaining
                    // attempts in a tight loop.
                    let was_primary = prefer_primary;
                    last_err = e;
                    prefer_primary = true;
                    self.refresh();
                    if was_primary && !final_attempt {
                        std::thread::sleep(policy.pause(attempt, &ctx));
                    }
                }
                Err(e @ InvokeError::ObjectMoved(_)) => {
                    // The object is mid-handoff (or just committed to its
                    // new shard): follow it. A redirect, not congestion or
                    // failure — no backoff beyond a brief pause when our
                    // placement has not caught up with the commit yet.
                    let before = self.inner.placement.version();
                    last_err = e;
                    prefer_primary = true;
                    self.refresh();
                    if self.inner.placement.version() == before && !final_attempt {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
                Err(e @ InvokeError::Nested(_)) => {
                    // Unreachable node or garbled reply: refresh and retry.
                    last_err = e;
                    self.refresh();
                    if !final_attempt {
                        std::thread::sleep(policy.pause(attempt, &ctx));
                    }
                }
                Err(e @ InvokeError::ShardUnavailable(_)) => {
                    // The server's placement says the shard lost every
                    // replica; keep refreshing in case repair revives it
                    // within our budget, else surface the condition.
                    last_err = e;
                    self.refresh();
                    if !final_attempt {
                        std::thread::sleep(policy.pause(attempt, &ctx));
                    }
                }
                Err(e @ InvokeError::Storage(_)) if !final_attempt => {
                    // Replication failure at the primary (e.g. backup died
                    // and the shard has not reconfigured yet): retry.
                    last_err = e;
                    self.refresh();
                    std::thread::sleep(policy.pause(attempt, &ctx));
                }
                Err(e @ InvokeError::Overloaded(_)) if !final_attempt => {
                    // Admission control shed us *before* burning the
                    // deadline; the placement map is not stale (no refresh
                    // needed) — back off and re-offer within the same
                    // budget.
                    last_err = e;
                    std::thread::sleep(policy.pause(attempt, &ctx));
                }
                Err(other) => return Err(other),
            }
        }
        Err(last_err)
    }

    /// How many routing retries (attempts beyond an operation's first)
    /// this client has performed.
    pub fn retries_performed(&self) -> u64 {
        self.inner.client_retries.load(Ordering::Relaxed)
    }

    /// Enable the client-edge result cache (idempotent; the first call's
    /// `capacity` wins) and subscribe this client to every known storage
    /// node's commit invalidation stream. Cacheable (deterministic
    /// read-only) invocations then return server-recorded read sets, and
    /// repeat reads short-circuit at the client without any RPC until a
    /// commit writes one of the recorded keys.
    ///
    /// The invalidation stream is push-based and best-effort: frames ride
    /// oneway messages and subscriptions live in node memory, so a node
    /// restart silently drops this client until
    /// [`resubscribe_invalidations`](Self::resubscribe_invalidations) runs
    /// again. Intended for read-mostly workloads that tolerate a bounded
    /// staleness window equal to one invalidation push in flight.
    pub fn enable_edge_cache(&self, capacity: usize) {
        let _ = self.inner.edge.set(Arc::new(ConsistentCache::new(capacity)));
        self.resubscribe_invalidations();
    }

    /// (Re-)subscribe this client to the invalidation stream of every
    /// storage node the placement currently knows. Call after adding or
    /// restarting nodes; unreachable nodes are skipped.
    pub fn resubscribe_invalidations(&self) {
        if self.inner.edge.get().is_none() {
            return;
        }
        self.refresh();
        let req = StoreRequest::SubscribeInvalidations { subscriber: self.inner.id };
        for node in self.inner.placement.storage_nodes() {
            let _ = self.call(node, &req);
        }
    }

    /// Statistics of the edge cache, if enabled.
    pub fn edge_cache_stats(&self) -> Option<CacheStats> {
        self.inner.edge.get().map(|c| c.stats())
    }

    /// Route read-only invocations straight to the primary instead of
    /// rotating across leased replicas (measurement ablation: the
    /// pre-lease read path, with identical execution semantics).
    pub fn pin_reads_to_primary(&self, pin: bool) {
        self.inner.pin_reads_to_primary.store(pin, Ordering::Relaxed);
    }

    /// Invoke `method` on `object`. `read_only` is a routing hint that lets
    /// the call run on any replica; it is re-verified server-side.
    ///
    /// The whole routing loop is one logical invocation: a single
    /// invocation id (every redelivery is deduplicable server-side), a
    /// single deadline budget equal to the client timeout, and the context
    /// (trace id + budget + origin + invocation id + attempt) travels with
    /// each attempt in the wire envelope.
    ///
    /// # Errors
    /// Any [`InvokeError`], after routing retries are exhausted;
    /// [`InvokeError::DeadlineExceeded`] once the budget is spent.
    pub fn invoke(
        &self,
        object: &ObjectId,
        method: &str,
        args: Vec<VmValue>,
        read_only: bool,
    ) -> Result<VmValue, InvokeError> {
        if read_only {
            if let Some(cache) = self.inner.edge.get() {
                if let Some(v) = cache.lookup(object, method, &args) {
                    return Ok(v);
                }
            }
        }
        self.with_routing(object, read_only, |ctx, node| {
            self.invoke_at(ctx, node, object, method, args.clone(), read_only)
        })
    }

    /// Invoke under a caller-supplied context: same routing loop as
    /// [`invoke`], but the caller's deadline bounds every attempt and the
    /// caller's invocation id is what servers deduplicate on. An attempt
    /// never starts once the budget is spent —
    /// [`InvokeError::DeadlineExceeded`] is returned rather than retried.
    ///
    /// [`invoke`]: StoreClient::invoke
    ///
    /// # Errors
    /// Any [`InvokeError`]; `DeadlineExceeded` once the context expires.
    pub fn invoke_ctx(
        &self,
        ctx: &InvocationContext,
        object: &ObjectId,
        method: &str,
        args: Vec<VmValue>,
        read_only: bool,
    ) -> Result<VmValue, InvokeError> {
        self.with_routing_ctx(*ctx, object, read_only, |ctx, node| {
            if ctx.expired() {
                return Err(InvokeError::DeadlineExceeded);
            }
            self.invoke_at(ctx, node, object, method, args.clone(), read_only)
        })
    }

    /// Invoke `method` on `object` without parking this thread: `done`
    /// runs on the client's RPC completion executor once the invocation
    /// succeeds, exhausts its retries, or spends its deadline budget.
    ///
    /// Same logical-invocation semantics as [`invoke`](StoreClient::invoke)
    /// — one invocation id across every redelivery, one shared deadline
    /// budget, exponential-backoff retries on `WrongNode`/`Nested`/
    /// `ShardUnavailable`/`Storage`/`Overloaded` — but backoff sleeps are
    /// timer events, not parked threads, so an open-loop generator can keep
    /// thousands of invocations in flight from a handful of threads.
    pub fn invoke_async(
        &self,
        object: &ObjectId,
        method: &str,
        args: Vec<VmValue>,
        read_only: bool,
        done: InvokeCallback,
    ) {
        if read_only {
            if let Some(cache) = self.inner.edge.get() {
                if let Some(v) = cache.lookup(object, method, &args) {
                    done(Ok(v));
                    return;
                }
            }
        }
        let st = AsyncInvokeState {
            client: self.clone(),
            object: object.clone(),
            method: method.to_string(),
            args,
            read_only,
            ctx: InvocationContext::client(self.inner.timeout),
            attempt: 0,
            pinned: None,
            prefer_primary: false,
            last_err: InvokeError::Nested("no storage nodes known".into()),
        };
        async_invoke_step(st, done);
    }

    /// Like [`invoke_async`](StoreClient::invoke_async), but every attempt
    /// goes to one fixed `endpoint` instead of routing by placement — the
    /// open-loop path to the disaggregated compute node or the serverless
    /// gateway, which proxy to storage themselves.
    pub fn invoke_async_at(
        &self,
        endpoint: NodeId,
        object: &ObjectId,
        method: &str,
        args: Vec<VmValue>,
        read_only: bool,
        done: InvokeCallback,
    ) {
        let st = AsyncInvokeState {
            client: self.clone(),
            object: object.clone(),
            method: method.to_string(),
            args,
            read_only,
            ctx: InvocationContext::client(self.inner.timeout),
            attempt: 0,
            pinned: Some(endpoint),
            prefer_primary: false,
            last_err: InvokeError::Nested("endpoint never reached".into()),
        };
        async_invoke_step(st, done);
    }

    fn invoke_at(
        &self,
        ctx: &InvocationContext,
        node: NodeId,
        object: &ObjectId,
        method: &str,
        args: Vec<VmValue>,
        read_only: bool,
    ) -> Result<VmValue, InvokeError> {
        let edge = if read_only { self.inner.edge.get() } else { None };
        // Keep the args for the cache insert only when one can happen; the
        // common (cache-off) path moves them into the request untouched.
        let insert_args = edge.map(|_| args.clone());
        let req = StoreRequest::Invoke {
            object: object.0.clone(),
            method: method.to_string(),
            args,
            read_only,
            internal: false,
            collect_read_set: edge.is_some(),
        };
        match self.call_ctx(ctx, node, &req)? {
            StoreResponse::Value(v) => Ok(v),
            StoreResponse::CachedValue { value, read_set } => {
                if let (Some(cache), Some(args)) = (edge, insert_args) {
                    cache.insert(object, method, &args, value.clone(), read_set);
                }
                Ok(value)
            }
            other => Err(InvokeError::Nested(format!("bad reply {other:?}"))),
        }
    }

    /// Create an object of a deployed type.
    ///
    /// Creation is retried like any other write, and a create is not
    /// deduplicated server-side, so `AlreadyExists` on a retry attempt is
    /// treated as success: the ambiguous earlier attempt committed before
    /// its reply was lost. A conflict on the very first attempt still
    /// errors. (A concurrent create of the same id by another client during
    /// our retry window is absorbed the same way — acceptable because
    /// creates of a given id are expected to have one owner.)
    ///
    /// # Errors
    /// Any [`InvokeError`].
    pub fn create_object(
        &self,
        type_name: &str,
        object: &ObjectId,
        fields: &[(&str, &[u8])],
    ) -> Result<(), InvokeError> {
        let attempted = std::cell::Cell::new(false);
        self.with_routing(object, false, |ctx, node| {
            let retrying = attempted.replace(true);
            let req = StoreRequest::CreateObject {
                type_name: type_name.to_string(),
                object: object.0.clone(),
                fields: fields.iter().map(|(f, v)| (f.to_string(), v.to_vec())).collect(),
            };
            match self.call_ctx(ctx, node, &req) {
                Ok(StoreResponse::Ok) => Ok(()),
                Ok(other) => Err(InvokeError::Nested(format!("bad reply {other:?}"))),
                Err(InvokeError::AlreadyExists(_)) if retrying => Ok(()),
                Err(e) => Err(e),
            }
        })
    }

    /// Delete an object.
    ///
    /// # Errors
    /// Any [`InvokeError`].
    pub fn delete_object(&self, object: &ObjectId) -> Result<(), InvokeError> {
        self.with_routing(object, false, |ctx, node| {
            let req = StoreRequest::DeleteObject { object: object.0.clone() };
            match self.call_ctx(ctx, node, &req)? {
                StoreResponse::Ok => Ok(()),
                other => Err(InvokeError::Nested(format!("bad reply {other:?}"))),
            }
        })
    }

    /// Deploy a bytecode object type to every registered storage node.
    ///
    /// # Errors
    /// The first node failure.
    pub fn deploy_type(
        &self,
        name: &str,
        fields: Vec<lambda_objects::FieldDef>,
        module: &Module,
    ) -> Result<(), InvokeError> {
        self.refresh();
        let nodes = self.inner.placement.storage_nodes();
        if nodes.is_empty() {
            return Err(InvokeError::Nested("no storage nodes registered".into()));
        }
        for node in nodes {
            let req = StoreRequest::DeployType {
                name: name.to_string(),
                fields: fields.clone(),
                module: module.clone(),
            };
            match self.call(node, &req)? {
                StoreResponse::Ok => {}
                other => return Err(InvokeError::Nested(format!("bad reply {other:?}"))),
            }
        }
        Ok(())
    }

    /// Migrate `object` to `target_shard` through the coordinator-owned
    /// protocol: propose a `PlanMigration` and wait for the replicated
    /// state machine to drive it to commit (microshard migration, §4.2).
    /// The source keeps serving — and keeps its copy — until the target
    /// holds the object durably and the routing flip is chosen into the
    /// Paxos log, so no failure in between can strand or lose the object.
    ///
    /// # Errors
    /// Plan rejection (unknown shard, concurrent migration of the same
    /// object to a different target), an aborted migration (target
    /// unreachable, replica failures mid-copy), or a poll timeout.
    pub fn migrate_object(
        &self,
        object: &ObjectId,
        target_shard: ShardId,
    ) -> Result<(), InvokeError> {
        let Some(coord) = &self.inner.coord else {
            return Err(InvokeError::Nested("migration needs a coordinator".into()));
        };
        self.refresh();
        let state = self.inner.placement.snapshot();
        if state.shard(target_shard).is_none() {
            return Err(InvokeError::Nested(format!("no shard {target_shard}")));
        }
        let Some(from) = state.shard_for_object(object.as_bytes()) else {
            return Err(InvokeError::Nested(format!("object {object} has no placement")));
        };
        if from == target_shard {
            return Ok(());
        }
        coord
            .propose(CoordCmd::PlanMigration { object: object.0.clone(), from, to: target_shard })
            .map_err(|e| InvokeError::Nested(format!("plan failed: {e}")))?;
        // The plan is applied deterministically on every replica, but may
        // have been rejected as a no-op (e.g. another migration of this
        // object was already in flight). Poll the replicated entry until
        // the migration resolves one way or the other.
        let deadline = Instant::now() + MIGRATE_WAIT;
        let mut seen = false;
        loop {
            self.refresh();
            let st = self.inner.placement.snapshot();
            if let Some(m) = st.migrations.get(object.as_bytes()) {
                if m.to != target_shard {
                    return Err(InvokeError::Nested(format!(
                        "concurrent migration of {object} to shard {} in flight",
                        m.to
                    )));
                }
                seen = true;
            } else {
                if st.shard_for_object(object.as_bytes()) == Some(target_shard) {
                    return Ok(());
                }
                if seen {
                    return Err(InvokeError::Nested(format!(
                        "migration of {object} to shard {target_shard} aborted"
                    )));
                }
            }
            if Instant::now() > deadline {
                return Err(InvokeError::Nested(format!(
                    "migration of {object} to shard {target_shard} did not complete"
                )));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Execute a serializable multi-call transaction. All objects must be
    /// served by the same primary node; the call is routed to the primary
    /// of the first object (a cross-shard mix yields
    /// [`InvokeError::WrongNode`]).
    ///
    /// # Errors
    /// Any [`InvokeError`]; on error no writes were applied.
    pub fn transact(&self, calls: Vec<TxCall>) -> Result<Vec<VmValue>, InvokeError> {
        let Some(first) = calls.first() else {
            return Ok(Vec::new());
        };
        let object = first.object.clone();
        self.with_routing(&object, false, |ctx, node| {
            let req = StoreRequest::Transact { calls: calls.clone() };
            match self.call_ctx(ctx, node, &req)? {
                StoreResponse::Values(v) => Ok(v),
                other => Err(InvokeError::Nested(format!("bad reply {other:?}"))),
            }
        })
    }

    /// Enumerate the objects stored on `node`.
    ///
    /// # Errors
    /// RPC failures.
    pub fn list_objects(&self, node: NodeId) -> Result<Vec<ObjectId>, InvokeError> {
        match self.call(node, &StoreRequest::ListObjects)? {
            StoreResponse::Objects(ids) => Ok(ids.into_iter().map(ObjectId::new).collect()),
            other => Err(InvokeError::Nested(format!("bad reply {other:?}"))),
        }
    }

    /// Rebalance one placement slot to `target_shard`: migrate every
    /// object hashing onto `slot` from its current shard, then flip the
    /// slot table (the Akkio-style microshard rebalancing §4.2 points at;
    /// moving whole slots is how the cluster scales out without touching
    /// unrelated data).
    ///
    /// # Errors
    /// Any migration or coordination failure (already-moved objects keep
    /// their pins, so a retried rebalance converges).
    pub fn rebalance_slot(&self, slot: u16, target_shard: ShardId) -> Result<usize, InvokeError> {
        use lambda_coordinator::ClusterState;
        self.refresh();
        let state = self.inner.placement.snapshot();
        let Some(&source_shard) = state.slots.get(&slot) else {
            return Err(InvokeError::Nested(format!("slot {slot} is unassigned")));
        };
        if source_shard == target_shard {
            return Ok(0);
        }
        let source = state
            .shard(source_shard)
            .ok_or_else(|| InvokeError::Nested(format!("no shard {source_shard}")))?
            .clone();
        // Every object in the slot currently lives on the source primary.
        let mut moved = Vec::new();
        for object in self.list_objects(source.primary)? {
            if ClusterState::slot_of(object.as_bytes()) != slot {
                continue;
            }
            // Skip objects pinned elsewhere (they only *stored* here if the
            // pin points here, in which case slot_of is irrelevant), and
            // objects a previous half-finished rebalance already landed on
            // another shard (stored residue, no longer placed here).
            if state.pins.contains_key(object.as_bytes())
                || state.shard_for_object(object.as_bytes()) != Some(source_shard)
            {
                continue;
            }
            match self.migrate_object(&object, target_shard) {
                Ok(()) => moved.push(object),
                Err(e) => {
                    // Partial-failure tolerance: an object that reached the
                    // target anyway (a concurrent or earlier interrupted
                    // rebalance) or is mid-migration right now must not
                    // fail the whole slot — the remaining objects still
                    // need moving and a retried rebalance converges.
                    self.refresh();
                    let now = self.inner.placement.snapshot();
                    if now.shard_for_object(object.as_bytes()) == Some(target_shard) {
                        moved.push(object);
                    } else if !now.migrations.contains_key(object.as_bytes()) {
                        return Err(e);
                    }
                }
            }
        }
        // Flip the slot table; future objects in this slot are created on
        // the target shard. Existing moved objects stay routed by pins
        // (equivalent destination), which keeps the cut-over race-free.
        if let Some(coord) = &self.inner.coord {
            coord
                .propose(lambda_coordinator::CoordCmd::AssignSlots {
                    shard: target_shard,
                    slots: vec![slot],
                })
                .map_err(|e| InvokeError::Nested(format!("slot flip failed: {e}")))?;
            // The flip makes the moved objects' pins redundant (pin ==
            // hash home); retire them so the directory only holds true
            // exceptions and the `coord_pins` gauge tracks real overrides.
            for object in &moved {
                coord
                    .propose(lambda_coordinator::CoordCmd::UnpinObject { object: object.0.clone() })
                    .map_err(|e| InvokeError::Nested(format!("unpin failed: {e}")))?;
            }
        }
        self.refresh();
        Ok(moved.len())
    }

    /// Fetch statistics from `node`.
    ///
    /// # Errors
    /// RPC failures.
    pub fn node_stats(&self, node: NodeId) -> Result<NodeStatsWire, InvokeError> {
        match self.call(node, &StoreRequest::Stats)? {
            StoreResponse::NodeStats(s) => Ok(s),
            other => Err(InvokeError::Nested(format!("bad reply {other:?}"))),
        }
    }

    /// Raw storage access (used by the disaggregated baseline's compute
    /// layer and by tests).
    ///
    /// # Errors
    /// RPC failures.
    pub fn raw(&self, node: NodeId, req: &StoreRequest) -> Result<StoreResponse, InvokeError> {
        self.call(node, req)
    }

    /// Shut the client's endpoint down.
    pub fn shutdown(&self) {
        self.inner.rpc.shutdown();
    }
}

/// Completion for [`StoreClient::invoke_async`].
pub type InvokeCallback = Box<dyn FnOnce(Result<VmValue, InvokeError>) + Send>;

/// One in-flight logical invocation of the async path. The state walks the
/// same routing loop as `with_routing_ctx`, but each retry is rescheduled
/// through the RPC timer instead of sleeping, and each attempt's reply is
/// classified in a completion callback instead of a parked thread.
struct AsyncInvokeState {
    client: StoreClient,
    object: ObjectId,
    method: String,
    args: Vec<VmValue>,
    read_only: bool,
    ctx: InvocationContext,
    attempt: usize,
    /// `Some` = every attempt goes to this endpoint (no placement routing).
    pinned: Option<NodeId>,
    /// Reads stop rotating and pin to the primary after a misroute
    /// (`WrongNode`/`LeaseExpired`), mirroring the blocking loop.
    prefer_primary: bool,
    last_err: InvokeError,
}

fn async_invoke_step(mut st: AsyncInvokeState, done: InvokeCallback) {
    let inner = Arc::clone(&st.client.inner);
    {
        if st.attempt >= inner.retries {
            done(Err(st.last_err));
            return;
        }
        st.ctx.attempt = st.attempt as u32;
        if st.attempt > 0 {
            inner.client_retries.fetch_add(1, Ordering::Relaxed);
            if st.ctx.expired() {
                done(Err(InvokeError::DeadlineExceeded));
                return;
            }
        }
        // Lost shard / unknown placement: refresh and go around (through
        // the backoff timer, not a sleep).
        let target = if st.pinned.is_some() {
            st.pinned
        } else {
            match inner.placement.locate(&st.object) {
                Some((shard, info)) if info.lost => {
                    st.last_err = InvokeError::ShardUnavailable(format!(
                        "shard {shard} for object {} lost every replica",
                        st.object
                    ));
                    st.client.refresh();
                    None
                }
                _ => st.client.target_for(&st.object, st.read_only, st.prefer_primary),
            }
        };
        let Some(node) = target else {
            st.client.refresh();
            st.attempt += 1;
            async_invoke_backoff(st, done);
            return;
        };
        let edge = if st.read_only { inner.edge.get().cloned() } else { None };
        let req = StoreRequest::Invoke {
            object: st.object.0.clone(),
            method: st.method.clone(),
            args: st.args.clone(),
            read_only: st.read_only,
            internal: false,
            collect_read_set: edge.is_some(),
        };
        let frame = proto::encode_request(&st.ctx, &req).expect("requests serialize");
        let rpc_timeout = st.ctx.rpc_timeout(inner.attempt_timeout);
        let rpc = Arc::clone(&inner.rpc);
        rpc.call_deferred(
            node,
            frame,
            rpc_timeout,
            Box::new(move |reply| {
                let result: Result<VmValue, InvokeError> = match reply {
                    Ok(bytes) => match wire::from_bytes(&bytes) {
                        Ok(StoreResponse::Value(v)) => Ok(v),
                        Ok(StoreResponse::CachedValue { value, read_set }) => {
                            if let Some(cache) = &edge {
                                cache.insert(
                                    &st.object,
                                    &st.method,
                                    &st.args,
                                    value.clone(),
                                    read_set,
                                );
                            }
                            Ok(value)
                        }
                        Ok(other) => Err(InvokeError::Nested(format!("bad reply {other:?}"))),
                        Err(e) => Err(InvokeError::Nested(format!("bad response: {e}"))),
                    },
                    Err(RpcError::Remote(msg)) => Err(decode_error(&msg)),
                    Err(other) => Err(InvokeError::Nested(other.to_string())),
                };
                match result {
                    Ok(v) => done(Ok(v)),
                    Err(e @ InvokeError::LeaseExpired(_)) => {
                        // Routing redirect, not failure: refresh, pin to
                        // the primary, and go again without backoff. If
                        // the primary itself answered LeaseExpired (it
                        // cannot attest leadership until the next
                        // coordinator heartbeat), back off like any
                        // transient fault instead of burning attempts.
                        let was_primary = st.prefer_primary;
                        st.last_err = e;
                        st.prefer_primary = true;
                        st.client.refresh();
                        st.attempt += 1;
                        if was_primary {
                            async_invoke_backoff(st, done);
                        } else {
                            async_invoke_step(st, done);
                        }
                    }
                    Err(e @ InvokeError::ObjectMoved(_)) => {
                        // Mid-handoff redirect: refresh and follow the
                        // object without burning backoff budget. Only when
                        // the refresh learned nothing does the next attempt
                        // go through the timer (placement lag, not load).
                        let before = st.client.inner.placement.version();
                        st.last_err = e;
                        st.prefer_primary = true;
                        st.client.refresh();
                        st.attempt += 1;
                        if st.client.inner.placement.version() == before {
                            async_invoke_backoff(st, done);
                        } else {
                            async_invoke_step(st, done);
                        }
                    }
                    Err(e @ InvokeError::WrongNode(_)) => {
                        st.last_err = e;
                        st.prefer_primary = true;
                        st.client.refresh();
                        st.attempt += 1;
                        async_invoke_backoff(st, done);
                    }
                    Err(
                        e @ (InvokeError::Nested(_)
                        | InvokeError::ShardUnavailable(_)
                        | InvokeError::Storage(_)),
                    ) => {
                        st.last_err = e;
                        st.client.refresh();
                        st.attempt += 1;
                        async_invoke_backoff(st, done);
                    }
                    Err(e @ InvokeError::Overloaded(_)) => {
                        // Shed early by admission control: the placement
                        // map is fine, just back off and re-offer.
                        st.last_err = e;
                        st.attempt += 1;
                        async_invoke_backoff(st, done);
                    }
                    Err(other) => done(Err(other)),
                }
            }),
        );
    }
}

/// Schedule the next attempt after the policy's jittered pause, on the RPC
/// timer (no thread parks). The policy is rebuilt per attempt from the
/// invocation identity + attempt number, preserving deterministic replay
/// without holding a `!Sync` rng across callbacks.
fn async_invoke_backoff(st: AsyncInvokeState, done: InvokeCallback) {
    if st.attempt >= st.client.inner.retries {
        done(Err(st.last_err));
        return;
    }
    if st.ctx.expired() {
        // Mirror the blocking loop: once the budget is spent, report
        // `DeadlineExceeded` now instead of scheduling a timer whose only
        // outcome is discovering the same thing later.
        done(Err(InvokeError::DeadlineExceeded));
        return;
    }
    let mut policy = RetryPolicy::new(
        st.ctx.invocation_id ^ st.ctx.trace_id ^ (st.attempt as u64).wrapping_mul(0x9e37),
    );
    let pause = policy.pause(st.attempt.saturating_sub(1), &st.ctx);
    let rpc = Arc::clone(&st.client.inner.rpc);
    rpc.schedule(pause, Box::new(move || async_invoke_step(st, done)));
}
