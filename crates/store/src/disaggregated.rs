//! The disaggregated baseline: functions execute on a dedicated compute
//! node, every storage access crosses the network.
//!
//! This is the comparison system of §5: "The disaggregated variant is
//! implemented as a standalone process executing WebAssembly binaries. In
//! addition, the baseline uses our prototype as its storage layer" — here,
//! the compute node runs the *same* bytecode modules in the *same* metered
//! VM, but its [`Host`] implementation translates every `get`/`put`/
//! `push`/`scan` into an RPC against the storage replica set (the `Raw*`
//! requests served by [`AggregatedNode`](crate::aggregated::AggregatedNode)).
//! It offers **no consistency guarantees**: no per-object scheduling, no
//! write buffering, writes replicate asynchronously.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use lambda_net::rpc::{null_handler, sync_handler};
use lambda_net::{wire, Network, NodeId, RpcError, RpcNode};
use lambda_objects::{encode_error, keys, InvokeError, ObjectId};
use lambda_vm::{Host, HostError, Interpreter, Limits, Module, VmValue};

use crate::proto::{NodeStatsWire, StoreRequest, StoreResponse};

/// Configuration of the compute layer.
#[derive(Debug, Clone)]
pub struct ComputeConfig {
    /// Storage replica set; index 0 is treated as the write target.
    pub storage: Vec<NodeId>,
    /// RPC worker threads.
    pub workers: usize,
    /// Per-storage-RPC timeout.
    pub rpc_timeout: Duration,
    /// VM limits per invocation.
    pub limits: Limits,
    /// Lowered-bytecode cache capacity in modules (0 re-lowers every
    /// invocation).
    pub lowered_cache_capacity: usize,
}

impl ComputeConfig {
    /// Defaults against the given storage nodes.
    pub fn new(storage: Vec<NodeId>) -> ComputeConfig {
        ComputeConfig {
            storage,
            workers: 16,
            rpc_timeout: Duration::from_secs(1),
            limits: Limits::default(),
            lowered_cache_capacity: lambda_vm::DEFAULT_LOWERED_CACHE_CAPACITY,
        }
    }
}

/// Shared function-execution machinery: used by the plain compute node and
/// by the conventional-serverless gateway.
pub struct FunctionExecutor {
    rpc: Arc<RpcNode>,
    storage: Vec<NodeId>,
    modules: RwLock<HashMap<String, Arc<Module>>>,
    interpreter: Interpreter,
    rpc_timeout: Duration,
    read_rr: AtomicU64,
    /// Storage round-trips performed (the quantity disaggregation pays).
    pub storage_rpcs: AtomicU64,
    /// Function invocations executed (including nested).
    pub invocations: AtomicU64,
}

impl std::fmt::Debug for FunctionExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionExecutor").field("storage", &self.storage).finish()
    }
}

impl FunctionExecutor {
    /// Build an executor that issues storage RPCs through `rpc`.
    pub fn new(rpc: Arc<RpcNode>, config: &ComputeConfig) -> FunctionExecutor {
        assert!(!config.storage.is_empty(), "need at least one storage node");
        FunctionExecutor {
            rpc,
            storage: config.storage.clone(),
            modules: RwLock::new(HashMap::new()),
            interpreter: Interpreter::with_cache_capacity(
                config.limits,
                config.lowered_cache_capacity,
            ),
            rpc_timeout: config.rpc_timeout,
            read_rr: AtomicU64::new(0),
            storage_rpcs: AtomicU64::new(0),
            invocations: AtomicU64::new(0),
        }
    }

    /// Deploy a type's module under `name`.
    pub fn deploy(&self, name: impl Into<String>, module: Module) {
        self.modules.write().insert(name.into(), Arc::new(module));
    }

    fn write_target(&self) -> NodeId {
        self.storage[0]
    }

    fn read_target(&self) -> NodeId {
        let i = self.read_rr.fetch_add(1, Ordering::Relaxed) as usize;
        self.storage[i % self.storage.len()]
    }

    fn storage_call(&self, node: NodeId, req: &StoreRequest) -> Result<StoreResponse, HostError> {
        self.storage_rpcs.fetch_add(1, Ordering::Relaxed);
        let body = wire::to_bytes(req).expect("requests serialize");
        match self.rpc.call(node, body, self.rpc_timeout) {
            Ok(bytes) => wire::from_bytes(&bytes)
                .map_err(|e| HostError::Storage(format!("bad response: {e}"))),
            Err(RpcError::Remote(msg)) => Err(HostError::Storage(msg)),
            Err(other) => Err(HostError::Storage(other.to_string())),
        }
    }

    /// Execute `method` of `object` here on the compute node.
    ///
    /// # Errors
    /// Any [`InvokeError`]; note that unlike the aggregated path, partial
    /// writes of a failed invocation **stay applied** (no consistency
    /// guarantees — §5).
    pub fn execute(
        &self,
        object: &ObjectId,
        method: &str,
        args: Vec<VmValue>,
        external: bool,
    ) -> Result<VmValue, InvokeError> {
        self.invocations.fetch_add(1, Ordering::Relaxed);
        // Fetch the object's type over the network (meta lookup).
        let meta = self
            .storage_call(self.read_target(), &StoreRequest::RawGet { key: keys::meta_key(object) })
            .map_err(InvokeError::from)?;
        let type_name = match meta {
            StoreResponse::MaybeBytes(Some(bytes)) => String::from_utf8_lossy(&bytes).into_owned(),
            StoreResponse::MaybeBytes(None) => {
                return Err(InvokeError::UnknownObject(object.to_string()))
            }
            other => return Err(InvokeError::Storage(format!("bad reply {other:?}"))),
        };
        let module = self
            .modules
            .read()
            .get(&type_name)
            .cloned()
            .ok_or(InvokeError::UnknownType(type_name))?;
        let (_, def) = module
            .function(method)
            .ok_or_else(|| InvokeError::UnknownMethod(method.to_string()))?;
        if external && !def.public {
            return Err(InvokeError::NotPublic(method.to_string()));
        }
        let mut host = RemoteHost { executor: self, object: object.clone() };
        self.interpreter.execute(&module, method, args, &mut host).map_err(InvokeError::from)
    }

    /// Create an object by writing its meta + fields over the raw API.
    ///
    /// # Errors
    /// Storage failures.
    pub fn create_object(
        &self,
        type_name: &str,
        object: &ObjectId,
        fields: &[(String, Vec<u8>)],
    ) -> Result<(), InvokeError> {
        self.storage_call(
            self.write_target(),
            &StoreRequest::RawPut {
                key: keys::meta_key(object),
                value: type_name.as_bytes().to_vec(),
            },
        )
        .map_err(InvokeError::from)?;
        for (field, value) in fields {
            self.storage_call(
                self.write_target(),
                &StoreRequest::RawPut {
                    key: keys::field_key(object, field.as_bytes()),
                    value: value.clone(),
                },
            )
            .map_err(InvokeError::from)?;
        }
        Ok(())
    }
}

/// [`Host`] that pays one network round-trip per storage access (§4.1:
/// "each storage access requires a network round-trip").
struct RemoteHost<'a> {
    executor: &'a FunctionExecutor,
    object: ObjectId,
}

impl Host for RemoteHost<'_> {
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, HostError> {
        let req = StoreRequest::RawGet { key: keys::field_key(&self.object, key) };
        match self.executor.storage_call(self.executor.read_target(), &req)? {
            StoreResponse::MaybeBytes(v) => Ok(v),
            other => Err(HostError::Storage(format!("bad reply {other:?}"))),
        }
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), HostError> {
        let req =
            StoreRequest::RawPut { key: keys::field_key(&self.object, key), value: value.to_vec() };
        match self.executor.storage_call(self.executor.write_target(), &req)? {
            StoreResponse::Ok => Ok(()),
            other => Err(HostError::Storage(format!("bad reply {other:?}"))),
        }
    }

    fn delete(&mut self, key: &[u8]) -> Result<(), HostError> {
        let req = StoreRequest::RawDelete { key: keys::field_key(&self.object, key) };
        match self.executor.storage_call(self.executor.write_target(), &req)? {
            StoreResponse::Ok => Ok(()),
            other => Err(HostError::Storage(format!("bad reply {other:?}"))),
        }
    }

    fn push(&mut self, field: &[u8], value: &[u8]) -> Result<(), HostError> {
        let req = StoreRequest::RawPush {
            object: self.object.0.clone(),
            field: field.to_vec(),
            value: value.to_vec(),
        };
        match self.executor.storage_call(self.executor.write_target(), &req)? {
            StoreResponse::Ok => Ok(()),
            other => Err(HostError::Storage(format!("bad reply {other:?}"))),
        }
    }

    fn scan(
        &mut self,
        field: &[u8],
        limit: usize,
        newest_first: bool,
    ) -> Result<Vec<Vec<u8>>, HostError> {
        let req = StoreRequest::RawScan {
            object: self.object.0.clone(),
            field: field.to_vec(),
            limit: limit as u64,
            newest_first,
        };
        match self.executor.storage_call(self.executor.read_target(), &req)? {
            StoreResponse::Rows(rows) => Ok(rows),
            other => Err(HostError::Storage(format!("bad reply {other:?}"))),
        }
    }

    fn count(&mut self, field: &[u8]) -> Result<u64, HostError> {
        let req = StoreRequest::RawCount { object: self.object.0.clone(), field: field.to_vec() };
        match self.executor.storage_call(self.executor.read_target(), &req)? {
            StoreResponse::Count(n) => Ok(n),
            other => Err(HostError::Storage(format!("bad reply {other:?}"))),
        }
    }

    fn invoke(
        &mut self,
        object: &[u8],
        method: &str,
        args: Vec<VmValue>,
    ) -> Result<VmValue, HostError> {
        // A nested call is simply another function invocation on this
        // compute node — with its own meta fetch and per-access RPCs.
        let target = ObjectId::new(object.to_vec());
        self.executor
            .execute(&target, method, args, false)
            .map_err(|e| HostError::InvokeFailed(lambda_objects::encode_error(&e)))
    }

    fn invoke_many(
        &mut self,
        targets: Vec<Vec<u8>>,
        method: &str,
        args: Vec<VmValue>,
    ) -> Result<Vec<VmValue>, HostError> {
        // The compute node also parallelizes its fan-out (fair comparison:
        // both architectures run store_post calls concurrently, §3.2); each
        // parallel branch still pays its own meta fetch and per-access
        // storage round-trips.
        let executor = self.executor;
        const FANOUT_WAVE: usize = 8;
        let mut results: Vec<Result<VmValue, HostError>> = Vec::with_capacity(targets.len());
        for wave in targets.chunks(FANOUT_WAVE) {
            let wave_results: Vec<Result<VmValue, HostError>> = std::thread::scope(|scope| {
                let handles: Vec<_> = wave
                    .iter()
                    .map(|target| {
                        let args = args.clone();
                        let target = ObjectId::new(target.clone());
                        scope.spawn(move || {
                            executor.execute(&target, method, args, false).map_err(|e| {
                                HostError::InvokeFailed(lambda_objects::encode_error(&e))
                            })
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|_| {
                            Err(HostError::InvokeFailed("fan-out thread panicked".into()))
                        })
                    })
                    .collect()
            });
            results.extend(wave_results);
        }
        results.into_iter().collect()
    }

    fn self_id(&self) -> Vec<u8> {
        self.object.0.clone()
    }

    fn now_millis(&mut self) -> i64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as i64)
            .unwrap_or(0)
    }

    fn log(&mut self, _msg: &str) {}
}

/// A dedicated compute node serving `Invoke` requests over RPC.
pub struct ComputeNode {
    inner: Arc<ComputeInner>,
}

struct ComputeInner {
    id: NodeId,
    executor: Arc<FunctionExecutor>,
    rpc: std::sync::OnceLock<Arc<RpcNode>>,
    requests: AtomicU64,
    busy_nanos: AtomicU64,
    started: Instant,
}

impl std::fmt::Debug for ComputeNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComputeNode").field("id", &self.inner.id).finish()
    }
}

impl ComputeInner {
    fn handle(&self, body: Vec<u8>) -> Result<Vec<u8>, String> {
        let started = Instant::now();
        self.requests.fetch_add(1, Ordering::Relaxed);
        // Strip the request envelope; the baseline ignores the carried
        // context (no deadline enforcement, no spans — it has none of the
        // aggregated path's machinery, which is the point of §5).
        let (_ctx, req) = crate::proto::decode_request(&body).map_err(|e| e.to_string())?;
        let result = match req {
            StoreRequest::Invoke { object, method, args, .. } => {
                let oid = ObjectId::new(object);
                self.executor.execute(&oid, &method, args, true).map(StoreResponse::Value)
            }
            StoreRequest::CreateObject { type_name, object, fields } => {
                let oid = ObjectId::new(object);
                self.executor.create_object(&type_name, &oid, &fields).map(|()| StoreResponse::Ok)
            }
            StoreRequest::DeployType { name, module, .. } => {
                self.executor.deploy(name, module);
                Ok(StoreResponse::Ok)
            }
            StoreRequest::Stats => Ok(StoreResponse::NodeStats(self.stats())),
            other => Err(InvokeError::Nested(format!("unsupported on compute node: {other:?}"))),
        };
        let encoded = result
            .map_err(|e| encode_error(&e))
            .and_then(|resp| wire::to_bytes(&resp).map_err(|e| e.to_string()));
        self.busy_nanos.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        encoded
    }

    fn stats(&self) -> NodeStatsWire {
        NodeStatsWire {
            requests: self.requests.load(Ordering::Relaxed),
            invocations: self.executor.invocations.load(Ordering::Relaxed),
            cache_hits: 0,
            replications_applied: 0,
            duplicates_suppressed: 0,
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
            uptime_nanos: self.started.elapsed().as_nanos() as u64,
            ..Default::default()
        }
    }
}

impl ComputeNode {
    /// Start a compute node at `id`. The executor issues its storage RPCs
    /// from a dedicated endpoint (`id + 30000`).
    pub fn start(net: &Network, id: NodeId, config: ComputeConfig) -> Arc<ComputeNode> {
        let exec_rpc = RpcNode::start(net, NodeId(id.0 + 30_000), null_handler(), 1);
        let executor = Arc::new(FunctionExecutor::new(exec_rpc, &config));
        let inner = Arc::new(ComputeInner {
            id,
            executor,
            rpc: std::sync::OnceLock::new(),
            requests: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            started: Instant::now(),
        });
        let handler_inner = Arc::clone(&inner);
        let rpc = RpcNode::start(
            net,
            id,
            sync_handler(move |_from, body| handler_inner.handle(body)),
            config.workers,
        );
        inner.rpc.set(rpc).expect("set once");
        Arc::new(ComputeNode { inner })
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.inner.id
    }

    /// The executor (direct access for builders/tests).
    pub fn executor(&self) -> &Arc<FunctionExecutor> {
        &self.inner.executor
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> NodeStatsWire {
        self.inner.stats()
    }

    /// Stop serving.
    pub fn shutdown(&self) {
        if let Some(rpc) = self.inner.rpc.get() {
            rpc.shutdown();
        }
        self.inner.executor.rpc.shutdown();
    }
}
