//! Turn-key cluster builders for the three architectures, matching the
//! evaluation setup of §5 ("one machine for compute and three machines for
//! storage. The storage machines form a replica set and do not perform
//! sharding").

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lambda_coordinator::{CoordClient, CoordCmd, CoordConfig, Coordinator, N_SLOTS};
use lambda_net::null_handler;
use lambda_net::{LatencyModel, Network, NodeId, RpcNode};
use lambda_objects::{EngineConfig, InvokeError};
use lambda_paxos::PaxosConfig;

use crate::aggregated::{AggregatedConfig, AggregatedNode};
use crate::client::StoreClient;
use crate::disaggregated::{ComputeConfig, ComputeNode};
use crate::serverless::{ServerlessConfig, ServerlessGateway};

/// Base node-id layout used by the builders.
pub mod ids {
    use lambda_net::NodeId;

    /// First storage node id.
    pub const STORAGE_BASE: u32 = 1;
    /// First coordinator service id.
    pub const COORD_BASE: u32 = 101;
    /// The compute node (disaggregated baseline).
    pub const COMPUTE: NodeId = NodeId(301);
    /// The serverless gateway.
    pub const GATEWAY: NodeId = NodeId(401);
    /// First client id (callers allocate upward from here).
    pub const CLIENT_BASE: u32 = 501;
    /// Internal admin endpoint used during cluster bootstrap.
    pub const ADMIN: NodeId = NodeId(901);
}

/// Shared cluster construction options.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of storage nodes.
    pub storage_nodes: u32,
    /// Number of coordinator replicas.
    pub coordinators: u32,
    /// Number of shards (replica groups) to create.
    pub shards: u32,
    /// Replicas per shard.
    pub replication_factor: usize,
    /// Simulated network latency.
    pub latency: LatencyModel,
    /// Base directory for all node data.
    pub base_dir: PathBuf,
    /// Engine options for aggregated nodes.
    pub engine: EngineConfig,
    /// Storage-engine options.
    pub kv: lambda_kv::Options,
    /// Per-node storage-engine overrides, keyed by storage index (node id
    /// minus [`ids::STORAGE_BASE`]). Disk-fault tests use this to hand
    /// individual nodes a seeded [`lambda_kv::FaultVfs`] while the rest of
    /// the cluster runs on the real filesystem.
    pub kv_overrides: std::collections::HashMap<u32, lambda_kv::Options>,
    /// RPC workers per node.
    pub workers: usize,
    /// Run-queue depth that trips admission control on aggregated nodes
    /// (`0` = unbounded; see [`AggregatedConfig::run_queue_depth`]).
    pub run_queue_depth: usize,
    /// Heartbeat interval for storage nodes.
    pub heartbeat_interval: Duration,
    /// Heartbeat timeout before the coordinator declares a node dead.
    pub heartbeat_timeout: Duration,
    /// Read-lease duration for aggregated nodes (see
    /// [`AggregatedConfig::lease_duration`]). Keep below
    /// `heartbeat_timeout * 2` so a deposed primary's grants expire before
    /// a successor's promotion fence lifts.
    pub lease_duration: Duration,
    /// How often the coordinator's rebalancer scans heartbeat load reports
    /// and plans hot-object migrations. `Duration::ZERO` (the default)
    /// disables automatic rebalancing.
    pub rebalance_interval: Duration,
    /// Invocations-per-heartbeat an object must reach before the
    /// rebalancer considers moving it off an overloaded node.
    pub hot_object_threshold: u64,
}

static CLUSTER_COUNTER: AtomicU32 = AtomicU32::new(0);

impl Default for ClusterConfig {
    fn default() -> Self {
        let n = CLUSTER_COUNTER.fetch_add(1, Ordering::Relaxed);
        ClusterConfig {
            storage_nodes: 3,
            coordinators: 3,
            shards: 1,
            replication_factor: 3,
            latency: LatencyModel::default(),
            base_dir: std::env::temp_dir().join(format!("lambdastore-{}-{n}", std::process::id())),
            engine: EngineConfig::default(),
            kv: lambda_kv::Options::default(),
            kv_overrides: std::collections::HashMap::new(),
            workers: 48,
            run_queue_depth: 1024,
            heartbeat_interval: Duration::from_millis(100),
            heartbeat_timeout: Duration::from_millis(600),
            lease_duration: Duration::from_millis(400),
            rebalance_interval: Duration::ZERO,
            hot_object_threshold: 64,
        }
    }
}

impl ClusterConfig {
    /// Low-latency settings for fast unit/integration tests.
    pub fn for_tests() -> Self {
        ClusterConfig {
            latency: LatencyModel::instant(),
            kv: lambda_kv::Options::small_for_tests(),
            ..ClusterConfig::default()
        }
    }

    /// The storage-engine options for storage index `idx`: the per-node
    /// override when one is registered, the shared default otherwise.
    pub fn kv_for(&self, idx: u32) -> lambda_kv::Options {
        self.kv_overrides.get(&idx).cloned().unwrap_or_else(|| self.kv.clone())
    }
}

/// Everything shared by the architecture-specific clusters.
pub struct ClusterCore {
    /// The simulated network.
    pub net: Network,
    /// Coordinator replicas.
    pub coordinators: Vec<Arc<Coordinator>>,
    /// Coordinator service ids.
    pub coordinator_ids: Vec<NodeId>,
    /// Storage nodes (aggregated nodes serve both architectures' storage).
    pub storage: Vec<Arc<AggregatedNode>>,
    /// Storage node ids.
    pub storage_ids: Vec<NodeId>,
    base_dir: PathBuf,
    next_client: AtomicU32,
}

impl std::fmt::Debug for ClusterCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterCore")
            .field("storage", &self.storage_ids)
            .field("coordinators", &self.coordinator_ids)
            .finish()
    }
}

impl ClusterCore {
    fn build(config: &ClusterConfig) -> Result<ClusterCore, InvokeError> {
        std::fs::create_dir_all(&config.base_dir)
            .map_err(|e| InvokeError::Storage(e.to_string()))?;
        let net = Network::new(config.latency, 0xc10d);

        // Coordination service.
        let coordinator_ids: Vec<NodeId> =
            (0..config.coordinators).map(|i| NodeId(ids::COORD_BASE + i)).collect();
        let coord_config = CoordConfig {
            heartbeat_timeout: config.heartbeat_timeout,
            detector_interval: config.heartbeat_interval / 2,
            repair_interval: config.heartbeat_interval,
            rebalance_interval: config.rebalance_interval,
            rebalance: lambda_coordinator::RebalancePolicy {
                hot_object_threshold: config.hot_object_threshold,
                ..lambda_coordinator::RebalancePolicy::default()
            },
            paxos: PaxosConfig::default(),
            workers: 4,
            rpc_timeout: Duration::from_millis(500),
        };
        let coordinators: Vec<Arc<Coordinator>> = coordinator_ids
            .iter()
            .map(|&id| Coordinator::start(&net, id, coordinator_ids.clone(), coord_config))
            .collect();

        // Bootstrap: register nodes, create shards, assign slots.
        let storage_ids: Vec<NodeId> =
            (0..config.storage_nodes).map(|i| NodeId(ids::STORAGE_BASE + i)).collect();
        let admin_rpc = RpcNode::start(&net, ids::ADMIN, null_handler(), 1);
        let admin = CoordClient::new(
            Arc::clone(&admin_rpc),
            coordinator_ids.clone(),
            Duration::from_secs(5),
        );
        for &id in &storage_ids {
            admin
                .propose(CoordCmd::RegisterNode { node: id })
                .map_err(|e| InvokeError::Nested(format!("bootstrap: {e}")))?;
        }
        let rf = config.replication_factor.clamp(1, storage_ids.len());
        for shard in 0..config.shards {
            let replicas: Vec<NodeId> =
                (0..rf).map(|r| storage_ids[(shard as usize + r) % storage_ids.len()]).collect();
            admin
                .propose(CoordCmd::CreateShard { shard, replicas })
                .map_err(|e| InvokeError::Nested(format!("bootstrap: {e}")))?;
        }
        // Distribute slots round-robin across the shards.
        for shard in 0..config.shards {
            let slots: Vec<u16> =
                (0..N_SLOTS).filter(|s| (s % config.shards as u16) == shard as u16).collect();
            admin
                .propose(CoordCmd::AssignSlots { shard, slots })
                .map_err(|e| InvokeError::Nested(format!("bootstrap: {e}")))?;
        }
        admin_rpc.shutdown();

        // Storage nodes.
        let mut storage = Vec::new();
        for &id in &storage_ids {
            let node_config = AggregatedConfig {
                data_dir: config.base_dir.join(format!("node-{}", id.0)),
                kv: config.kv_for(id.0 - ids::STORAGE_BASE),
                engine: config.engine,
                workers: config.workers,
                run_queue_depth: config.run_queue_depth,
                rpc_timeout: Duration::from_millis(500),
                heartbeat_interval: config.heartbeat_interval,
                coordinators: coordinator_ids.clone(),
                sync_chunk_bytes: 64 * 1024,
                lease_duration: config.lease_duration,
            };
            storage.push(AggregatedNode::start(&net, id, node_config)?);
        }

        // Wait for every node to learn the bootstrap shard map.
        let deadline = Instant::now() + Duration::from_secs(10);
        for node in &storage {
            while node.placement().version() == 0 {
                if Instant::now() > deadline {
                    return Err(InvokeError::Nested(
                        "bootstrap: nodes never received the shard map".into(),
                    ));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }

        Ok(ClusterCore {
            net,
            coordinators,
            coordinator_ids,
            storage,
            storage_ids,
            base_dir: config.base_dir.clone(),
            next_client: AtomicU32::new(ids::CLIENT_BASE),
        })
    }

    /// Elastically add a storage node to the running cluster (§7's open
    /// problem: "how to efficiently shard and scale systems that support
    /// LambdaObjects"). The node registers with the coordinator and starts
    /// heartbeating; it serves no data until a shard is created on it (see
    /// [`create_shard`](Self::create_shard)) and objects are migrated over
    /// (`StoreClient::migrate_object`).
    ///
    /// # Errors
    /// Bootstrap/registration failures.
    pub fn add_storage_node(&mut self, config: &ClusterConfig) -> Result<NodeId, InvokeError> {
        let id = NodeId(self.storage_ids.iter().map(|n| n.0).max().unwrap_or(0) + 1);
        let node_config = AggregatedConfig {
            data_dir: self.base_dir.join(format!("node-{}", id.0)),
            kv: config.kv_for(id.0 - ids::STORAGE_BASE),
            engine: config.engine,
            workers: config.workers,
            run_queue_depth: config.run_queue_depth,
            rpc_timeout: Duration::from_millis(500),
            heartbeat_interval: config.heartbeat_interval,
            coordinators: self.coordinator_ids.clone(),
            sync_chunk_bytes: 64 * 1024,
            lease_duration: config.lease_duration,
        };
        let node = AggregatedNode::start(&self.net, id, node_config)?;
        let admin_id = NodeId(ids::ADMIN.0 + 1 + id.0);
        let admin_rpc = RpcNode::start(&self.net, admin_id, null_handler(), 1);
        let admin = CoordClient::new(
            Arc::clone(&admin_rpc),
            self.coordinator_ids.clone(),
            Duration::from_secs(5),
        );
        admin
            .propose(CoordCmd::RegisterNode { node: id })
            .map_err(|e| InvokeError::Nested(format!("register: {e}")))?;
        admin_rpc.shutdown();
        self.storage.push(node);
        self.storage_ids.push(id);
        Ok(id)
    }

    /// Create a new shard with an explicit replica set. The shard holds no
    /// placement slots until objects are pinned to it (or slots are
    /// reassigned together with a data migration).
    ///
    /// # Errors
    /// Coordination failures.
    pub fn create_shard(
        &self,
        shard: lambda_coordinator::ShardId,
        replicas: Vec<NodeId>,
    ) -> Result<(), InvokeError> {
        let admin_id = NodeId(ids::ADMIN.0 + 5000 + shard);
        let admin_rpc = RpcNode::start(&self.net, admin_id, null_handler(), 1);
        let admin = CoordClient::new(
            Arc::clone(&admin_rpc),
            self.coordinator_ids.clone(),
            Duration::from_secs(5),
        );
        admin
            .propose(CoordCmd::CreateShard { shard, replicas })
            .map_err(|e| InvokeError::Nested(format!("create shard: {e}")))?;
        admin_rpc.shutdown();
        Ok(())
    }

    /// Gracefully decommission storage node `idx` (planned scale-in): for
    /// every shard it serves, propose a reconfiguration that drops it
    /// (promoting a backup when it was primary), wait until no shard
    /// references it, then shut it down. Requires every affected shard to
    /// keep at least one surviving replica (rf ≥ 2).
    ///
    /// # Errors
    /// Coordination failures, or a shard that would lose its last replica.
    pub fn decommission_node(&self, idx: usize) -> Result<(), InvokeError> {
        let node = &self.storage[idx];
        let id = node.id();
        let admin_id = NodeId(ids::ADMIN.0 + 2000 + id.0);
        let admin_rpc = RpcNode::start(&self.net, admin_id, null_handler(), 1);
        let admin = CoordClient::new(
            Arc::clone(&admin_rpc),
            self.coordinator_ids.clone(),
            Duration::from_secs(5),
        );
        let state = admin
            .get_state(0)
            .map_err(|e| InvokeError::Nested(format!("decommission: {e}")))?
            .ok_or_else(|| InvokeError::Nested("decommission: no cluster state".into()))?;
        let plan = state.plan_failover(id);
        // A graceful scale-in must never orphan data: a plan that would
        // mark a shard lost means this node is its last replica.
        if plan.iter().any(|cmd| matches!(cmd, CoordCmd::MarkShardLost { .. })) {
            admin_rpc.shutdown();
            return Err(InvokeError::Nested(format!(
                "decommission: node-{} is the last replica of a shard",
                id.0
            )));
        }
        for cmd in plan {
            admin.propose(cmd).map_err(|e| InvokeError::Nested(format!("decommission: {e}")))?;
        }
        admin
            .propose(CoordCmd::RemoveNode { node: id })
            .map_err(|e| InvokeError::Nested(format!("decommission: {e}")))?;
        admin_rpc.shutdown();
        node.shutdown();
        Ok(())
    }

    /// A new client endpoint on this cluster.
    pub fn client(&self) -> StoreClient {
        let id = NodeId(self.next_client.fetch_add(1, Ordering::Relaxed));
        StoreClient::new(&self.net, id, self.coordinator_ids.clone(), Duration::from_secs(5))
    }

    /// Root directory of this cluster's on-disk state.
    pub fn base_dir(&self) -> &std::path::Path {
        &self.base_dir
    }

    /// Crash storage node `idx`: stop its RPC endpoints and cut its links.
    pub fn kill_storage_node(&self, idx: usize) {
        let node = &self.storage[idx];
        let id = node.id();
        node.shutdown();
        self.net.isolate(id);
        self.net.isolate(NodeId(id.0 + crate::aggregated::WATCH_ID_OFFSET));
    }

    /// Restart storage node `idx` after a crash (or kill it first if still
    /// running): reopen the *same* data directory — the WAL replay in
    /// `Db::open` recovers every acked write — re-register with the
    /// coordinator, and heal its network links. The repair loop then folds
    /// the node back into its shards (recruiting it as a syncing backup,
    /// or reviving a shard it was the last member of).
    ///
    /// # Errors
    /// Storage recovery or registration failures.
    pub fn restart_storage_node(
        &mut self,
        idx: usize,
        config: &ClusterConfig,
    ) -> Result<NodeId, InvokeError> {
        let id = self.storage[idx].id();
        let watch_id = NodeId(id.0 + crate::aggregated::WATCH_ID_OFFSET);
        self.storage[idx].shutdown();
        // Let in-flight worker threads observe the shutdown flag and drain
        // before the endpoints are torn out from under them.
        std::thread::sleep((config.heartbeat_interval * 2).max(Duration::from_millis(200)));
        self.net.leave(id);
        self.net.leave(watch_id);
        self.net.heal_all(id);
        self.net.heal_all(watch_id);
        let node_config = AggregatedConfig {
            data_dir: self.base_dir.join(format!("node-{}", id.0)),
            kv: config.kv_for(id.0 - ids::STORAGE_BASE),
            engine: config.engine,
            workers: config.workers,
            run_queue_depth: config.run_queue_depth,
            rpc_timeout: Duration::from_millis(500),
            heartbeat_interval: config.heartbeat_interval,
            coordinators: self.coordinator_ids.clone(),
            sync_chunk_bytes: 64 * 1024,
            lease_duration: config.lease_duration,
        };
        let node = AggregatedNode::start(&self.net, id, node_config)?;
        // Re-register: the failure detector removed the node from the
        // membership when it crashed (RegisterNode is idempotent if not).
        let admin_id = NodeId(ids::ADMIN.0 + 3000 + id.0);
        let admin_rpc = RpcNode::start(&self.net, admin_id, null_handler(), 1);
        let admin = CoordClient::new(
            Arc::clone(&admin_rpc),
            self.coordinator_ids.clone(),
            Duration::from_secs(5),
        );
        admin
            .propose(CoordCmd::RegisterNode { node: id })
            .map_err(|e| InvokeError::Nested(format!("restart: {e}")))?;
        admin_rpc.shutdown();
        self.storage[idx] = node;
        Ok(id)
    }

    /// Stop everything and delete on-disk state.
    pub fn shutdown(&self) {
        for node in &self.storage {
            node.shutdown();
        }
        for c in &self.coordinators {
            c.shutdown();
        }
        self.net.shutdown();
        let _ = std::fs::remove_dir_all(&self.base_dir);
    }
}

/// The aggregated architecture: clients invoke methods directly on the
/// storage nodes (LambdaStore proper).
#[derive(Debug)]
pub struct AggregatedCluster {
    /// Shared infrastructure.
    pub core: ClusterCore,
}

impl AggregatedCluster {
    /// Build and bootstrap the cluster.
    ///
    /// # Errors
    /// Bootstrap failures.
    pub fn build(config: ClusterConfig) -> Result<AggregatedCluster, InvokeError> {
        Ok(AggregatedCluster { core: ClusterCore::build(&config)? })
    }

    /// A new client endpoint.
    pub fn client(&self) -> StoreClient {
        self.core.client()
    }

    /// Stop everything.
    pub fn shutdown(&self) {
        self.core.shutdown();
    }
}

/// The disaggregated baseline: the same storage replica set, plus a
/// dedicated compute node that runs the functions.
#[derive(Debug)]
pub struct DisaggregatedCluster {
    /// Shared infrastructure (the storage layer).
    pub core: ClusterCore,
    /// The compute node.
    pub compute: Arc<ComputeNode>,
}

impl DisaggregatedCluster {
    /// Build and bootstrap.
    ///
    /// # Errors
    /// Bootstrap failures.
    pub fn build(config: ClusterConfig) -> Result<DisaggregatedCluster, InvokeError> {
        let core = ClusterCore::build(&config)?;
        let compute = ComputeNode::start(
            &core.net,
            ids::COMPUTE,
            ComputeConfig {
                storage: core.storage_ids.clone(),
                workers: config.workers,
                rpc_timeout: Duration::from_secs(1),
                limits: config.engine.limits,
                lowered_cache_capacity: config.engine.lowered_cache_capacity,
            },
        );
        Ok(DisaggregatedCluster { core, compute })
    }

    /// A new client endpoint (requests go to the compute node; see
    /// [`crate::proto::StoreRequest::Invoke`]).
    pub fn client(&self) -> StoreClient {
        self.core.client()
    }

    /// Stop everything.
    pub fn shutdown(&self) {
        self.compute.shutdown();
        self.core.shutdown();
    }
}

/// The conventional-serverless emulation: a gateway with durable request
/// logging and cold starts in front of the disaggregated execution path.
#[derive(Debug)]
pub struct ServerlessCluster {
    /// Shared infrastructure (the storage layer).
    pub core: ClusterCore,
    /// The gateway.
    pub gateway: Arc<ServerlessGateway>,
}

impl ServerlessCluster {
    /// Build and bootstrap.
    ///
    /// # Errors
    /// Bootstrap failures.
    pub fn build(
        config: ClusterConfig,
        cold_start: Duration,
    ) -> Result<ServerlessCluster, InvokeError> {
        let core = ClusterCore::build(&config)?;
        let mut sconfig = ServerlessConfig::new(
            ComputeConfig {
                storage: core.storage_ids.clone(),
                workers: config.workers,
                rpc_timeout: Duration::from_secs(1),
                limits: config.engine.limits,
                lowered_cache_capacity: config.engine.lowered_cache_capacity,
            },
            config.base_dir.join("gateway"),
        );
        sconfig.cold_start = cold_start;
        let gateway = ServerlessGateway::start(&core.net, ids::GATEWAY, sconfig)?;
        Ok(ServerlessCluster { core, gateway })
    }

    /// A new client endpoint (requests go to the gateway).
    pub fn client(&self) -> StoreClient {
        self.core.client()
    }

    /// Stop everything.
    pub fn shutdown(&self) {
        self.gateway.shutdown();
        self.core.shutdown();
    }
}
