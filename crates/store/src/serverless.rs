//! Conventional-serverless emulation, used for the Table 1 comparison.
//!
//! Follows §4.1's description of OpenWhisk-style architectures: clients
//! talk to a load balancer / gateway which (a) **logs every request
//! durably** before execution (OpenWhisk uses Kafka; we reuse the WAL from
//! `lambda-kv`), and (b) dispatches the function to a **container**,
//! paying a cold-start delay when no warm container for that function is
//! available. Function execution itself reuses the disaggregated
//! [`FunctionExecutor`], so the storage path is identical to the baseline —
//! what this layer adds is exactly the request logging + scheduling +
//! cold-start overheads the paper attributes to conventional serverless.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use lambda_kv::wal::Wal;
use lambda_net::rpc::{null_handler, sync_handler};
use lambda_net::{wire, Network, NodeId, RpcNode};
use lambda_objects::{encode_error, InvokeError, ObjectId};

use crate::disaggregated::{ComputeConfig, FunctionExecutor};
use crate::proto::{NodeStatsWire, StoreRequest, StoreResponse};

/// Gateway configuration.
#[derive(Debug, Clone)]
pub struct ServerlessConfig {
    /// Compute/storage settings (shared with the disaggregated executor).
    pub compute: ComputeConfig,
    /// Directory for the durable request log.
    pub log_dir: PathBuf,
    /// Simulated container cold-start delay.
    pub cold_start: Duration,
    /// Idle warm containers are reaped after this long.
    pub keepalive: Duration,
    /// Maximum warm containers kept per function.
    pub max_warm_per_function: usize,
    /// Total containers that may execute concurrently (the provider-side
    /// concurrency cap; requests beyond it queue at the gateway).
    pub max_concurrency: usize,
    /// `fsync` the request log on every request (true models the
    /// durability contract of §4.1; the overhead shows up in Table 1).
    pub sync_log: bool,
}

impl ServerlessConfig {
    /// Defaults with a 100 ms cold start (within the range reported for
    /// production FaaS platforms).
    pub fn new(compute: ComputeConfig, log_dir: PathBuf) -> ServerlessConfig {
        ServerlessConfig {
            compute,
            log_dir,
            cold_start: Duration::from_millis(100),
            keepalive: Duration::from_secs(10),
            max_warm_per_function: 8,
            max_concurrency: 64,
            sync_log: true,
        }
    }
}

#[derive(Default)]
struct ContainerPool {
    /// function key → last-used instants of warm containers.
    warm: HashMap<String, Vec<Instant>>,
}

struct GatewayInner {
    executor: Arc<FunctionExecutor>,
    log: Mutex<Wal>,
    pool: Mutex<ContainerPool>,
    /// Counting semaphore for the concurrency cap.
    slots: (Mutex<usize>, parking_lot::Condvar),
    config: ServerlessConfig,
    requests: AtomicU64,
    cold_starts: AtomicU64,
    warm_starts: AtomicU64,
    busy_nanos: AtomicU64,
    started: Instant,
    rpc: OnceLock<Arc<RpcNode>>,
}

impl GatewayInner {
    /// Block until a concurrency slot is free (provider-side cap).
    fn acquire_slot(&self) {
        let (lock, cv) = &self.slots;
        let mut used = lock.lock();
        while *used >= self.config.max_concurrency {
            cv.wait(&mut used);
        }
        *used += 1;
    }

    fn release_slot(&self) {
        let (lock, cv) = &self.slots;
        *lock.lock() -= 1;
        cv.notify_one();
    }

    /// Acquire a container for `function`: pops a warm one or pays the
    /// cold-start delay.
    fn acquire_container(&self, function: &str) {
        let warm = {
            let mut pool = self.pool.lock();
            let now = Instant::now();
            let slots = pool.warm.entry(function.to_string()).or_default();
            // Drop expired containers.
            slots.retain(|last| now.duration_since(*last) < self.config.keepalive);
            slots.pop().is_some()
        };
        if warm {
            self.warm_starts.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cold_starts.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.config.cold_start);
        }
    }

    /// Return the container to the warm pool.
    fn release_container(&self, function: &str) {
        let mut pool = self.pool.lock();
        let slots = pool.warm.entry(function.to_string()).or_default();
        if slots.len() < self.config.max_warm_per_function {
            slots.push(Instant::now());
        }
    }

    fn handle(&self, body: Vec<u8>) -> Result<Vec<u8>, String> {
        let started = Instant::now();
        self.requests.fetch_add(1, Ordering::Relaxed);
        // Durably log the raw request before doing anything (§4.1: "this
        // load balancer must also log client requests in a durable way").
        {
            let mut log = self.log.lock();
            log.append(&body).map_err(|e| e.to_string())?;
            if self.config.sync_log {
                log.sync().map_err(|e| e.to_string())?;
            } else {
                log.flush().map_err(|e| e.to_string())?;
            }
        }
        // Strip the request envelope (the raw frame, header included, was
        // already logged above); the gateway ignores the carried context.
        let (_ctx, req) = crate::proto::decode_request(&body).map_err(|e| e.to_string())?;
        let result = match req {
            StoreRequest::Invoke { object, method, args, .. } => {
                let oid = ObjectId::new(object);
                let function = method.to_string();
                self.acquire_slot();
                self.acquire_container(&function);
                let out =
                    self.executor.execute(&oid, &method, args, true).map(StoreResponse::Value);
                self.release_container(&function);
                self.release_slot();
                out
            }
            StoreRequest::CreateObject { type_name, object, fields } => {
                let oid = ObjectId::new(object);
                self.executor.create_object(&type_name, &oid, &fields).map(|()| StoreResponse::Ok)
            }
            StoreRequest::DeployType { name, module, .. } => {
                self.executor.deploy(name, module);
                Ok(StoreResponse::Ok)
            }
            StoreRequest::Stats => Ok(StoreResponse::NodeStats(self.stats())),
            other => Err(InvokeError::Nested(format!("unsupported on gateway: {other:?}"))),
        };
        let encoded = result
            .map_err(|e| encode_error(&e))
            .and_then(|resp| wire::to_bytes(&resp).map_err(|e| e.to_string()));
        self.busy_nanos.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        encoded
    }

    fn stats(&self) -> NodeStatsWire {
        NodeStatsWire {
            requests: self.requests.load(Ordering::Relaxed),
            invocations: self.executor.invocations.load(Ordering::Relaxed),
            cache_hits: 0,
            replications_applied: 0,
            duplicates_suppressed: 0,
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
            uptime_nanos: self.started.elapsed().as_nanos() as u64,
            ..Default::default()
        }
    }
}

/// The serverless gateway node.
pub struct ServerlessGateway {
    id: NodeId,
    inner: Arc<GatewayInner>,
}

impl std::fmt::Debug for ServerlessGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerlessGateway").field("id", &self.id).finish()
    }
}

impl ServerlessGateway {
    /// Start the gateway at `id`.
    ///
    /// # Errors
    /// Fails when the request log cannot be created.
    pub fn start(
        net: &Network,
        id: NodeId,
        config: ServerlessConfig,
    ) -> Result<Arc<ServerlessGateway>, InvokeError> {
        std::fs::create_dir_all(&config.log_dir)
            .map_err(|e| InvokeError::Storage(e.to_string()))?;
        let log = Wal::create(config.log_dir.join("requests.log"))
            .map_err(|e| InvokeError::Storage(e.to_string()))?;
        let exec_rpc = RpcNode::start(net, NodeId(id.0 + 30_000), null_handler(), 1);
        let executor = Arc::new(FunctionExecutor::new(exec_rpc, &config.compute));
        let workers = config.compute.workers;
        let inner = Arc::new(GatewayInner {
            executor,
            log: Mutex::new(log),
            pool: Mutex::new(ContainerPool::default()),
            slots: (Mutex::new(0), parking_lot::Condvar::new()),
            config,
            requests: AtomicU64::new(0),
            cold_starts: AtomicU64::new(0),
            warm_starts: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            started: Instant::now(),
            rpc: OnceLock::new(),
        });
        let handler_inner = Arc::clone(&inner);
        let rpc = RpcNode::start(
            net,
            id,
            sync_handler(move |_from, body| handler_inner.handle(body)),
            workers,
        );
        inner.rpc.set(rpc).expect("set once");
        Ok(Arc::new(ServerlessGateway { id, inner }))
    }

    /// This gateway's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// `(cold_starts, warm_starts)` so far.
    pub fn start_counts(&self) -> (u64, u64) {
        (
            self.inner.cold_starts.load(Ordering::Relaxed),
            self.inner.warm_starts.load(Ordering::Relaxed),
        )
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> NodeStatsWire {
        self.inner.stats()
    }

    /// The underlying executor.
    pub fn executor(&self) -> &Arc<FunctionExecutor> {
        &self.inner.executor
    }

    /// Stop serving.
    pub fn shutdown(&self) {
        if let Some(rpc) = self.inner.rpc.get() {
            rpc.shutdown();
        }
    }
}
