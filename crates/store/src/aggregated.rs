//! The aggregated architecture: a LambdaStore storage node.
//!
//! Each node embeds the LambdaObjects [`Engine`] directly in the storage
//! process (§4.2): invocations execute where the data lives, mutating
//! methods at the shard's primary, read-only methods at any replica.
//! Committed write sets are replicated synchronously to backups with epoch
//! fencing (§4.2.1), nested cross-object calls are routed to the
//! responsible primary, and the node heartbeats the coordination service
//! and receives shard-map pushes.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use lambda_coordinator::CoordClient;
use lambda_coordinator::CoordEvent;
use lambda_coordinator::{Epoch, ShardId};
use lambda_kv::Db;
use lambda_net::rpc::{sync_handler, AdmissionPolicy, Responder, RpcConfig};
use lambda_net::{wire, Handler, Network, NodeId, RpcError, RpcNode};
use lambda_objects::{
    decode_error, encode_error, keys, CommitCallback, CommitHook, Counter, Engine, EngineConfig,
    Gauge, InvocationContext, InvokeError, InvokeRouter, ObjectId, ObjectType, Origin, Registry,
    TypeRegistry, WriteSetOps,
};
use lambda_vm::VmValue;

use crate::placement::Placement;
use crate::proto::{self, NodeStatsWire, StoreRequest, StoreResponse, SyncItem};
use crate::sync::{SyncManager, SyncPhase, SyncSession};

/// Offset for a node's watch endpoint (coordinator push notifications).
pub const WATCH_ID_OFFSET: u32 = 20_000;

/// Node configuration.
#[derive(Debug, Clone)]
pub struct AggregatedConfig {
    /// Directory for this node's database.
    pub data_dir: PathBuf,
    /// Storage-engine options.
    pub kv: lambda_kv::Options,
    /// Execution-engine options.
    pub engine: EngineConfig,
    /// RPC worker threads. With the deferred `Invoke` path a worker is
    /// only held for CPU work (decode + VM execution), never for lock,
    /// group-commit, or replication waits, so a small pool sustains
    /// thousands of in-flight invocations.
    pub workers: usize,
    /// Run-queue depth that trips admission control (`0` = unbounded).
    /// Client-origin requests arriving over this depth are refused
    /// immediately with a retryable [`InvokeError::Overloaded`]; requests
    /// on behalf of other nodes or background work (replication, repair,
    /// state transfer) are always admitted.
    pub run_queue_depth: usize,
    /// Per-RPC timeout for node-to-node calls.
    pub rpc_timeout: Duration,
    /// Heartbeat + state-poll interval.
    pub heartbeat_interval: Duration,
    /// Coordinator service endpoints.
    pub coordinators: Vec<NodeId>,
    /// Soft payload bound per shard state-transfer chunk (repair).
    pub sync_chunk_bytes: usize,
}

impl AggregatedConfig {
    /// Sensible defaults under `data_dir` with the given coordinators.
    pub fn new(data_dir: PathBuf, coordinators: Vec<NodeId>) -> AggregatedConfig {
        AggregatedConfig {
            data_dir,
            kv: lambda_kv::Options::default(),
            engine: EngineConfig::default(),
            workers: 16,
            run_queue_depth: 1024,
            rpc_timeout: Duration::from_millis(500),
            heartbeat_interval: Duration::from_millis(100),
            coordinators,
            sync_chunk_bytes: 64 * 1024,
        }
    }
}

/// One committed write set parked in a shard's replication window, waiting
/// for a window leader to ship it (or to be promoted to leader itself).
#[derive(Debug)]
struct ReplWaiter {
    state: Mutex<ReplWaiterState>,
    cv: Condvar,
}

#[derive(Debug)]
struct ReplWaiterState {
    /// `(object, ops)`; taken by the window leader when it forms a batch.
    entry: Option<(Vec<u8>, WriteSetOps)>,
    /// Epoch and backup set captured at enqueue time. The leader only
    /// coalesces a prefix that agrees on both, so fencing stays exact
    /// across reconfigurations.
    epoch: Epoch,
    backups: Vec<NodeId>,
    /// Set when this waiter is promoted to lead the next window.
    leader: bool,
    /// Set (with `result`) once a leader has shipped this write set.
    done: bool,
    result: Option<Result<(), String>>,
}

impl ReplWaiter {
    fn new(object: Vec<u8>, ops: WriteSetOps, epoch: Epoch, backups: Vec<NodeId>) -> Self {
        ReplWaiter {
            state: Mutex::new(ReplWaiterState {
                entry: Some((object, ops)),
                epoch,
                backups,
                leader: false,
                done: false,
                result: None,
            }),
            cv: Condvar::new(),
        }
    }
}

/// Per-shard replication window: a queue of committed write sets awaiting
/// shipment, led by the writer at its front (same leader/follower scheme as
/// the storage engine's WAL group commit).
#[derive(Debug, Default)]
struct ShardWindow {
    queue: Mutex<VecDeque<Arc<ReplWaiter>>>,
}

/// One committed write set queued in a shard's *deferred* replication
/// window (the non-blocking commit path). Unlike [`ReplWaiter`] nothing
/// parks: the commit completion travels with the entry and fires from the
/// ack thread of the round that ships it.
struct DeferredRepl {
    object: Vec<u8>,
    ops: WriteSetOps,
    /// Epoch and backup set captured at enqueue time; a round only
    /// coalesces a queue prefix that agrees on both, so epoch fencing
    /// stays exact across reconfigurations (same rule as the blocking
    /// window).
    epoch: Epoch,
    backups: Vec<NodeId>,
    /// The committing invocation's context; the round leader's copy
    /// bounds the fan-out timeout and rides in the batch envelope.
    ctx: InvocationContext,
    done: CommitCallback,
}

/// Per-shard deferred replication window. Entries accumulate while one
/// `ReplicateBatch` fan-out is in flight; that fan-out's completion ships
/// the next round, so the window is always driven without a parked leader
/// thread.
#[derive(Default)]
struct DeferredWindow {
    state: Mutex<DeferredWindowState>,
}

#[derive(Default)]
struct DeferredWindowState {
    queue: VecDeque<DeferredRepl>,
    in_flight: bool,
}

/// Decode one ack per backup; any failure fails the whole window.
fn collect_acks(backups: &[NodeId], replies: Vec<Result<Vec<u8>, RpcError>>) -> Result<(), String> {
    for (backup, reply) in backups.iter().zip(replies) {
        match reply {
            Ok(bytes) => match wire::from_bytes::<StoreResponse>(&bytes) {
                Ok(StoreResponse::Ok) => {}
                Ok(other) => return Err(format!("backup {backup}: bad reply {other:?}")),
                Err(e) => return Err(format!("backup {backup}: bad response: {e}")),
            },
            Err(RpcError::Remote(msg)) => return Err(format!("backup {backup} failed: {msg}")),
            Err(e) => return Err(format!("backup {backup} failed: {e}")),
        }
    }
    Ok(())
}

struct NodeInner {
    id: NodeId,
    engine: Arc<Engine>,
    placement: Placement,
    rpc: OnceLock<Arc<RpcNode>>,
    /// Back-reference for completions that must re-enter the node after an
    /// asynchronous hop (deferred replication rounds).
    self_ref: OnceLock<Weak<NodeInner>>,
    rpc_timeout: Duration,
    /// The node-wide telemetry registry: shared by the kv layer, the
    /// engine/scheduler, and the counters below, so every stats surface is
    /// a view over one set of cells.
    registry: Arc<Registry>,
    requests: Counter,
    replications: Counter,
    busy_nanos: Counter,
    shutdown: AtomicBool,
    /// When false the replication hook is skipped (single-node mode and
    /// the ABL-REPL "no replication" ablation).
    replicate: AtomicBool,
    /// When false every committed write set is shipped as its own
    /// `Replicate` RPC (the ABL-GROUPCOMMIT "wal-only" configuration).
    repl_batching: AtomicBool,
    /// Per-shard replication windows, created on first use (blocking
    /// callers: raw writes and synchronous commits).
    repl_windows: Mutex<HashMap<ShardId, Arc<ShardWindow>>>,
    /// Per-shard deferred replication windows (non-blocking commit path).
    deferred_windows: Mutex<HashMap<ShardId, Arc<DeferredWindow>>>,
    /// Instantaneous run-queue depth, mirrored from the RPC endpoint on
    /// stats reads.
    q_depth: Gauge,
    /// Admitted-but-unanswered requests, mirrored likewise.
    q_inflight: Gauge,
    /// Requests refused by admission control, mirrored likewise.
    q_shed: Gauge,
    /// Batched replication rounds issued (one `ReplicateBatch` fan-out).
    repl_rounds: Counter,
    /// Write sets shipped through batched rounds.
    repl_entries: Counter,
    /// Open state-transfer sessions to syncing backups (primary side).
    sync: SyncManager,
    /// Soft payload bound per state-transfer chunk.
    sync_chunk_bytes: usize,
    /// `InstallShardChunk` RPCs shipped to syncing backups.
    repair_chunks_sent: Counter,
    /// Payload bytes shipped through state transfer.
    repair_bytes: Counter,
    /// Chunks applied here as a syncing backup.
    repair_chunks_applied: Counter,
    /// Transfer sessions that aborted before promotion (or failed hard).
    repair_sessions_failed: Counter,
    /// Stream items accepted into sync sessions (with `repair_sync_shipped`
    /// below, the difference is the node's total sync lag).
    repair_sync_enqueued: Counter,
    /// Stream items acked by syncing backups.
    repair_sync_shipped: Counter,
}

/// Payload bytes of one stream item (transfer-cost accounting).
fn sync_item_bytes(item: &SyncItem) -> u64 {
    match item {
        SyncItem::Begin => 0,
        SyncItem::Object(snap) => snap.payload_bytes() as u64,
        SyncItem::Forward { object, ops } => {
            let ops_bytes: usize =
                ops.iter().map(|(k, v)| k.len() + v.as_ref().map_or(0, Vec::len)).sum();
            (object.len() + ops_bytes) as u64
        }
    }
}

/// Items per `InstallShardChunk` RPC on the push path.
const SYNC_BATCH_ITEMS: usize = 32;
/// Send retries per chunk before a session gives up on its peer.
const SYNC_SHIP_RETRIES: usize = 10;

impl NodeInner {
    fn rpc(&self) -> &Arc<RpcNode> {
        self.rpc.get().expect("rpc initialized during start")
    }

    /// One node-to-node RPC on behalf of `ctx`: the context crosses the
    /// wire in the request envelope (origin flipped to `Node`), and the
    /// transport timeout is the remaining budget capped at the configured
    /// per-hop timeout. An already-expired context sheds before any I/O.
    fn call_peer(
        &self,
        ctx: &InvocationContext,
        to: NodeId,
        req: &StoreRequest,
    ) -> Result<StoreResponse, InvokeError> {
        let down = ctx.for_downstream();
        if down.expired() {
            return Err(InvokeError::DeadlineExceeded);
        }
        let frame = proto::encode_request(&down, req).expect("requests serialize");
        match self.rpc().call(to, frame, down.rpc_timeout(self.rpc_timeout)) {
            Ok(bytes) => wire::from_bytes(&bytes)
                .map_err(|e| InvokeError::Nested(format!("bad response: {e}"))),
            Err(RpcError::Remote(msg)) => Err(decode_error(&msg)),
            Err(other) => Err(InvokeError::Nested(other.to_string())),
        }
    }

    fn handle(
        &self,
        _from: NodeId,
        ctx: &InvocationContext,
        req: StoreRequest,
    ) -> Result<StoreResponse, InvokeError> {
        self.requests.incr();
        match req {
            StoreRequest::Invoke { object, method, args, read_only, internal } => {
                let oid = ObjectId::new(object);
                self.check_role(&oid, read_only)?;
                let value = self.engine.invoke_ctx(ctx, &oid, &method, args, !internal, 0)?;
                Ok(StoreResponse::Value(value))
            }
            StoreRequest::CreateObject { type_name, object, fields } => {
                let oid = ObjectId::new(object);
                self.check_role(&oid, false)?;
                let fields: Vec<(&str, &[u8])> =
                    fields.iter().map(|(f, v)| (f.as_str(), v.as_slice())).collect();
                self.engine.create_object(&type_name, &oid, &fields)?;
                Ok(StoreResponse::Ok)
            }
            StoreRequest::DeleteObject { object } => {
                let oid = ObjectId::new(object);
                self.check_role(&oid, false)?;
                self.engine.delete_object(&oid)?;
                Ok(StoreResponse::Ok)
            }
            StoreRequest::DeployType { name, fields, module } => {
                let ty = ObjectType::from_module(name, fields, module)
                    .map_err(|e| InvokeError::Vm(format!("module rejected: {e}")))?;
                self.engine.types().register(ty);
                Ok(StoreResponse::Ok)
            }
            StoreRequest::Replicate { shard, epoch, object, ops } => {
                let local_epoch = self.placement.epoch_of(shard).unwrap_or(0);
                if epoch < local_epoch {
                    return Err(InvokeError::WrongNode(format!(
                        "stale epoch {epoch} < {local_epoch} for shard {shard}"
                    )));
                }
                let oid = ObjectId::new(object);
                self.engine.apply_replicated(&oid, &ops)?;
                self.replications.incr();
                Ok(StoreResponse::Ok)
            }
            StoreRequest::ReplicateBatch { shard, epoch, entries } => {
                let local_epoch = self.placement.epoch_of(shard).unwrap_or(0);
                if epoch < local_epoch {
                    return Err(InvokeError::WrongNode(format!(
                        "stale epoch {epoch} < {local_epoch} for shard {shard}"
                    )));
                }
                let count = entries.len() as u64;
                let entries: Vec<(ObjectId, WriteSetOps)> =
                    entries.into_iter().map(|(o, ops)| (ObjectId::new(o), ops)).collect();
                self.engine.apply_replicated_batch(&entries)?;
                self.replications.add(count);
                Ok(StoreResponse::Ok)
            }
            StoreRequest::FetchObject { object, evict } => {
                let oid = ObjectId::new(object);
                let snapshot = if evict {
                    let snap = self.engine.export_object(&oid)?;
                    // Deleting through the engine replicates the deletions
                    // to backups, so a later failover cannot resurrect the
                    // migrated object here.
                    self.engine.delete_object(&oid)?;
                    snap
                } else {
                    self.engine.export_object(&oid)?
                };
                Ok(StoreResponse::Snapshot(snapshot))
            }
            StoreRequest::InstallObject { snapshot, shard } => {
                let info = self
                    .placement
                    .snapshot()
                    .shard(shard)
                    .cloned()
                    .ok_or_else(|| InvokeError::WrongNode(format!("no shard {shard}")))?;
                if info.primary != self.id {
                    return Err(InvokeError::WrongNode(format!(
                        "install target shard {shard} is served by node-{}",
                        info.primary.0
                    )));
                }
                self.engine.import_object(&snapshot)?;
                // Propagate the imported data to the target shard's backups
                // explicitly — the object's placement still points at the
                // source shard until the coordinator pin lands.
                let ops: Vec<(Vec<u8>, Option<Vec<u8>>)> = snapshot
                    .entries
                    .iter()
                    .map(|(suffix, value)| {
                        (keys::join_key(&snapshot.id, suffix), Some(value.clone()))
                    })
                    .collect();
                let req = StoreRequest::Replicate {
                    shard,
                    epoch: info.epoch,
                    object: snapshot.id.0.clone(),
                    ops,
                };
                for backup in &info.backups {
                    match self.call_peer(ctx, *backup, &req)? {
                        StoreResponse::Ok => {}
                        other => {
                            return Err(InvokeError::Storage(format!(
                                "install replication to {backup}: bad reply {other:?}"
                            )))
                        }
                    }
                }
                Ok(StoreResponse::Ok)
            }
            StoreRequest::RawGet { key } => {
                let v = self.engine.db().get(&key)?;
                Ok(StoreResponse::MaybeBytes(v))
            }
            StoreRequest::RawPut { key, value } => {
                self.engine.db().put(key.clone(), value.clone())?;
                self.replicate_raw(ctx, vec![(key, Some(value))])?;
                Ok(StoreResponse::Ok)
            }
            StoreRequest::RawDelete { key } => {
                self.engine.db().delete(key.clone())?;
                self.replicate_raw(ctx, vec![(key, None)])?;
                Ok(StoreResponse::Ok)
            }
            StoreRequest::RawPush { object, field, value } => {
                let oid = ObjectId::new(object);
                let ckey = keys::counter_key(&oid, &field);
                let len = keys::decode_counter(self.engine.db().get(&ckey)?.as_deref());
                let ekey = keys::entry_key(&oid, &field, len);
                let mut batch = lambda_kv::WriteBatch::new();
                batch.put(ekey.clone(), value.clone());
                batch.put(ckey.clone(), keys::encode_counter(len + 1));
                self.engine.db().write(batch)?;
                self.replicate_raw(
                    ctx,
                    vec![(ekey, Some(value)), (ckey, Some(keys::encode_counter(len + 1)))],
                )?;
                Ok(StoreResponse::Ok)
            }
            StoreRequest::RawScan { object, field, limit, newest_first } => {
                let oid = ObjectId::new(object);
                let ckey = keys::counter_key(&oid, &field);
                let len = keys::decode_counter(self.engine.db().get(&ckey)?.as_deref());
                let take = limit.min(len);
                let mut rows = Vec::with_capacity(take as usize);
                let indices: Vec<u64> = if newest_first {
                    ((len - take)..len).rev().collect()
                } else {
                    (0..take).collect()
                };
                for i in indices {
                    if let Some(v) = self.engine.db().get(&keys::entry_key(&oid, &field, i))? {
                        rows.push(v);
                    }
                }
                Ok(StoreResponse::Rows(rows))
            }
            StoreRequest::RawCount { object, field } => {
                let oid = ObjectId::new(object);
                let ckey = keys::counter_key(&oid, &field);
                let len = keys::decode_counter(self.engine.db().get(&ckey)?.as_deref());
                Ok(StoreResponse::Count(len))
            }
            StoreRequest::ListObjects => {
                let ids = self.engine.list_objects().into_iter().map(|o| o.0).collect();
                Ok(StoreResponse::Objects(ids))
            }
            StoreRequest::Transact { calls } => {
                // Every object must be primary-local: transactions do not
                // span shards (cross-shard would need 2PC, left open like
                // in the paper).
                for call in &calls {
                    self.check_role(&call.object, false)?;
                }
                let results = self.engine.invoke_transaction(&calls)?;
                Ok(StoreResponse::Values(results))
            }
            StoreRequest::Stats => Ok(StoreResponse::NodeStats(self.stats_wire())),
            StoreRequest::FetchShardChunk { shard, epoch, cursor, max_bytes } => {
                let local_epoch = self.placement.epoch_of(shard).unwrap_or(0);
                if epoch < local_epoch {
                    return Err(InvokeError::WrongNode(format!(
                        "stale epoch {epoch} < {local_epoch} for shard {shard}"
                    )));
                }
                let state = self.placement.snapshot();
                if let Some(info) = state.shard(shard) {
                    if info.primary != self.id {
                        return Err(InvokeError::WrongNode(format!(
                            "shard {shard} export must run at primary node-{}",
                            info.primary.0
                        )));
                    }
                }
                let max_bytes =
                    if max_bytes == 0 { self.sync_chunk_bytes as u64 } else { max_bytes };
                let mut ids: Vec<ObjectId> = self
                    .engine
                    .list_objects()
                    .into_iter()
                    .filter(|o| state.shard_for_object(&o.0) == Some(shard))
                    .filter(|o| cursor.as_ref().is_none_or(|c| o.0 > *c))
                    .collect();
                ids.sort_by(|a, b| a.0.cmp(&b.0));
                let mut objects = Vec::new();
                let mut bytes = 0u64;
                let mut next_cursor = None;
                for oid in ids {
                    if !objects.is_empty() && bytes >= max_bytes {
                        let last: &lambda_objects::migration::ObjectSnapshot =
                            objects.last().expect("non-empty");
                        next_cursor = Some(last.id.0.clone());
                        break;
                    }
                    match self.engine.export_object(&oid) {
                        Ok(snap) => {
                            bytes += snap.payload_bytes() as u64;
                            objects.push(snap);
                        }
                        // Deleted while we scanned: skip it.
                        Err(InvokeError::UnknownObject(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
                self.repair_chunks_sent.incr();
                self.repair_bytes.add(bytes);
                Ok(StoreResponse::ShardChunk { objects, next_cursor })
            }
            StoreRequest::InstallShardChunk { shard, epoch, items } => {
                let local_epoch = self.placement.epoch_of(shard).unwrap_or(0);
                if epoch < local_epoch {
                    return Err(InvokeError::WrongNode(format!(
                        "stale epoch {epoch} < {local_epoch} for shard {shard}"
                    )));
                }
                for item in items {
                    match item {
                        SyncItem::Begin => {
                            // Wipe stale residue of the shard before the
                            // fresh snapshot stream (a crash-restart rejoin
                            // may hold superseded objects).
                            let state = self.placement.snapshot();
                            for oid in self.engine.list_objects() {
                                if state.shard_for_object(&oid.0) == Some(shard) {
                                    self.engine.purge_object(&oid)?;
                                }
                            }
                        }
                        SyncItem::Object(snap) => self.engine.install_object_replacing(&snap)?,
                        SyncItem::Forward { object, ops } => {
                            let oid = ObjectId::new(object);
                            self.engine.apply_replicated(&oid, &ops)?;
                        }
                    }
                }
                self.repair_chunks_applied.incr();
                Ok(StoreResponse::Ok)
            }
        }
    }

    /// The node's wire stats, served straight from the shared registry
    /// (engine counters included — same cells `EngineStats` reads).
    fn stats_wire(&self) -> NodeStatsWire {
        let es = self.engine.stats();
        let qs = self.rpc().queue_stats();
        // Mirror the endpoint's overload counters into the registry's
        // gauges so stats scrapes and wire stats read the same numbers.
        self.q_depth.set(qs.depth as i64);
        self.q_inflight.set(qs.inflight as i64);
        self.q_shed.set(qs.shed as i64);
        NodeStatsWire {
            requests: self.requests.get(),
            invocations: es.invocations,
            cache_hits: es.cache_hits,
            replications_applied: self.replications.get(),
            duplicates_suppressed: es.duplicates_suppressed,
            busy_nanos: self.busy_nanos.get(),
            uptime_nanos: self.registry.uptime_nanos(),
            run_queue_depth: qs.depth,
            inflight: qs.inflight,
            shed: qs.shed,
        }
    }

    /// Verify this node may serve the request for `oid`: any replica for
    /// read-only work, the primary for everything else. With no shard map
    /// installed (single-node mode) everything is served locally.
    fn check_role(&self, oid: &ObjectId, read_only: bool) -> Result<(), InvokeError> {
        let Some((shard, info)) = self.placement.locate(oid) else {
            return Ok(());
        };
        if info.lost {
            return Err(InvokeError::ShardUnavailable(format!(
                "shard {shard} for object {oid} lost every replica"
            )));
        }
        if read_only {
            if info.contains(self.id) {
                return Ok(());
            }
        } else if info.primary == self.id {
            return Ok(());
        }
        Err(InvokeError::WrongNode(format!(
            "object {oid} is served by primary node-{} (epoch {})",
            info.primary.0, info.epoch
        )))
    }

    /// Synchronous replication for the raw (baseline) API. The baseline
    /// "uses our prototype as its storage layer" (§5): raw writes get the
    /// same primary-backup durability as engine commits. (What the
    /// baseline lacks is invocation-level consistency — atomicity,
    /// isolation, per-object scheduling — not storage replication.)
    fn replicate_raw(
        &self,
        ctx: &InvocationContext,
        ops: Vec<(Vec<u8>, Option<Vec<u8>>)>,
    ) -> Result<(), InvokeError> {
        if !self.replicate.load(Ordering::Relaxed) {
            return Ok(());
        }
        let Some((key, _)) = ops.first() else {
            return Ok(());
        };
        let Some((oid, _)) = keys::split_key(key) else {
            return Ok(());
        };
        let Some((shard, info)) = self.placement.locate(&oid) else {
            return Ok(());
        };
        if info.primary != self.id {
            return Ok(());
        }
        self.replicate_to_backups(ctx, shard, info.epoch, &oid, &ops, &info.backups)
            .map_err(InvokeError::Storage)?;
        self.forward_to_syncing(shard, info.epoch, &info.syncing, &oid, &ops)
            .map_err(InvokeError::Storage)
    }
}

impl NodeInner {
    /// Ship `ops` to every backup of `shard` **in parallel** and wait for
    /// all acks — the paper's "at most one network round-trip within the
    /// responsible replica set" (§4.2.1).
    ///
    /// With replication batching on (the default) the write set joins the
    /// shard's replication window: concurrent commits against the same
    /// shard are coalesced by a window leader into one `ReplicateBatch`
    /// fan-out, and this call returns only once that batch is acked by
    /// every backup. The commit is not reported successful before then.
    fn replicate_to_backups(
        &self,
        ctx: &InvocationContext,
        shard: ShardId,
        epoch: Epoch,
        object: &ObjectId,
        ops: &[(Vec<u8>, Option<Vec<u8>>)],
        backups: &[NodeId],
    ) -> Result<(), String> {
        if backups.is_empty() {
            return Ok(());
        }
        if !self.repl_batching.load(Ordering::Relaxed) {
            // Unbatched path: one RPC round per committed write set. The
            // body is still serialized exactly once for the whole fan-out,
            // carrying the invocation's context so backups apply under the
            // same trace, and bounded by its remaining budget.
            let req = StoreRequest::Replicate {
                shard,
                epoch,
                object: object.0.clone(),
                ops: ops.to_vec(),
            };
            let down = ctx.for_downstream();
            let body = Bytes::from(proto::encode_request(&down, &req).expect("requests serialize"));
            let replies = self.rpc().call_many(backups, body, down.rpc_timeout(self.rpc_timeout));
            return collect_acks(backups, replies);
        }

        // Join the shard's replication window.
        let window = {
            let mut windows = self.repl_windows.lock();
            Arc::clone(windows.entry(shard).or_default())
        };
        let waiter =
            Arc::new(ReplWaiter::new(object.0.clone(), ops.to_vec(), epoch, backups.to_vec()));
        let is_leader = {
            let mut queue = window.queue.lock();
            queue.push_back(Arc::clone(&waiter));
            queue.len() == 1
        };
        if !is_leader {
            // Follower: park until a leader ships our write set, or
            // promotes us to lead the next window.
            let mut st = waiter.state.lock();
            while !st.done && !st.leader {
                waiter.cv.wait(&mut st);
            }
            if st.done {
                return st.result.take().expect("done waiter has a result");
            }
        }
        self.lead_replication(ctx, shard, &window, &waiter)
    }

    /// Lead one batched replication round. `own` must be the front of the
    /// window's queue. The leader's context bounds the fan-out timeout and
    /// travels in the batch envelope (followers coalesced into the round
    /// inherit the leader's budget for this one round-trip).
    fn lead_replication(
        &self,
        ctx: &InvocationContext,
        shard: ShardId,
        window: &ShardWindow,
        own: &Arc<ReplWaiter>,
    ) -> Result<(), String> {
        let (epoch, backups) = {
            let st = own.state.lock();
            (st.epoch, st.backups.clone())
        };
        // Coalesce the longest queue prefix that shares our epoch and
        // backup set; a write set enqueued under a newer configuration
        // leads its own round later, keeping the fencing check exact.
        let group: Vec<Arc<ReplWaiter>> = {
            let queue = window.queue.lock();
            let mut group = Vec::new();
            for w in queue.iter() {
                let st = w.state.lock();
                if st.epoch != epoch || st.backups != backups {
                    break;
                }
                group.push(Arc::clone(w));
            }
            group
        };
        debug_assert!(!group.is_empty() && Arc::ptr_eq(&group[0], own));

        let entries: Vec<(Vec<u8>, WriteSetOps)> = group
            .iter()
            .map(|w| w.state.lock().entry.take().expect("queued waiter has an entry"))
            .collect();
        let count = entries.len() as u64;

        // Serialize once; the refcounted body is shared by every send.
        let req = StoreRequest::ReplicateBatch { shard, epoch, entries };
        let down = ctx.for_downstream();
        let body = Bytes::from(proto::encode_request(&down, &req).expect("requests serialize"));
        let replies = self.rpc().call_many(&backups, body, down.rpc_timeout(self.rpc_timeout));
        let outcome = collect_acks(&backups, replies);
        self.repl_rounds.incr();
        self.repl_entries.add(count);

        // Pop the group, post every waiter its result, and promote the
        // next queued write set (if any) to lead the following round.
        let mut queue = window.queue.lock();
        for w in &group {
            let popped = queue.pop_front().expect("group members stay queued until finished");
            debug_assert!(Arc::ptr_eq(&popped, w));
            let mut st = popped.state.lock();
            st.done = true;
            st.result = Some(outcome.clone());
            drop(st);
            popped.cv.notify_one();
        }
        if let Some(next) = queue.front() {
            next.state.lock().leader = true;
            next.cv.notify_one();
        }
        drop(queue);
        outcome
    }

    /// The owning `Arc` (for completions that outlive this call frame).
    fn arc(&self) -> Arc<NodeInner> {
        self.self_ref.get().and_then(Weak::upgrade).expect("self_ref installed during start")
    }

    /// Non-blocking counterpart of [`replicate_to_backups`]: enqueue the
    /// write set on the shard's deferred window and return immediately.
    /// `done` fires from the ack thread of the fan-out that ships it.
    #[allow(clippy::too_many_arguments)]
    fn replicate_deferred(
        &self,
        ctx: &InvocationContext,
        shard: ShardId,
        epoch: Epoch,
        object: &ObjectId,
        ops: WriteSetOps,
        backups: Vec<NodeId>,
        done: CommitCallback,
    ) {
        if !self.repl_batching.load(Ordering::Relaxed) {
            // Unbatched ablation: one fan-out per committed write set,
            // still without parking — the acks complete the commit.
            let down = ctx.for_downstream();
            let req = StoreRequest::Replicate { shard, epoch, object: object.0.clone(), ops };
            let body = Bytes::from(proto::encode_request(&down, &req).expect("requests serialize"));
            let expect = backups.clone();
            self.rpc().call_many_deferred(
                &backups,
                body,
                down.rpc_timeout(self.rpc_timeout),
                Box::new(move |replies| done(collect_acks(&expect, replies))),
            );
            return;
        }

        let window = {
            let mut windows = self.deferred_windows.lock();
            Arc::clone(windows.entry(shard).or_default())
        };
        let entry = DeferredRepl { object: object.0.clone(), ops, epoch, backups, ctx: *ctx, done };
        let lead = {
            let mut st = window.state.lock();
            st.queue.push_back(entry);
            !std::mem::replace(&mut st.in_flight, true)
        };
        if lead {
            self.ship_deferred_round(shard, window);
        }
    }

    /// Ship one round from the shard's deferred window: pop the longest
    /// queue prefix agreeing on `(epoch, backups)`, fan the batch out, and
    /// complete every member from the acks. The completion ships the next
    /// round (if any), so the window drains without a parked leader.
    fn ship_deferred_round(&self, shard: ShardId, window: Arc<DeferredWindow>) {
        let round: Vec<DeferredRepl> = {
            let mut st = window.state.lock();
            debug_assert!(st.in_flight);
            let mut round: Vec<DeferredRepl> = Vec::new();
            while let Some(front) = st.queue.front() {
                if let Some(first) = round.first() {
                    if front.epoch != first.epoch || front.backups != first.backups {
                        break;
                    }
                }
                round.push(st.queue.pop_front().expect("front exists"));
            }
            if round.is_empty() {
                st.in_flight = false;
                return;
            }
            round
        };
        let epoch = round[0].epoch;
        let backups = round[0].backups.clone();
        let down = round[0].ctx.for_downstream();
        let mut entries = Vec::with_capacity(round.len());
        let mut dones = Vec::with_capacity(round.len());
        for entry in round {
            entries.push((entry.object, entry.ops));
            dones.push(entry.done);
        }
        let count = entries.len() as u64;
        // Serialize once; the refcounted body is shared by every send.
        let req = StoreRequest::ReplicateBatch { shard, epoch, entries };
        let body = Bytes::from(proto::encode_request(&down, &req).expect("requests serialize"));
        let this = self.arc();
        let expect = backups.clone();
        self.rpc().call_many_deferred(
            &backups,
            body,
            down.rpc_timeout(self.rpc_timeout),
            Box::new(move |replies| {
                let outcome = collect_acks(&expect, replies);
                this.repl_rounds.incr();
                this.repl_entries.add(count);
                for done in dones {
                    done(outcome.clone());
                }
                this.ship_deferred_round(shard, window);
            }),
        );
    }

    /// Forward one committed write set to every syncing backup of `shard`.
    /// Called after synchronous replication succeeds, still under the
    /// object's exclusive lock, so the per-object order of forwards in
    /// each session's stream equals commit order.
    ///
    /// A syncing peer in the placement with *no* open session (the scanner
    /// hasn't caught up, or the session just closed around `ConfirmBackup`)
    /// fails the commit: acking it without a session could strand a write
    /// the peer never receives if the confirmation lands later. The client
    /// retries against fresh placement.
    fn forward_to_syncing(
        &self,
        shard: ShardId,
        epoch: Epoch,
        syncing: &[NodeId],
        object: &ObjectId,
        ops: &[(Vec<u8>, Option<Vec<u8>>)],
    ) -> Result<(), String> {
        if syncing.is_empty() {
            return Ok(());
        }
        let sessions = self.sync.sessions_for(shard);
        for &peer in syncing {
            let Some(session) = sessions.iter().find(|s| s.peer == peer && s.epoch == epoch) else {
                return Err(format!(
                    "no open transfer session for syncing backup {peer} at epoch {epoch}; retry"
                ));
            };
            session.offer(SyncItem::Forward { object: object.0.clone(), ops: ops.to_vec() })?;
            self.repair_sync_enqueued.incr();
        }
        Ok(())
    }

    /// Ship everything queued in `session` to its peer, in order. Returns
    /// `Err` after [`SYNC_SHIP_RETRIES`] consecutive failures on one chunk
    /// (the caller decides whether that is a soft or hard session failure).
    fn ship_pending(&self, session: &SyncSession) -> Result<(), String> {
        let ctx = InvocationContext::background();
        loop {
            let (items, last_seq) = session.take_batch(SYNC_BATCH_ITEMS);
            if items.is_empty() {
                return Ok(());
            }
            let count = items.len() as u64;
            let bytes: u64 = items.iter().map(sync_item_bytes).sum();
            let req = StoreRequest::InstallShardChunk {
                shard: session.shard,
                epoch: session.epoch,
                items,
            };
            let mut attempts = 0;
            loop {
                if self.shutdown.load(Ordering::Acquire) {
                    return Err("node shutting down".into());
                }
                match self.call_peer(&ctx, session.peer, &req) {
                    Ok(StoreResponse::Ok) => break,
                    Ok(other) => return Err(format!("bad install reply {other:?}")),
                    Err(e) => {
                        attempts += 1;
                        if attempts >= SYNC_SHIP_RETRIES {
                            return Err(format!("chunk ship to {} failed: {e}", session.peer));
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            }
            session.mark_shipped(last_seq);
            self.repair_chunks_sent.incr();
            self.repair_bytes.add(bytes);
            self.repair_sync_shipped.add(count);
        }
    }

    /// Drive one state-transfer session end to end. `Err(hard)` aborts the
    /// session; `hard` means a durability promise was broken (failure after
    /// `ConfirmBackup` was proposed) and blocked commits must fail.
    fn drive_sync(&self, coord: &CoordClient, session: &SyncSession) -> Result<(), bool> {
        let shard = session.shard;
        let peer = session.peer;
        let epoch = session.epoch;
        let soft = |_: String| false;

        // Stream start: the peer wipes stale residue of the shard.
        session.offer(SyncItem::Begin).map_err(soft)?;
        self.repair_sync_enqueued.incr();
        self.ship_pending(session).map_err(soft)?;

        // Bulk scan. The object list is a point-in-time enumeration;
        // objects created after it forward through the session (their
        // create commit happens with the session open), and per-object
        // lock ordering keeps each object's snapshot/forward sequence in
        // commit order.
        let state = self.placement.snapshot();
        let mut ids: Vec<ObjectId> = self
            .engine
            .list_objects()
            .into_iter()
            .filter(|o| state.shard_for_object(&o.0) == Some(shard))
            .collect();
        ids.sort_by(|a, b| a.0.cmp(&b.0));
        for oid in ids {
            if self.shutdown.load(Ordering::Acquire) {
                return Err(false);
            }
            // Abort when the configuration moved on under us (another
            // failover, or the recruit was dropped).
            let now = self.placement.snapshot();
            let Some(info) = now.shard(shard).cloned() else { return Err(false) };
            if info.epoch != epoch || !info.is_syncing(peer) {
                return Err(false);
            }
            match self
                .engine
                .export_object_with(&oid, |snap| session.offer(SyncItem::Object(snap.clone())))
            {
                Ok(Ok(())) => self.repair_sync_enqueued.incr(),
                Ok(Err(e)) => return Err(soft(e)),
                // Deleted while we scanned: nothing to transfer.
                Err(InvokeError::UnknownObject(_)) => {}
                Err(e) => return Err(soft(e.to_string())),
            }
            self.ship_pending(session).map_err(soft)?;
        }

        // Drain: commits now block until their forward ships, squeezing
        // the stream dry before promotion.
        session.set_phase(SyncPhase::Draining);
        self.ship_pending(session).map_err(soft)?;
        {
            let now = self.placement.snapshot();
            let Some(info) = now.shard(shard).cloned() else { return Err(false) };
            if info.epoch != epoch || !info.is_syncing(peer) {
                return Err(false);
            }
        }

        // Admit BEFORE proposing: once the confirmation may be chosen, a
        // ship failure must fail the waiting commit rather than ack it
        // without the (about-to-be-counted) new replica.
        session.set_phase(SyncPhase::Admitted);
        let _ = coord.propose(lambda_coordinator::CoordCmd::ConfirmBackup {
            shard,
            node: peer,
            expected_epoch: epoch,
        });

        // Keep shipping while waiting for the epoch to move past the
        // session's: either our confirmation applied (peer is a backup) or
        // a concurrent reconfiguration won the fencing race.
        let deadline = Instant::now() + Duration::from_secs(15);
        loop {
            self.ship_pending(session).map_err(|_| true)?;
            let now = self.placement.snapshot();
            let Some(info) = now.shard(shard).cloned() else { return Err(false) };
            if info.epoch > epoch {
                self.ship_pending(session).map_err(|_| true)?;
                return if info.backups.contains(&peer) { Ok(()) } else { Err(false) };
            }
            if Instant::now() > deadline || self.shutdown.load(Ordering::Acquire) {
                // Ambiguous: the confirmation may yet be chosen. Hard-fail
                // so no commit is acked into the ambiguity.
                return Err(true);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Run one registered transfer session to completion and tear it down
    /// (the scanner registered it in [`SyncManager`] before spawning us).
    fn run_sync_session(&self, coord: &CoordClient, session: Arc<SyncSession>) {
        match self.drive_sync(coord, &session) {
            Ok(()) => session.set_phase(SyncPhase::Done),
            Err(hard) => {
                session.set_phase(SyncPhase::Failed { hard });
                self.repair_sessions_failed.incr();
            }
        }
        self.sync.remove(session.shard, session.peer);
    }
}

impl CommitHook for NodeInner {
    fn on_commit(
        &self,
        ctx: &InvocationContext,
        object: &ObjectId,
        ops: &[(Vec<u8>, Option<Vec<u8>>)],
    ) -> Result<(), String> {
        if !self.replicate.load(Ordering::Relaxed) {
            return Ok(());
        }
        let Some((shard, info)) = self.placement.locate(object) else {
            return Ok(()); // no shard map: single-node mode
        };
        if info.lost {
            return Err(format!("fenced: shard {shard} lost every replica (epoch {})", info.epoch));
        }
        if info.primary != self.id {
            return Err(format!(
                "fenced: node-{} is no longer primary for shard {shard} (epoch {})",
                self.id.0, info.epoch
            ));
        }
        self.replicate_to_backups(ctx, shard, info.epoch, object, ops, &info.backups)?;
        self.forward_to_syncing(shard, info.epoch, &info.syncing, object, ops)
    }

    /// Non-blocking commit hook for the deferred invocation path: the
    /// fencing checks and the forward to syncing peers run inline on the
    /// committing thread (still under the object's exclusive lock, so
    /// per-object stream order equals commit order), then the write set
    /// joins the shard's deferred replication window and `done` fires from
    /// the ack thread. No thread parks between local commit and ack.
    fn on_commit_deferred(
        &self,
        ctx: &InvocationContext,
        object: &ObjectId,
        ops: WriteSetOps,
        done: CommitCallback,
    ) {
        if !self.replicate.load(Ordering::Relaxed) {
            done(Ok(()));
            return;
        }
        let Some((shard, info)) = self.placement.locate(object) else {
            done(Ok(())); // no shard map: single-node mode
            return;
        };
        if info.lost {
            done(Err(format!("fenced: shard {shard} lost every replica (epoch {})", info.epoch)));
            return;
        }
        if info.primary != self.id {
            done(Err(format!(
                "fenced: node-{} is no longer primary for shard {shard} (epoch {})",
                self.id.0, info.epoch
            )));
            return;
        }
        // The forward precedes the backup acks here (the blocking path
        // forwards after them). The write is already durable locally, so
        // forwarding a write whose replication later fails only makes the
        // syncing peer converge toward local state — it is never acked to
        // the client.
        if let Err(e) = self.forward_to_syncing(shard, info.epoch, &info.syncing, object, &ops) {
            done(Err(e));
            return;
        }
        if info.backups.is_empty() {
            done(Ok(()));
            return;
        }
        self.replicate_deferred(ctx, shard, info.epoch, object, ops, info.backups.clone(), done);
    }
}

impl InvokeRouter for NodeInner {
    fn route(
        &self,
        ctx: &InvocationContext,
        _source: &ObjectId,
        target: &ObjectId,
        method: &str,
        args: Vec<VmValue>,
        depth: usize,
    ) -> Result<VmValue, InvokeError> {
        match self.placement.locate(target) {
            Some((_, info)) if info.primary != self.id => {
                // Remote object: one hop to its primary (§4.2.1 — "a
                // function invocation results in at most one network
                // round-trip within the responsible replica set"). The
                // caller's context rides along, so the remote engine's
                // spans join this trace and its scheduler enforces what is
                // left of the deadline.
                let req = StoreRequest::Invoke {
                    object: target.0.clone(),
                    method: method.to_string(),
                    args,
                    read_only: false,
                    internal: true,
                };
                match self.call_peer(ctx, info.primary, &req)? {
                    StoreResponse::Value(v) => Ok(v),
                    other => Err(InvokeError::Nested(format!("bad reply {other:?}"))),
                }
            }
            _ => self.engine.invoke_ctx(ctx, target, method, args, false, depth),
        }
    }
}

/// A running LambdaStore node.
pub struct AggregatedNode {
    inner: Arc<NodeInner>,
    watch_rpc: Arc<RpcNode>,
}

impl std::fmt::Debug for AggregatedNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AggregatedNode").field("id", &self.inner.id).finish()
    }
}

impl AggregatedNode {
    /// Start a node with the given id on `net`.
    ///
    /// # Errors
    /// Propagates storage-open failures as [`InvokeError::Storage`].
    pub fn start(
        net: &Network,
        id: NodeId,
        config: AggregatedConfig,
    ) -> Result<Arc<AggregatedNode>, InvokeError> {
        // One registry per node: the kv layer, engine, scheduler and the
        // node's own request counters all report through it.
        let registry = Registry::shared();
        let db = Db::open_with_registry(&config.data_dir, config.kv.clone(), &registry)?;
        let types = Arc::new(TypeRegistry::new());
        let engine =
            Arc::new(Engine::with_registry(db, types, config.engine, Arc::clone(&registry)));

        let inner = Arc::new(NodeInner {
            id,
            engine,
            placement: Placement::new(),
            rpc: OnceLock::new(),
            self_ref: OnceLock::new(),
            rpc_timeout: config.rpc_timeout,
            requests: registry.counter("node_requests"),
            replications: registry.counter("node_replications_applied"),
            busy_nanos: registry.counter("node_busy_nanos"),
            shutdown: AtomicBool::new(false),
            replicate: AtomicBool::new(true),
            repl_batching: AtomicBool::new(true),
            repl_windows: Mutex::new(HashMap::new()),
            deferred_windows: Mutex::new(HashMap::new()),
            q_depth: registry.gauge("rpc_queue_depth"),
            q_inflight: registry.gauge("rpc_inflight"),
            q_shed: registry.gauge("rpc_shed"),
            repl_rounds: registry.counter("node_repl_rounds"),
            repl_entries: registry.counter("node_repl_entries"),
            sync: SyncManager::new(),
            sync_chunk_bytes: config.sync_chunk_bytes,
            repair_chunks_sent: registry.counter("repair_chunks_sent"),
            repair_bytes: registry.counter("repair_bytes"),
            repair_chunks_applied: registry.counter("repair_chunks_applied"),
            repair_sessions_failed: registry.counter("repair_sessions_failed"),
            repair_sync_enqueued: registry.counter("repair_sync_enqueued"),
            repair_sync_shipped: registry.counter("repair_sync_shipped"),
            registry,
        });

        // Service endpoint. `Invoke` is served as a *deferred reply*: the
        // worker thread hands the parked `Responder` to the engine's
        // continuation chain and is released while the invocation waits on
        // the object lock, the group commit, or replication acks — the
        // reply is a completion, not a return value. Every other request
        // kind still replies inline.
        let handler_inner = Arc::clone(&inner);
        let handler: Handler =
            Arc::new(move |from: NodeId, body: Vec<u8>, responder: Responder| {
                let started = Instant::now();
                let (ctx, req) = match proto::decode_request(&body) {
                    Ok(decoded) => decoded,
                    Err(e) => {
                        responder.reply(Err(e.to_string()));
                        return;
                    }
                };
                if let StoreRequest::Invoke { object, method, args, read_only, internal } = req {
                    handler_inner.requests.incr();
                    let oid = ObjectId::new(object);
                    if let Err(e) = handler_inner.check_role(&oid, read_only) {
                        handler_inner.busy_nanos.add(started.elapsed().as_nanos() as u64);
                        responder.reply(Err(encode_error(&e)));
                        return;
                    }
                    let busy = handler_inner.busy_nanos.clone();
                    handler_inner.engine.invoke_deferred(
                        &ctx,
                        &oid,
                        &method,
                        args,
                        !internal,
                        Box::new(move |result| {
                            let encoded = result
                                .map(StoreResponse::Value)
                                .map_err(|e| encode_error(&e))
                                .and_then(|resp| wire::to_bytes(&resp).map_err(|e| e.to_string()));
                            busy.add(started.elapsed().as_nanos() as u64);
                            responder.reply(encoded);
                        }),
                    );
                    return;
                }
                let result = handler_inner
                    .handle(from, &ctx, req)
                    .map_err(|e| encode_error(&e))
                    .and_then(|resp| wire::to_bytes(&resp).map_err(|e| e.to_string()));
                handler_inner.busy_nanos.add(started.elapsed().as_nanos() as u64);
                responder.reply(result);
            });
        // Admission control: once the run queue is over depth, requests
        // born at a client are refused with a retryable `Overloaded`
        // before consuming a worker. Node-to-node and background traffic
        // (replication, repair, state transfer) is always admitted, so
        // shedding never cascades into the durability path.
        let shed_reply =
            encode_error(&InvokeError::Overloaded(format!("node-{} run queue full", id.0)));
        let admission: AdmissionPolicy =
            Arc::new(move |body: &[u8]| match wire::split_header(body) {
                Ok((Some(header), _)) if header.origin == Origin::Client.to_wire() => {
                    Some(shed_reply.clone())
                }
                // Headerless, malformed, or non-client origin: admit — only
                // provably client-origin load is sheddable.
                _ => None,
            });
        let rpc = RpcNode::start_with_config(
            net,
            id,
            handler,
            RpcConfig {
                workers: config.workers,
                queue_depth: config.run_queue_depth,
                admission: Some(admission),
                ..RpcConfig::default()
            },
        );
        inner.rpc.set(Arc::clone(&rpc)).expect("set once");
        inner.self_ref.set(Arc::downgrade(&inner)).expect("set once");

        // The engine's replication hook and cross-shard router are the node.
        inner.engine.set_commit_hook(Arc::clone(&inner) as Arc<dyn CommitHook>);
        inner.engine.set_router(Arc::clone(&inner) as Arc<dyn InvokeRouter>);

        // Watch endpoint for coordinator pushes.
        let watch_inner = Arc::clone(&inner);
        let watch_rpc = RpcNode::start(
            net,
            NodeId(id.0 + WATCH_ID_OFFSET),
            sync_handler(move |_, body| {
                if let Ok(CoordEvent::StateChanged(state)) = wire::from_bytes(&body) {
                    watch_inner.placement.update(state);
                }
                Ok(vec![])
            }),
            1,
        );

        // Heartbeat + state-poll loop, and the repair scanner that opens
        // state-transfer sessions for recruits the coordinator assigned us.
        if !config.coordinators.is_empty() {
            let coord = Arc::new(CoordClient::new(
                Arc::clone(&rpc),
                config.coordinators.clone(),
                config.rpc_timeout,
            ));
            let hb_coord = Arc::clone(&coord);
            let hb_inner = Arc::clone(&inner);
            let interval = config.heartbeat_interval;
            let watch_id = NodeId(id.0 + WATCH_ID_OFFSET);
            std::thread::Builder::new()
                .name(format!("store-{id}-heartbeat"))
                .spawn(move || loop {
                    if hb_inner.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    let _ = hb_coord.heartbeat(hb_inner.id, Some(watch_id));
                    if let Ok(Some(state)) = hb_coord.get_state(hb_inner.placement.version()) {
                        hb_inner.placement.update(state);
                    }
                    // Housekeeping: drop lock-table entries for idle objects.
                    hb_inner.engine.scheduler().gc();
                    std::thread::sleep(interval);
                })
                .expect("spawn heartbeat");

            let sync_inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("store-{id}-sync"))
                .spawn(move || loop {
                    if sync_inner.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    let state = sync_inner.placement.snapshot();
                    for (&shard, info) in &state.shards {
                        if info.primary != sync_inner.id || info.lost {
                            continue;
                        }
                        for &peer in &info.syncing {
                            if sync_inner.sync.contains(shard, peer) {
                                continue;
                            }
                            // Register before spawning so the next scan
                            // (and concurrent commits) see the session.
                            let session = SyncSession::new(shard, peer, info.epoch);
                            sync_inner.sync.insert(Arc::clone(&session));
                            let n = Arc::clone(&sync_inner);
                            let c = Arc::clone(&coord);
                            std::thread::Builder::new()
                                .name(format!("store-{}-sync-{shard}-{peer}", n.id))
                                .spawn(move || n.run_sync_session(&c, session))
                                .expect("spawn sync session");
                        }
                    }
                    std::thread::sleep(interval);
                })
                .expect("spawn sync scanner");
        }

        Ok(Arc::new(AggregatedNode { inner, watch_rpc }))
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.inner.id
    }

    /// Direct engine access (tests, native-type deployment, benches).
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// The node-wide telemetry registry (span chains, stage histograms,
    /// and every counter the node's stats surfaces are served from).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.inner.registry
    }

    /// Deploy a native (trusted) object type directly on this node.
    pub fn register_native_type(&self, ty: ObjectType) {
        self.inner.engine.types().register(ty);
    }

    /// The node's placement view (tests/diagnostics; also used to install
    /// static shard maps when no coordinator is configured).
    pub fn placement(&self) -> &Placement {
        &self.inner.placement
    }

    /// Enable or disable synchronous replication (ABL-REPL ablation).
    pub fn set_replication_enabled(&self, enabled: bool) {
        self.inner.replicate.store(enabled, Ordering::Relaxed);
    }

    /// Enable or disable per-shard replication batching (ABL-GROUPCOMMIT
    /// ablation). When disabled each committed write set is shipped as its
    /// own [`StoreRequest::Replicate`] RPC.
    pub fn set_replication_batching(&self, enabled: bool) {
        self.inner.repl_batching.store(enabled, Ordering::Relaxed);
    }

    /// `(rounds, entries)` shipped through the batched replication path;
    /// `entries / rounds` is the mean replication window size.
    pub fn replication_batch_stats(&self) -> (u64, u64) {
        (self.inner.repl_rounds.get(), self.inner.repl_entries.get())
    }

    /// Statistics snapshot (a thin view over the registry's counters).
    pub fn stats(&self) -> NodeStatsWire {
        self.inner.stats_wire()
    }

    /// Stop serving (the node "crashes": heartbeats stop, RPCs fail).
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.rpc().shutdown();
        self.watch_rpc.shutdown();
    }
}
