//! The aggregated architecture: a LambdaStore storage node.
//!
//! Each node embeds the LambdaObjects [`Engine`] directly in the storage
//! process (§4.2): invocations execute where the data lives, mutating
//! methods at the shard's primary, read-only methods at any replica.
//! Committed write sets are replicated synchronously to backups with epoch
//! fencing (§4.2.1), nested cross-object calls are routed to the
//! responsible primary, and the node heartbeats the coordination service
//! and receives shard-map pushes.

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use lambda_coordinator::CoordClient;
use lambda_coordinator::CoordEvent;
use lambda_coordinator::{
    ClusterState, CoordCmd, Epoch, MigrationInfo, MigrationPhase, NodeLoad, ShardId,
};
use lambda_kv::Db;
use lambda_net::rpc::{sync_handler, AdmissionPolicy, Responder, RpcConfig};
use lambda_net::{wire, Handler, Network, NodeId, RpcError, RpcNode};
use lambda_objects::{
    decode_error, encode_error, keys, CommitCallback, CommitHook, Counter, Engine, EngineConfig,
    Gauge, InvocationContext, InvokeError, InvokeRouter, ObjectId, ObjectType, Origin, Registry,
    TypeRegistry, WriteSetOps,
};
use lambda_vm::VmValue;

use crate::placement::Placement;
use crate::proto::{self, ClientPush, NodeStatsWire, StoreRequest, StoreResponse, SyncItem};
use crate::sync::{SyncManager, SyncPhase, SyncSession};

/// Offset for a node's watch endpoint (coordinator push notifications).
pub const WATCH_ID_OFFSET: u32 = 20_000;

/// Node configuration.
#[derive(Debug, Clone)]
pub struct AggregatedConfig {
    /// Directory for this node's database.
    pub data_dir: PathBuf,
    /// Storage-engine options.
    pub kv: lambda_kv::Options,
    /// Execution-engine options.
    pub engine: EngineConfig,
    /// RPC worker threads. With the deferred `Invoke` path a worker is
    /// only held for CPU work (decode + VM execution), never for lock,
    /// group-commit, or replication waits, so a small pool sustains
    /// thousands of in-flight invocations.
    pub workers: usize,
    /// Run-queue depth that trips admission control (`0` = unbounded).
    /// Client-origin requests arriving over this depth are refused
    /// immediately with a retryable [`InvokeError::Overloaded`]; requests
    /// on behalf of other nodes or background work (replication, repair,
    /// state transfer) are always admitted.
    pub run_queue_depth: usize,
    /// Per-RPC timeout for node-to-node calls.
    pub rpc_timeout: Duration,
    /// Heartbeat + state-poll interval.
    pub heartbeat_interval: Duration,
    /// Coordinator service endpoints.
    pub coordinators: Vec<NodeId>,
    /// Soft payload bound per shard state-transfer chunk (repair).
    pub sync_chunk_bytes: usize,
    /// Read-lease duration. A primary grants backups the right to serve
    /// read-only invocations for this long per grant (piggybacked on
    /// replication traffic and renewed from the heartbeat loop), and a
    /// freshly reconfigured primary fences commits for up to this long so
    /// departed members' leases drain. Must stay below the coordinator's
    /// `heartbeat_timeout` × 2 (see DESIGN.md §11); leases are only
    /// enforced when coordinators are configured.
    pub lease_duration: Duration,
}

impl AggregatedConfig {
    /// Sensible defaults under `data_dir` with the given coordinators.
    pub fn new(data_dir: PathBuf, coordinators: Vec<NodeId>) -> AggregatedConfig {
        AggregatedConfig {
            data_dir,
            kv: lambda_kv::Options::default(),
            engine: EngineConfig::default(),
            workers: 16,
            run_queue_depth: 1024,
            rpc_timeout: Duration::from_millis(500),
            heartbeat_interval: Duration::from_millis(100),
            coordinators,
            sync_chunk_bytes: 64 * 1024,
            lease_duration: Duration::from_millis(400),
        }
    }
}

/// One committed write set parked in a shard's replication window, waiting
/// for a window leader to ship it (or to be promoted to leader itself).
#[derive(Debug)]
struct ReplWaiter {
    state: Mutex<ReplWaiterState>,
    cv: Condvar,
}

#[derive(Debug)]
struct ReplWaiterState {
    /// `(object, ops)`; taken by the window leader when it forms a batch.
    entry: Option<(Vec<u8>, WriteSetOps)>,
    /// Epoch and backup set captured at enqueue time. The leader only
    /// coalesces a prefix that agrees on both, so fencing stays exact
    /// across reconfigurations.
    epoch: Epoch,
    backups: Vec<NodeId>,
    /// Set when this waiter is promoted to lead the next window.
    leader: bool,
    /// Set (with `result`) once a leader has shipped this write set.
    done: bool,
    result: Option<Result<(), String>>,
}

impl ReplWaiter {
    fn new(object: Vec<u8>, ops: WriteSetOps, epoch: Epoch, backups: Vec<NodeId>) -> Self {
        ReplWaiter {
            state: Mutex::new(ReplWaiterState {
                entry: Some((object, ops)),
                epoch,
                backups,
                leader: false,
                done: false,
                result: None,
            }),
            cv: Condvar::new(),
        }
    }
}

/// Per-shard replication window: a queue of committed write sets awaiting
/// shipment, led by the writer at its front (same leader/follower scheme as
/// the storage engine's WAL group commit).
#[derive(Debug, Default)]
struct ShardWindow {
    queue: Mutex<VecDeque<Arc<ReplWaiter>>>,
}

/// One committed write set queued in a shard's *deferred* replication
/// window (the non-blocking commit path). Unlike [`ReplWaiter`] nothing
/// parks: the commit completion travels with the entry and fires from the
/// ack thread of the round that ships it.
struct DeferredRepl {
    object: Vec<u8>,
    ops: WriteSetOps,
    /// Epoch and backup set captured at enqueue time; a round only
    /// coalesces a queue prefix that agrees on both, so epoch fencing
    /// stays exact across reconfigurations (same rule as the blocking
    /// window).
    epoch: Epoch,
    backups: Vec<NodeId>,
    /// The committing invocation's context; the round leader's copy
    /// bounds the fan-out timeout and rides in the batch envelope.
    ctx: InvocationContext,
    done: CommitCallback,
}

/// Per-shard deferred replication window. Entries accumulate while one
/// `ReplicateBatch` fan-out is in flight; that fan-out's completion ships
/// the next round, so the window is always driven without a parked leader
/// thread.
#[derive(Default)]
struct DeferredWindow {
    state: Mutex<DeferredWindowState>,
}

#[derive(Default)]
struct DeferredWindowState {
    queue: VecDeque<DeferredRepl>,
    in_flight: bool,
}

/// Decode one ack per backup; any failure fails the whole window.
/// The subset of `backups` whose reply was anything but a clean `Ok` ack.
/// Replication retries re-target exactly this subset: a backup that acked
/// has the write applied, whatever happened to its peers.
fn failed_acks(backups: &[NodeId], replies: &[Result<Vec<u8>, RpcError>]) -> Vec<NodeId> {
    backups
        .iter()
        .zip(replies)
        .filter(|(_, reply)| {
            !matches!(reply, Ok(bytes)
                if matches!(wire::from_bytes::<StoreResponse>(bytes), Ok(StoreResponse::Ok)))
        })
        .map(|(backup, _)| *backup)
        .collect()
}

struct NodeInner {
    id: NodeId,
    engine: Arc<Engine>,
    placement: Placement,
    rpc: OnceLock<Arc<RpcNode>>,
    /// Back-reference for completions that must re-enter the node after an
    /// asynchronous hop (deferred replication rounds).
    self_ref: OnceLock<Weak<NodeInner>>,
    rpc_timeout: Duration,
    /// The node-wide telemetry registry: shared by the kv layer, the
    /// engine/scheduler, and the counters below, so every stats surface is
    /// a view over one set of cells.
    registry: Arc<Registry>,
    requests: Counter,
    replications: Counter,
    busy_nanos: Counter,
    shutdown: AtomicBool,
    /// When false the replication hook is skipped (single-node mode and
    /// the ABL-REPL "no replication" ablation).
    replicate: AtomicBool,
    /// When false every committed write set is shipped as its own
    /// `Replicate` RPC (the ABL-GROUPCOMMIT "wal-only" configuration).
    repl_batching: AtomicBool,
    /// Per-shard replication windows, created on first use (blocking
    /// callers: raw writes and synchronous commits).
    repl_windows: Mutex<HashMap<ShardId, Arc<ShardWindow>>>,
    /// Per-shard deferred replication windows (non-blocking commit path).
    deferred_windows: Mutex<HashMap<ShardId, Arc<DeferredWindow>>>,
    /// Instantaneous run-queue depth, mirrored from the RPC endpoint on
    /// stats reads.
    q_depth: Gauge,
    /// Admitted-but-unanswered requests, mirrored likewise.
    q_inflight: Gauge,
    /// Requests refused by admission control, mirrored likewise.
    q_shed: Gauge,
    /// Batched replication rounds issued (one `ReplicateBatch` fan-out).
    repl_rounds: Counter,
    /// Write sets shipped through batched rounds.
    repl_entries: Counter,
    /// Open state-transfer sessions to syncing backups (primary side).
    sync: SyncManager,
    /// Soft payload bound per state-transfer chunk.
    sync_chunk_bytes: usize,
    /// `InstallShardChunk` RPCs shipped to syncing backups.
    repair_chunks_sent: Counter,
    /// Payload bytes shipped through state transfer.
    repair_bytes: Counter,
    /// Chunks applied here as a syncing backup.
    repair_chunks_applied: Counter,
    /// Transfer sessions that aborted before promotion (or failed hard).
    repair_sessions_failed: Counter,
    /// Stream items accepted into sync sessions (with `repair_sync_shipped`
    /// below, the difference is the node's total sync lag).
    repair_sync_enqueued: Counter,
    /// Stream items acked by syncing backups.
    repair_sync_shipped: Counter,
    /// Read-lease duration (grants, fences, and the primary's own read
    /// authority window all derive from it).
    lease_duration: Duration,
    /// Leases are only enforced when a coordinator drives placement;
    /// statically configured deployments keep the pre-lease behaviour
    /// (any replica serves reads, unfenced).
    lease_enforce: bool,
    /// Node start instant; `last_coord_ok` is nanoseconds since it.
    started: Instant,
    /// Nanoseconds (since `started`) of the last successful coordinator
    /// heartbeat; 0 = never. Grants and primary reads require freshness.
    last_coord_ok: AtomicU64,
    /// Backup role: shard → (granting epoch, expiry) of the held lease.
    leases_held: Mutex<HashMap<ShardId, (Epoch, Instant)>>,
    /// Primary role: (shard, backup) → expiry of the latest grant issued,
    /// stamped conservatively at send. Consulted when a member departs to
    /// size the commit fence.
    leases_granted: Mutex<HashMap<(ShardId, NodeId), Instant>>,
    /// Commits for these shards are refused until the instant passes
    /// (departed members' read leases draining after a reconfiguration).
    commit_fences: Mutex<HashMap<ShardId, Instant>>,
    /// Clients subscribed to the commit invalidation stream.
    subscribers: Mutex<Vec<NodeId>>,
    /// Read-only invocations served here under a follower lease.
    follower_reads: Counter,
    /// Reads refused for want of a (fresh, epoch-matching) lease.
    lease_rejections: Counter,
    /// Standalone `RenewLease` frames sent (primary role).
    lease_renewals: Counter,
    /// Commits held (not failed) while a post-reconfiguration fence was up.
    lease_fenced_commits: Counter,
    /// Replication fan-outs re-sent to backups that missed an earlier round
    /// (a dropped frame or lost ack never downgrades an acked write).
    repl_retries: Counter,
    /// Invalidation frames pushed to subscribed clients.
    invalidations_published: Counter,
    /// Recent committed write sets per shard (bounded ring, newest last),
    /// fed by both roles: the primary records what it replicates, a backup
    /// records what it applies. A backup promoted to primary replays its
    /// ring to the surviving backups before new commits land, so a write
    /// the old primary acked after some survivor's ack was lost still
    /// reaches every replica (closes the DESIGN.md §11 limitation).
    recent_commits: Mutex<HashMap<ShardId, RecentCommitRing>>,
    /// Shards whose local state is known corrupt, awaiting coordinator
    /// action (value = epoch of the latest report attempt). Suspicion is
    /// sticky: a report proposed with a stale epoch is fenced off by the
    /// coordinator as a no-op, so the node re-reports every heartbeat with
    /// a refreshed epoch until it observes itself evicted from (or
    /// re-recruited into) the shard.
    suspect_shards: Mutex<HashMap<ShardId, Epoch>>,
    /// Per-shard corruption-detection count at the last sync `Begin` this
    /// node received as a recruit. Chunks arriving after the count moves
    /// are refused, failing the transfer before it can confirm a replica
    /// with quarantine holes in its freshly-installed state.
    sync_damage_floor: Mutex<HashMap<ShardId, u64>>,
    /// Primary-side forward-gap token, bumped when a commit could not
    /// forward to a syncing recruit because no session was open yet. A
    /// sync session snapshots the token at start and refuses to propose
    /// `ConfirmBackup` if it moved: the gapped write is already durable
    /// locally, so the replacement session's re-scan covers it, while the
    /// commit acks without stalling on session registration.
    forward_gaps: Mutex<HashMap<ShardId, u64>>,
    /// Disk-corruption reports proposed to the coordinator.
    corruption_reports: Counter,
    /// Promotion re-syncs completed (ring replays after failover).
    promotion_resyncs: Counter,
    /// Per-object invocation tally since the last heartbeat; drained into
    /// the coordinator load report that feeds the rebalancer.
    invoke_tally: Mutex<HashMap<Vec<u8>, u64>>,
    /// Objects whose coordinator-owned migration this node is currently
    /// driving as the source primary (guards against double-spawning).
    migrations_driving: Mutex<HashSet<Vec<u8>>>,
    /// Coordinator-owned migrations this node drove to commit as source.
    migrations_completed: Counter,
    /// Mutations refused (admission) or fenced (commit) with `ObjectMoved`
    /// while their object's migration was in handoff.
    migration_fenced: Counter,
}

/// Payload bytes of one stream item (transfer-cost accounting).
fn sync_item_bytes(item: &SyncItem) -> u64 {
    match item {
        SyncItem::Begin => 0,
        SyncItem::Object(snap) => snap.payload_bytes() as u64,
        SyncItem::Forward { object, ops } => {
            let ops_bytes: usize =
                ops.iter().map(|(k, v)| k.len() + v.as_ref().map_or(0, Vec::len)).sum();
            (object.len() + ops_bytes) as u64
        }
    }
}

/// Pause between replication retry rounds: long enough to let a transient
/// fault clear or the failure detector evict a dead backup, short enough
/// that a commit holding an object lock barely notices.
const REPL_RETRY_PAUSE: Duration = Duration::from_millis(2);

/// Items per `InstallShardChunk` RPC on the push path.
const SYNC_BATCH_ITEMS: usize = 32;
/// Send retries per chunk before a session gives up on its peer.
const SYNC_SHIP_RETRIES: usize = 10;
/// Committed write sets kept per shard for promotion re-sync. Sized to
/// cover everything the old primary could have acked between two lease
/// renewals; replays are idempotent puts, so over-covering is harmless.
const RECENT_COMMITS_CAP: usize = 32;

/// One shard's ring of recent committed write sets: `(object id bytes,
/// write set)`, newest last, bounded at [`RECENT_COMMITS_CAP`].
type RecentCommitRing = VecDeque<(Vec<u8>, WriteSetOps)>;

/// Hottest objects reported per heartbeat load report.
const HOT_REPORT_TOP_K: usize = 8;
/// `MigrateInstall` attempts against the target primary before the source
/// driver gives up and proposes `AbortMigration`.
const MIGRATE_SHIP_RETRIES: usize = 20;
/// Pause between migration-driver steps while waiting for placement to
/// catch up with a proposed phase change.
const MIGRATE_POLL_PAUSE: Duration = Duration::from_millis(5);

impl NodeInner {
    fn rpc(&self) -> &Arc<RpcNode> {
        self.rpc.get().expect("rpc initialized during start")
    }

    /// Record a successful coordinator contact (heartbeat ack).
    fn note_coord_ok(&self) {
        self.last_coord_ok.store(self.started.elapsed().as_nanos() as u64, Ordering::Release);
    }

    /// Time since the last successful coordinator contact; `None` = never.
    fn coord_contact_age(&self) -> Option<Duration> {
        match self.last_coord_ok.load(Ordering::Acquire) {
            0 => None,
            nanos => Some(self.started.elapsed().saturating_sub(Duration::from_nanos(nanos))),
        }
    }

    /// True while this node's view of "am I still primary?" is fresh
    /// enough to serve linearizable reads locally: the coordinator cannot
    /// have both declared us dead and elected a successor without first
    /// missing our heartbeats for longer than this.
    fn primary_read_authority_ok(&self) -> bool {
        self.coord_contact_age().is_some_and(|age| age < self.lease_duration)
    }

    /// The lease to piggyback on a grant-carrying message to `backups` of
    /// `shard`, in nanoseconds; 0 withholds the grant. A primary only
    /// grants while its own coordinator contact is fresher than half a
    /// lease: a deposed primary partitioned from the coordinator must stop
    /// granting *before* the failure detector can have replaced it, so no
    /// split-brain island keeps a departed backup's lease alive.
    fn grant_lease_nanos(&self, shard: ShardId, backups: &[NodeId]) -> u64 {
        if !self.lease_enforce || backups.is_empty() {
            return 0;
        }
        let fresh = self.coord_contact_age().is_some_and(|age| age * 2 < self.lease_duration);
        if !fresh {
            return 0;
        }
        let expiry = Instant::now() + self.lease_duration;
        let mut granted = self.leases_granted.lock();
        for &b in backups {
            let e = granted.entry((shard, b)).or_insert(expiry);
            if expiry > *e {
                *e = expiry;
            }
        }
        self.lease_duration.as_nanos() as u64
    }

    /// Backup role: accept a lease grant for `shard`, never downgrading to
    /// an older epoch or an earlier expiry.
    fn accept_lease(&self, shard: ShardId, epoch: Epoch, lease_nanos: u64) {
        if lease_nanos == 0 {
            return;
        }
        let expiry = Instant::now() + Duration::from_nanos(lease_nanos);
        let mut held = self.leases_held.lock();
        match held.entry(shard) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert((epoch, expiry));
            }
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let (held_epoch, held_expiry) = *o.get();
                if epoch > held_epoch || (epoch == held_epoch && expiry > held_expiry) {
                    o.insert((epoch, expiry));
                }
            }
        }
    }

    /// Remaining fence time for `shard` commits, if a post-reconfiguration
    /// fence is still draining; expired fences are removed on the way.
    fn fence_remaining(&self, shard: ShardId) -> Option<Duration> {
        let mut fences = self.commit_fences.lock();
        let until = *fences.get(&shard)?;
        let now = Instant::now();
        if now >= until {
            fences.remove(&shard);
            return None;
        }
        Some(until - now)
    }

    /// Record one committed write set in `shard`'s recent ring (bounded at
    /// [`RECENT_COMMITS_CAP`]; the oldest entry falls off).
    fn record_recent(&self, shard: ShardId, object: &[u8], ops: &[(Vec<u8>, Option<Vec<u8>>)]) {
        let mut rings = self.recent_commits.lock();
        let ring = rings.entry(shard).or_default();
        if ring.len() == RECENT_COMMITS_CAP {
            ring.pop_front();
        }
        ring.push_back((object.to_vec(), ops.to_vec()));
    }

    /// Drain the storage engine's corruption events and report them to the
    /// coordinator. One kv store backs every shard this node serves, so an
    /// unrecoverable corruption is reported against each of them; the
    /// coordinator treats the report like a departure (a corrupt backup is
    /// re-recruited around, a corrupt primary demoted to a healthy
    /// survivor), and this node re-syncs from a clean peer when it is
    /// recruited back. Quarantined-and-repaired corruptions (a rotten
    /// SSTable dropped from the current version, its data recoverable from
    /// other tables or peers) still flow through here: the coordinator's
    /// epoch bump forces a fresh transfer, which restores any keys the
    /// quarantine took out.
    fn report_corruption(&self, coord: &CoordClient) {
        let events = self.engine.db().take_corruption_events();
        let state = self.placement.snapshot();
        let mut suspects = self.suspect_shards.lock();
        if !events.is_empty() {
            for (&shard, info) in &state.shards {
                let member = info.primary == self.id
                    || info.backups.contains(&self.id)
                    || info.is_syncing(self.id);
                if !info.lost && member {
                    suspects.entry(shard).or_insert(info.epoch);
                }
            }
        }
        // Re-propose every tracked suspicion at the freshest epoch we know.
        // Clear it once this node is out of the shard entirely: the
        // coordinator acted (or the shard moved on), and any recruitment
        // back in streams clean state onto this store. The syncing role is
        // tracked like the active ones — a recruit that quarantined
        // freshly-installed transfer data MUST NOT confirm with that hole,
        // so it keeps reporting until the transfer is torn down.
        suspects.retain(|&shard, epoch| {
            let Some(info) = state.shards.get(&shard) else { return false };
            let member = info.primary == self.id
                || info.backups.contains(&self.id)
                || info.is_syncing(self.id);
            if !member {
                return false;
            }
            if info.lost {
                // Lost keeps membership as revival preference, and a
                // `ReviveShard` re-seats this replica as-is — no clean
                // transfer happens. Hold the suspicion (proposing now
                // would just fence on `lost`) so a revival onto this node
                // is re-reported against the revived epoch.
                return true;
            }
            *epoch = info.epoch;
            let _ = coord.propose(lambda_coordinator::CoordCmd::ReportCorruption {
                node: self.id,
                shard,
                expected_epoch: info.epoch,
            });
            self.corruption_reports.incr();
            true
        });
    }

    /// Just-promoted primary: replay the shard's ring of recent committed
    /// write sets to the surviving backups before the commit fence lifts.
    /// Applies are idempotent puts, so re-sending a set a survivor already
    /// holds is harmless; a set the deposed primary acked without this
    /// survivor's ack landing is delivered here, converging the replica
    /// set on every acked write before new commits stack on top.
    fn spawn_promotion_resync(&self, shard: ShardId, epoch: Epoch, backups: Vec<NodeId>) {
        let entries: Vec<(Vec<u8>, WriteSetOps)> = {
            let rings = self.recent_commits.lock();
            rings.get(&shard).map(|r| r.iter().cloned().collect()).unwrap_or_default()
        };
        if entries.is_empty() || backups.is_empty() {
            return;
        }
        let this = self.arc();
        std::thread::Builder::new()
            .name(format!("store-{}-resync-{shard}", self.id))
            .spawn(move || {
                let ctx = InvocationContext::background();
                if this.replicate_until_acked(&ctx, shard, epoch, &entries, backups, true).is_ok() {
                    this.promotion_resyncs.incr();
                }
            })
            .expect("spawn promotion resync");
    }

    /// Install a placement update, diffing shard configurations to keep
    /// lease state honest: superseded held leases are dropped, and when
    /// this node (re)takes a primary role in a configuration that lost a
    /// member, commits are fenced until every lease that member could
    /// still hold has drained. Growth-only changes (recruiting/confirming
    /// a backup) and first sight of a shard fence nothing.
    fn install_placement(&self, state: ClusterState) {
        if !self.lease_enforce {
            self.placement.update(state);
            return;
        }
        let old = self.placement.snapshot();
        if !self.placement.update(state) {
            return;
        }
        let new = self.placement.snapshot();
        let now = Instant::now();
        for (&shard, info) in &new.shards {
            let old_info = old.shard(shard);
            if old_info.is_some_and(|oi| info.epoch > oi.epoch) {
                // Backup role: a lease granted under a superseded epoch
                // can never serve this configuration's reads.
                let mut held = self.leases_held.lock();
                if held.get(&shard).is_some_and(|&(e, _)| e < info.epoch) {
                    held.remove(&shard);
                }
            }
            if info.primary != self.id || info.lost {
                continue;
            }
            // First sight of the shard (bootstrap): nobody can hold a
            // lease we have to wait out.
            let Some(old_info) = old_info else { continue };
            if info.epoch == old_info.epoch {
                continue;
            }
            let was_primary = old_info.primary == self.id;
            let departed = old_info.departed_members(info);
            let fence_until = if !was_primary {
                // Just promoted: the old primary's outstanding grants are
                // unknown here, so assume the worst case — a grant issued
                // the instant before the configuration changed.
                Some(now + self.lease_duration)
            } else {
                // Still primary: fence exactly to the latest grant this
                // node issued to each departed member (none recorded means
                // none granted — nothing to wait for).
                let granted = self.leases_granted.lock();
                departed.iter().filter_map(|&n| granted.get(&(shard, n)).copied()).max()
            };
            if let Some(until) = fence_until {
                if until > now {
                    let mut fences = self.commit_fences.lock();
                    let e = fences.entry(shard).or_insert(until);
                    if until > *e {
                        *e = until;
                    }
                }
            }
            let mut granted = self.leases_granted.lock();
            for &n in &departed {
                granted.remove(&(shard, n));
            }
            drop(granted);
            if !was_primary {
                // Satellite of the fence: while departed leases drain,
                // bring the surviving backups up to everything this node
                // applied as a backup (the old primary may have acked
                // writes the survivors never saw).
                self.spawn_promotion_resync(shard, info.epoch, info.backups.clone());
            }
        }
    }

    /// Primary role: re-grant leases to every backup of every shard this
    /// node leads (driven from the heartbeat loop, so write-idle shards
    /// stay readable at their backups).
    fn renew_leases(&self) {
        if !self.lease_enforce {
            return;
        }
        let state = self.placement.snapshot();
        let ctx = InvocationContext::background();
        for (&shard, info) in &state.shards {
            if info.primary != self.id || info.lost || info.backups.is_empty() {
                continue;
            }
            let lease_nanos = self.grant_lease_nanos(shard, &info.backups);
            if lease_nanos == 0 {
                continue;
            }
            let req = StoreRequest::RenewLease { shard, epoch: info.epoch, lease_nanos };
            let frame = proto::encode_request(&ctx, &req).expect("requests serialize");
            for &b in &info.backups {
                self.rpc().notify(b, frame.clone());
                self.lease_renewals.incr();
            }
        }
    }

    /// Push the written keys of a commit this node just applied to every
    /// subscribed client-edge cache (oneway; a lost frame only costs the
    /// subscriber a lazy re-validation miss later).
    fn publish_invalidations<'a>(&self, written: impl Iterator<Item = &'a Vec<u8>>) {
        let subs = self.subscribers.lock();
        if subs.is_empty() {
            return;
        }
        let keys: Vec<Vec<u8>> = written.cloned().collect();
        if keys.is_empty() {
            return;
        }
        let frame = wire::to_bytes(&ClientPush::Invalidate { keys }).expect("pushes serialize");
        for &s in subs.iter() {
            self.rpc().notify(s, frame.clone());
            self.invalidations_published.incr();
        }
    }

    /// One node-to-node RPC on behalf of `ctx`: the context crosses the
    /// wire in the request envelope (origin flipped to `Node`), and the
    /// transport timeout is the remaining budget capped at the configured
    /// per-hop timeout. An already-expired context sheds before any I/O.
    fn call_peer(
        &self,
        ctx: &InvocationContext,
        to: NodeId,
        req: &StoreRequest,
    ) -> Result<StoreResponse, InvokeError> {
        let down = ctx.for_downstream();
        if down.expired() {
            return Err(InvokeError::DeadlineExceeded);
        }
        let frame = proto::encode_request(&down, req).expect("requests serialize");
        match self.rpc().call(to, frame, down.rpc_timeout(self.rpc_timeout)) {
            Ok(bytes) => wire::from_bytes(&bytes)
                .map_err(|e| InvokeError::Nested(format!("bad response: {e}"))),
            Err(RpcError::Remote(msg)) => Err(decode_error(&msg)),
            Err(other) => Err(InvokeError::Nested(other.to_string())),
        }
    }

    fn handle(
        &self,
        _from: NodeId,
        ctx: &InvocationContext,
        req: StoreRequest,
    ) -> Result<StoreResponse, InvokeError> {
        self.requests.incr();
        match req {
            StoreRequest::Invoke { object, method, args, read_only, internal, .. } => {
                let oid = ObjectId::new(object);
                self.check_role(&oid, read_only)?;
                self.tally_invoke(oid.as_bytes());
                let value = self.engine.invoke_ctx(ctx, &oid, &method, args, !internal, 0)?;
                Ok(StoreResponse::Value(value))
            }
            StoreRequest::CreateObject { type_name, object, fields } => {
                let oid = ObjectId::new(object);
                self.check_role(&oid, false)?;
                let fields: Vec<(&str, &[u8])> =
                    fields.iter().map(|(f, v)| (f.as_str(), v.as_slice())).collect();
                self.engine.create_object(&type_name, &oid, &fields)?;
                Ok(StoreResponse::Ok)
            }
            StoreRequest::DeleteObject { object } => {
                let oid = ObjectId::new(object);
                self.check_role(&oid, false)?;
                self.engine.delete_object(&oid)?;
                Ok(StoreResponse::Ok)
            }
            StoreRequest::DeployType { name, fields, module } => {
                let ty = ObjectType::from_module(name, fields, module)
                    .map_err(|e| InvokeError::Vm(format!("module rejected: {e}")))?;
                self.engine.types().register(ty);
                Ok(StoreResponse::Ok)
            }
            StoreRequest::Replicate { shard, epoch, object, ops, lease_nanos } => {
                let local_epoch = self.placement.epoch_of(shard).unwrap_or(0);
                if epoch < local_epoch {
                    return Err(InvokeError::WrongNode(format!(
                        "stale epoch {epoch} < {local_epoch} for shard {shard}"
                    )));
                }
                self.accept_lease(shard, epoch, lease_nanos);
                let oid = ObjectId::new(object);
                self.engine.apply_replicated(&oid, &ops)?;
                self.record_recent(shard, &oid.0, &ops);
                self.publish_invalidations(ops.iter().map(|(k, _)| k));
                self.replications.incr();
                Ok(StoreResponse::Ok)
            }
            StoreRequest::ReplicateBatch { shard, epoch, entries, lease_nanos } => {
                let local_epoch = self.placement.epoch_of(shard).unwrap_or(0);
                if epoch < local_epoch {
                    return Err(InvokeError::WrongNode(format!(
                        "stale epoch {epoch} < {local_epoch} for shard {shard}"
                    )));
                }
                self.accept_lease(shard, epoch, lease_nanos);
                let count = entries.len() as u64;
                let entries: Vec<(ObjectId, WriteSetOps)> =
                    entries.into_iter().map(|(o, ops)| (ObjectId::new(o), ops)).collect();
                self.engine.apply_replicated_batch(&entries)?;
                for (oid, ops) in &entries {
                    self.record_recent(shard, &oid.0, ops);
                }
                self.publish_invalidations(
                    entries.iter().flat_map(|(_, ops)| ops.iter().map(|(k, _)| k)),
                );
                self.replications.add(count);
                Ok(StoreResponse::Ok)
            }
            StoreRequest::RenewLease { shard, epoch, lease_nanos } => {
                let local_epoch = self.placement.epoch_of(shard).unwrap_or(0);
                if epoch >= local_epoch {
                    self.accept_lease(shard, epoch, lease_nanos);
                }
                Ok(StoreResponse::Ok)
            }
            StoreRequest::SubscribeInvalidations { subscriber } => {
                let mut subs = self.subscribers.lock();
                if !subs.contains(&subscriber) {
                    subs.push(subscriber);
                }
                Ok(StoreResponse::Ok)
            }
            StoreRequest::FetchObject { object, evict } => {
                let oid = ObjectId::new(object);
                let snapshot = if evict {
                    let snap = self.engine.export_object(&oid)?;
                    // Deleting through the engine replicates the deletions
                    // to backups, so a later failover cannot resurrect the
                    // migrated object here.
                    self.engine.delete_object(&oid)?;
                    snap
                } else {
                    self.engine.export_object(&oid)?
                };
                Ok(StoreResponse::Snapshot(snapshot))
            }
            StoreRequest::InstallObject { snapshot, shard } => {
                let info = self
                    .placement
                    .snapshot()
                    .shard(shard)
                    .cloned()
                    .ok_or_else(|| InvokeError::WrongNode(format!("no shard {shard}")))?;
                if info.primary != self.id {
                    return Err(InvokeError::WrongNode(format!(
                        "install target shard {shard} is served by node-{}",
                        info.primary.0
                    )));
                }
                self.engine.import_object(&snapshot)?;
                // Propagate the imported data to the target shard's backups
                // explicitly — the object's placement still points at the
                // source shard until the coordinator pin lands.
                let ops: Vec<(Vec<u8>, Option<Vec<u8>>)> = snapshot
                    .entries
                    .iter()
                    .map(|(suffix, value)| {
                        (keys::join_key(&snapshot.id, suffix), Some(value.clone()))
                    })
                    .collect();
                let req = StoreRequest::Replicate {
                    shard,
                    epoch: info.epoch,
                    object: snapshot.id.0.clone(),
                    ops,
                    // Migration install, not a lease-bearing commit: the
                    // target shard's primary grants on its own traffic.
                    lease_nanos: 0,
                };
                for backup in &info.backups {
                    match self.call_peer(ctx, *backup, &req)? {
                        StoreResponse::Ok => {}
                        other => {
                            return Err(InvokeError::Storage(format!(
                                "install replication to {backup}: bad reply {other:?}"
                            )))
                        }
                    }
                }
                Ok(StoreResponse::Ok)
            }
            StoreRequest::MigrateInstall { snapshot, shard } => {
                let state = self.placement.snapshot();
                let info = state
                    .shard(shard)
                    .cloned()
                    .ok_or_else(|| InvokeError::WrongNode(format!("no shard {shard}")))?;
                // A node holds ONE copy of an object. When this node is a
                // member of the shard the object is *currently routed to*
                // (source/target shards overlap, or a failover made the
                // source primary the target's), its copy IS the live one —
                // kept fresh by the serving shard's synchronous
                // replication. Replacing it wholesale with a snapshot that
                // was exported earlier would roll back acked writes, so
                // the install is a no-op here; the fenced final snapshot
                // such a node would receive equals what it already holds.
                let holds_live = state
                    .shard_for_object(&snapshot.id.0)
                    .and_then(|s| state.shard(s))
                    .is_some_and(|serving| serving.contains(self.id));
                if info.primary == self.id {
                    if !holds_live {
                        self.engine.install_object_replacing(&snapshot)?;
                    }
                    // Fan the replacing install out to the shard's backups
                    // with the same wholesale semantics: op-replication
                    // could leave keys of a superseded warm copy behind.
                    // Each backup applies its own holds-live check against
                    // its own placement view.
                    let req = StoreRequest::MigrateInstall { snapshot, shard };
                    for backup in &info.backups {
                        match self.call_peer(ctx, *backup, &req)? {
                            StoreResponse::Ok => {}
                            other => {
                                return Err(InvokeError::Storage(format!(
                                    "migrate install replication to {backup}: bad reply {other:?}"
                                )))
                            }
                        }
                    }
                } else if info.contains(self.id) {
                    if !holds_live {
                        self.engine.install_object_replacing(&snapshot)?;
                    }
                } else {
                    return Err(InvokeError::WrongNode(format!(
                        "node-{} holds no replica of shard {shard}",
                        self.id.0
                    )));
                }
                Ok(StoreResponse::Ok)
            }
            StoreRequest::RawGet { key } => {
                let v = self.engine.db().get(&key)?;
                Ok(StoreResponse::MaybeBytes(v))
            }
            StoreRequest::RawPut { key, value } => {
                self.engine.db().put(key.clone(), value.clone())?;
                self.replicate_raw(ctx, vec![(key, Some(value))])?;
                Ok(StoreResponse::Ok)
            }
            StoreRequest::RawDelete { key } => {
                self.engine.db().delete(key.clone())?;
                self.replicate_raw(ctx, vec![(key, None)])?;
                Ok(StoreResponse::Ok)
            }
            StoreRequest::RawPush { object, field, value } => {
                let oid = ObjectId::new(object);
                let ckey = keys::counter_key(&oid, &field);
                let len = keys::decode_counter(self.engine.db().get(&ckey)?.as_deref());
                let ekey = keys::entry_key(&oid, &field, len);
                let mut batch = lambda_kv::WriteBatch::new();
                batch.put(ekey.clone(), value.clone());
                batch.put(ckey.clone(), keys::encode_counter(len + 1));
                self.engine.db().write(batch)?;
                self.replicate_raw(
                    ctx,
                    vec![(ekey, Some(value)), (ckey, Some(keys::encode_counter(len + 1)))],
                )?;
                Ok(StoreResponse::Ok)
            }
            StoreRequest::RawScan { object, field, limit, newest_first } => {
                let oid = ObjectId::new(object);
                let ckey = keys::counter_key(&oid, &field);
                let len = keys::decode_counter(self.engine.db().get(&ckey)?.as_deref());
                let take = limit.min(len);
                let mut rows = Vec::with_capacity(take as usize);
                let indices: Vec<u64> = if newest_first {
                    ((len - take)..len).rev().collect()
                } else {
                    (0..take).collect()
                };
                for i in indices {
                    if let Some(v) = self.engine.db().get(&keys::entry_key(&oid, &field, i))? {
                        rows.push(v);
                    }
                }
                Ok(StoreResponse::Rows(rows))
            }
            StoreRequest::RawCount { object, field } => {
                let oid = ObjectId::new(object);
                let ckey = keys::counter_key(&oid, &field);
                let len = keys::decode_counter(self.engine.db().get(&ckey)?.as_deref());
                Ok(StoreResponse::Count(len))
            }
            StoreRequest::ListObjects => {
                let ids = self.engine.list_objects().into_iter().map(|o| o.0).collect();
                Ok(StoreResponse::Objects(ids))
            }
            StoreRequest::Transact { calls } => {
                // Every object must be primary-local: transactions do not
                // span shards (cross-shard would need 2PC, left open like
                // in the paper).
                for call in &calls {
                    self.check_role(&call.object, false)?;
                }
                let results = self.engine.invoke_transaction(&calls)?;
                Ok(StoreResponse::Values(results))
            }
            StoreRequest::Stats => Ok(StoreResponse::NodeStats(self.stats_wire())),
            StoreRequest::FetchShardChunk { shard, epoch, cursor, max_bytes } => {
                let local_epoch = self.placement.epoch_of(shard).unwrap_or(0);
                if epoch < local_epoch {
                    return Err(InvokeError::WrongNode(format!(
                        "stale epoch {epoch} < {local_epoch} for shard {shard}"
                    )));
                }
                let state = self.placement.snapshot();
                if let Some(info) = state.shard(shard) {
                    if info.primary != self.id {
                        return Err(InvokeError::WrongNode(format!(
                            "shard {shard} export must run at primary node-{}",
                            info.primary.0
                        )));
                    }
                }
                let max_bytes =
                    if max_bytes == 0 { self.sync_chunk_bytes as u64 } else { max_bytes };
                let mut ids: Vec<ObjectId> = self
                    .engine
                    .list_objects()
                    .into_iter()
                    .filter(|o| state.shard_for_object(&o.0) == Some(shard))
                    .filter(|o| cursor.as_ref().is_none_or(|c| o.0 > *c))
                    .collect();
                ids.sort_by(|a, b| a.0.cmp(&b.0));
                let mut objects = Vec::new();
                let mut bytes = 0u64;
                let mut next_cursor = None;
                for oid in ids {
                    if !objects.is_empty() && bytes >= max_bytes {
                        let last: &lambda_objects::migration::ObjectSnapshot =
                            objects.last().expect("non-empty");
                        next_cursor = Some(last.id.0.clone());
                        break;
                    }
                    match self.engine.export_object(&oid) {
                        Ok(snap) => {
                            bytes += snap.payload_bytes() as u64;
                            objects.push(snap);
                        }
                        // Deleted while we scanned: skip it.
                        Err(InvokeError::UnknownObject(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
                self.repair_chunks_sent.incr();
                self.repair_bytes.add(bytes);
                Ok(StoreResponse::ShardChunk { objects, next_cursor })
            }
            StoreRequest::InstallShardChunk { shard, epoch, items } => {
                let local_epoch = self.placement.epoch_of(shard).unwrap_or(0);
                if epoch < local_epoch {
                    return Err(InvokeError::WrongNode(format!(
                        "stale epoch {epoch} < {local_epoch} for shard {shard}"
                    )));
                }
                // A transfer onto a disk that damaged data mid-stream must
                // not be confirmed: if the scrubber quarantined anything
                // since this session's `Begin`, installed state may already
                // have holes. Failing the chunk fails the session; repair
                // restarts it against the cleaned store. (An empty `items`
                // chunk is the sender's final health probe before it
                // proposes the confirmation.)
                {
                    let floors = self.sync_damage_floor.lock();
                    if let Some(&floor) = floors.get(&shard) {
                        let now = self.engine.db().stats().corruptions_detected;
                        if now > floor {
                            return Err(InvokeError::Storage(format!(
                                "shard {shard} transfer tainted: {} corruption(s) \
                                 detected since stream start",
                                now - floor
                            )));
                        }
                    }
                }
                for item in items {
                    match item {
                        SyncItem::Begin => {
                            // Wipe stale residue of the shard before the
                            // fresh snapshot stream (a crash-restart rejoin
                            // may hold superseded objects).
                            let state = self.placement.snapshot();
                            for oid in self.engine.list_objects() {
                                if state.shard_for_object(&oid.0) == Some(shard) {
                                    self.engine.purge_object(&oid)?;
                                }
                            }
                            // The purge-and-restream is the repair a
                            // corruption report asks for: whatever rot the
                            // quarantine took out of this shard is about to
                            // be replaced with clean state, so standing
                            // suspicion is satisfied here — not on placement
                            // inference, which can miss the eviction window
                            // and re-report a freshly healed replica.
                            self.suspect_shards.lock().remove(&shard);
                            // Baseline for the tainted-transfer check above:
                            // any detection past this point dirties the
                            // session.
                            self.sync_damage_floor
                                .lock()
                                .insert(shard, self.engine.db().stats().corruptions_detected);
                        }
                        SyncItem::Object(snap) => self.engine.install_object_replacing(&snap)?,
                        SyncItem::Forward { object, ops } => {
                            let oid = ObjectId::new(object);
                            self.engine.apply_replicated(&oid, &ops)?;
                        }
                    }
                }
                self.repair_chunks_applied.incr();
                Ok(StoreResponse::Ok)
            }
        }
    }

    /// The node's wire stats, served straight from the shared registry
    /// (engine counters included — same cells `EngineStats` reads).
    fn stats_wire(&self) -> NodeStatsWire {
        let es = self.engine.stats();
        let qs = self.rpc().queue_stats();
        // Mirror the endpoint's overload counters into the registry's
        // gauges so stats scrapes and wire stats read the same numbers.
        self.q_depth.set(qs.depth as i64);
        self.q_inflight.set(qs.inflight as i64);
        self.q_shed.set(qs.shed as i64);
        NodeStatsWire {
            requests: self.requests.get(),
            invocations: es.invocations,
            cache_hits: es.cache_hits,
            replications_applied: self.replications.get(),
            duplicates_suppressed: es.duplicates_suppressed,
            busy_nanos: self.busy_nanos.get(),
            uptime_nanos: self.registry.uptime_nanos(),
            run_queue_depth: qs.depth,
            inflight: qs.inflight,
            shed: qs.shed,
            follower_reads: self.follower_reads.get(),
            lease_rejections: self.lease_rejections.get(),
            invalidations_published: self.invalidations_published.get(),
            corruption_reports: self.corruption_reports.get(),
            promotion_resyncs: self.promotion_resyncs.get(),
        }
    }

    /// Verify this node may serve the request for `oid`: the primary for
    /// mutating work, any *leased* replica for read-only work (§4.2 +
    /// DESIGN.md §11). With no shard map installed (single-node mode)
    /// everything is served locally, and with no coordinator configured
    /// leases are not enforced (any in-set replica serves reads).
    ///
    /// Syncing recruits are never readable: they are not in the replica
    /// set (`contains` excludes them) and hold no lease, so they fall
    /// through to `WrongNode` like any stranger.
    fn check_role(&self, oid: &ObjectId, read_only: bool) -> Result<(), InvokeError> {
        let Some((shard, info)) = self.placement.locate(oid) else {
            return Ok(());
        };
        if info.lost {
            return Err(InvokeError::ShardUnavailable(format!(
                "shard {shard} for object {oid} lost every replica"
            )));
        }
        if read_only {
            if info.primary == self.id {
                // The primary's "lease" is its own liveness attestation:
                // while its coordinator contact is fresher than one lease
                // the failure detector cannot have finished electing a
                // successor, so local reads are still linearizable.
                if !self.lease_enforce || self.primary_read_authority_ok() {
                    return Ok(());
                }
                self.lease_rejections.incr();
                return Err(InvokeError::LeaseExpired(format!(
                    "primary node-{} lost coordinator contact; cannot attest leadership of shard {shard}",
                    self.id.0
                )));
            }
            if info.backups.contains(&self.id) {
                if !self.lease_enforce {
                    return Ok(());
                }
                let held = self.leases_held.lock().get(&shard).copied();
                if let Some((epoch, expiry)) = held {
                    if epoch == info.epoch && Instant::now() < expiry {
                        self.follower_reads.incr();
                        return Ok(());
                    }
                }
                self.lease_rejections.incr();
                return Err(InvokeError::LeaseExpired(format!(
                    "node-{} holds no current read lease for shard {shard} (epoch {})",
                    self.id.0, info.epoch
                )));
            }
        } else if info.primary == self.id {
            // Migration handoff fence: once the coordinator's handoff
            // record is visible here, new mutations are refused with a
            // retryable `ObjectMoved` so the final snapshot the driver
            // ships is the last word. Reads keep serving from the source
            // until the commit lands (the source copy stays authoritative).
            if let Some(m) = self.placement.migration_of(oid.as_bytes()) {
                if m.phase == MigrationPhase::Handoff && m.from == shard {
                    self.migration_fenced.incr();
                    return Err(InvokeError::ObjectMoved(format!(
                        "object {oid} is handing off from shard {} to shard {}",
                        m.from, m.to
                    )));
                }
            }
            return Ok(());
        }
        Err(InvokeError::WrongNode(format!(
            "object {oid} is served by primary node-{} (epoch {})",
            info.primary.0, info.epoch
        )))
    }

    /// Synchronous replication for the raw (baseline) API. The baseline
    /// "uses our prototype as its storage layer" (§5): raw writes get the
    /// same primary-backup durability as engine commits. (What the
    /// baseline lacks is invocation-level consistency — atomicity,
    /// isolation, per-object scheduling — not storage replication.)
    fn replicate_raw(
        &self,
        ctx: &InvocationContext,
        ops: Vec<(Vec<u8>, Option<Vec<u8>>)>,
    ) -> Result<(), InvokeError> {
        // Raw writes land outside the engine's commit hook but can still
        // overwrite keys a cached read recorded: publish them too.
        self.publish_invalidations(ops.iter().map(|(k, _)| k));
        if !self.replicate.load(Ordering::Relaxed) {
            return Ok(());
        }
        let Some((key, _)) = ops.first() else {
            return Ok(());
        };
        let Some((oid, _)) = keys::split_key(key) else {
            return Ok(());
        };
        loop {
            let Some((shard, info)) = self.placement.locate(&oid) else {
                return Ok(());
            };
            if info.primary != self.id {
                return Ok(());
            }
            // Hold, don't fail — see `on_commit`: the raw put is already
            // durable locally, so the fence delays its ack until departed
            // read leases drain, then replicates against fresh placement.
            if let Some(wait) = self.fence_remaining(shard) {
                self.lease_fenced_commits.incr();
                std::thread::sleep(wait);
                continue;
            }
            self.record_recent(shard, &oid.0, &ops);
            self.replicate_to_backups(ctx, shard, info.epoch, &oid, &ops, &info.backups)
                .map_err(InvokeError::Storage)?;
            return self
                .forward_to_syncing(shard, info.epoch, &info.syncing, &oid, &ops)
                .map_err(InvokeError::Storage);
        }
    }
}

impl NodeInner {
    /// Ship `ops` to every backup of `shard` **in parallel** and wait for
    /// all acks — the paper's "at most one network round-trip within the
    /// responsible replica set" (§4.2.1).
    ///
    /// With replication batching on (the default) the write set joins the
    /// shard's replication window: concurrent commits against the same
    /// shard are coalesced by a window leader into one `ReplicateBatch`
    /// fan-out, and this call returns only once that batch is acked by
    /// every backup. The commit is not reported successful before then.
    fn replicate_to_backups(
        &self,
        ctx: &InvocationContext,
        shard: ShardId,
        epoch: Epoch,
        object: &ObjectId,
        ops: &[(Vec<u8>, Option<Vec<u8>>)],
        backups: &[NodeId],
    ) -> Result<(), String> {
        if backups.is_empty() {
            return Ok(());
        }
        if !self.repl_batching.load(Ordering::Relaxed) {
            // Unbatched path: one RPC round per committed write set, retried
            // until every still-configured backup has applied it.
            let entries = vec![(object.0.clone(), ops.to_vec())];
            return self.replicate_until_acked(
                ctx,
                shard,
                epoch,
                &entries,
                backups.to_vec(),
                false,
            );
        }

        // Join the shard's replication window.
        let window = {
            let mut windows = self.repl_windows.lock();
            Arc::clone(windows.entry(shard).or_default())
        };
        let waiter =
            Arc::new(ReplWaiter::new(object.0.clone(), ops.to_vec(), epoch, backups.to_vec()));
        let is_leader = {
            let mut queue = window.queue.lock();
            queue.push_back(Arc::clone(&waiter));
            queue.len() == 1
        };
        if !is_leader {
            // Follower: park until a leader ships our write set, or
            // promotes us to lead the next window.
            let mut st = waiter.state.lock();
            while !st.done && !st.leader {
                waiter.cv.wait(&mut st);
            }
            if st.done {
                return st.result.take().expect("done waiter has a result");
            }
        }
        self.lead_replication(ctx, shard, &window, &waiter)
    }

    /// Lead one batched replication round. `own` must be the front of the
    /// window's queue. The leader's context bounds the fan-out timeout and
    /// travels in the batch envelope (followers coalesced into the round
    /// inherit the leader's budget for this one round-trip).
    fn lead_replication(
        &self,
        ctx: &InvocationContext,
        shard: ShardId,
        window: &ShardWindow,
        own: &Arc<ReplWaiter>,
    ) -> Result<(), String> {
        let (epoch, backups) = {
            let st = own.state.lock();
            (st.epoch, st.backups.clone())
        };
        // Coalesce the longest queue prefix that shares our epoch and
        // backup set; a write set enqueued under a newer configuration
        // leads its own round later, keeping the fencing check exact.
        let group: Vec<Arc<ReplWaiter>> = {
            let queue = window.queue.lock();
            let mut group = Vec::new();
            for w in queue.iter() {
                let st = w.state.lock();
                if st.epoch != epoch || st.backups != backups {
                    break;
                }
                group.push(Arc::clone(w));
            }
            group
        };
        debug_assert!(!group.is_empty() && Arc::ptr_eq(&group[0], own));

        let entries: Vec<(Vec<u8>, WriteSetOps)> = group
            .iter()
            .map(|w| w.state.lock().entry.take().expect("queued waiter has an entry"))
            .collect();

        let outcome = self.replicate_until_acked(ctx, shard, epoch, &entries, backups, true);

        // Pop the group, post every waiter its result, and promote the
        // next queued write set (if any) to lead the following round.
        let mut queue = window.queue.lock();
        for w in &group {
            let popped = queue.pop_front().expect("group members stay queued until finished");
            debug_assert!(Arc::ptr_eq(&popped, w));
            let mut st = popped.state.lock();
            st.done = true;
            st.result = Some(outcome.clone());
            drop(st);
            popped.cv.notify_one();
        }
        if let Some(next) = queue.front() {
            next.state.lock().leader = true;
            next.cv.notify_one();
        }
        drop(queue);
        outcome
    }

    /// Fan `entries` out to `backups` and drive the round to a *definite*
    /// outcome: every backup still in the shard's configuration has applied
    /// the write sets, or the configuration has moved on (shard lost, or
    /// this node deposed — then the commit fails and the client re-routes).
    ///
    /// A transient fan-out failure — dropped frame, lost ack, slow peer —
    /// is retried against re-read placement rather than surfaced. The write
    /// is already durable locally and its dedup record answers any client
    /// redelivery, so "commit failed" must never mean "some backup silently
    /// missed it": that backup would keep serving leased follower reads of
    /// the pre-write value after the dedup ack. Applies are idempotent
    /// (pure key/value puts), so re-sending to a backup whose ack was lost
    /// is harmless, and a backup that already acked is never re-targeted.
    ///
    /// Retry rounds deliberately run on the node's full RPC timeout, not
    /// the invocation's remaining budget: once locally durable, finishing
    /// replication is the system's obligation, and a budget squeezed to
    /// zero would turn the loop into a hot spin of instant timeouts.
    fn replicate_until_acked(
        &self,
        ctx: &InvocationContext,
        shard: ShardId,
        mut epoch: Epoch,
        entries: &[(Vec<u8>, WriteSetOps)],
        mut backups: Vec<NodeId>,
        batched: bool,
    ) -> Result<(), String> {
        let down = ctx.for_downstream();
        let mut attempt = 0u32;
        loop {
            if backups.is_empty() {
                return Ok(());
            }
            let lease_nanos = self.grant_lease_nanos(shard, &backups);
            let req = if batched {
                StoreRequest::ReplicateBatch {
                    shard,
                    epoch,
                    entries: entries.to_vec(),
                    lease_nanos,
                }
            } else {
                let (object, ops) = &entries[0];
                StoreRequest::Replicate {
                    shard,
                    epoch,
                    object: object.clone(),
                    ops: ops.clone(),
                    lease_nanos,
                }
            };
            let body = Bytes::from(proto::encode_request(&down, &req).expect("requests serialize"));
            let timeout =
                if attempt == 0 { down.rpc_timeout(self.rpc_timeout) } else { self.rpc_timeout };
            let replies = self.rpc().call_many(&backups, body, timeout);
            if batched {
                self.repl_rounds.incr();
                self.repl_entries.add(entries.len() as u64);
            }
            let failed = failed_acks(&backups, &replies);
            if failed.is_empty() {
                return Ok(());
            }
            if self.shutdown.load(Ordering::Acquire) {
                return Err("node shutting down".into());
            }
            self.repl_retries.incr();
            attempt += 1;
            std::thread::sleep(REPL_RETRY_PAUSE);
            // Re-read placement: an evicted laggard leaves the required
            // set (it re-syncs on rejoin), an epoch bump re-stamps the
            // retry so still-configured backups accept it.
            let Some(info) = self.placement.shard_info(shard) else {
                return Ok(());
            };
            if info.lost {
                return Err(format!(
                    "fenced: shard {shard} lost every replica (epoch {})",
                    info.epoch
                ));
            }
            if info.primary != self.id {
                return Err(format!(
                    "fenced: node-{} is no longer primary for shard {shard} (epoch {})",
                    self.id.0, info.epoch
                ));
            }
            epoch = info.epoch;
            backups = failed.into_iter().filter(|b| info.backups.contains(b)).collect();
        }
    }

    /// The owning `Arc` (for completions that outlive this call frame).
    fn arc(&self) -> Arc<NodeInner> {
        self.self_ref.get().and_then(Weak::upgrade).expect("self_ref installed during start")
    }

    /// Non-blocking counterpart of [`replicate_to_backups`]: enqueue the
    /// write set on the shard's deferred window and return immediately.
    /// `done` fires from the ack thread of the fan-out that ships it.
    #[allow(clippy::too_many_arguments)]
    fn replicate_deferred(
        &self,
        ctx: &InvocationContext,
        shard: ShardId,
        epoch: Epoch,
        object: &ObjectId,
        ops: WriteSetOps,
        backups: Vec<NodeId>,
        done: CommitCallback,
    ) {
        if !self.repl_batching.load(Ordering::Relaxed) {
            // Unbatched ablation: one fan-out per committed write set,
            // still without parking — the acks complete the commit.
            let down = ctx.for_downstream();
            let req = StoreRequest::Replicate {
                shard,
                epoch,
                object: object.0.clone(),
                ops,
                lease_nanos: self.grant_lease_nanos(shard, &backups),
            };
            let body = Bytes::from(proto::encode_request(&down, &req).expect("requests serialize"));
            let expect = backups.clone();
            let this = self.arc();
            let body2 = body.clone();
            self.rpc().call_many_deferred(
                &backups,
                body,
                down.rpc_timeout(self.rpc_timeout),
                Box::new(move |replies| {
                    this.settle_deferred_acks(
                        shard,
                        body2,
                        down,
                        expect,
                        replies,
                        vec![done],
                        None,
                    );
                }),
            );
            return;
        }

        let window = {
            let mut windows = self.deferred_windows.lock();
            Arc::clone(windows.entry(shard).or_default())
        };
        let entry = DeferredRepl { object: object.0.clone(), ops, epoch, backups, ctx: *ctx, done };
        let lead = {
            let mut st = window.state.lock();
            st.queue.push_back(entry);
            !std::mem::replace(&mut st.in_flight, true)
        };
        if lead {
            self.ship_deferred_round(shard, window);
        }
    }

    /// Ship one round from the shard's deferred window: pop the longest
    /// queue prefix agreeing on `(epoch, backups)`, fan the batch out, and
    /// complete every member from the acks. The completion ships the next
    /// round (if any), so the window drains without a parked leader.
    fn ship_deferred_round(&self, shard: ShardId, window: Arc<DeferredWindow>) {
        let round: Vec<DeferredRepl> = {
            let mut st = window.state.lock();
            debug_assert!(st.in_flight);
            let mut round: Vec<DeferredRepl> = Vec::new();
            while let Some(front) = st.queue.front() {
                if let Some(first) = round.first() {
                    if front.epoch != first.epoch || front.backups != first.backups {
                        break;
                    }
                }
                round.push(st.queue.pop_front().expect("front exists"));
            }
            if round.is_empty() {
                st.in_flight = false;
                return;
            }
            round
        };
        let epoch = round[0].epoch;
        let backups = round[0].backups.clone();
        let down = round[0].ctx.for_downstream();
        let mut entries = Vec::with_capacity(round.len());
        let mut dones = Vec::with_capacity(round.len());
        for entry in round {
            entries.push((entry.object, entry.ops));
            dones.push(entry.done);
        }
        let count = entries.len() as u64;
        // Serialize once; the refcounted body is shared by every send.
        let lease_nanos = self.grant_lease_nanos(shard, &backups);
        let req = StoreRequest::ReplicateBatch { shard, epoch, entries, lease_nanos };
        let body = Bytes::from(proto::encode_request(&down, &req).expect("requests serialize"));
        let this = self.arc();
        let expect = backups.clone();
        let body2 = body.clone();
        self.rpc().call_many_deferred(
            &backups,
            body,
            down.rpc_timeout(self.rpc_timeout),
            Box::new(move |replies| {
                this.repl_rounds.incr();
                this.repl_entries.add(count);
                this.settle_deferred_acks(shard, body2, down, expect, replies, dones, Some(window));
            }),
        );
    }

    /// Deliver `outcome` to every commit waiting on a deferred round, then
    /// ship the next round of the window (when one is attached).
    fn finish_deferred(
        &self,
        shard: ShardId,
        outcome: &Result<(), String>,
        dones: Vec<CommitCallback>,
        window: Option<Arc<DeferredWindow>>,
    ) {
        for done in dones {
            done(outcome.clone());
        }
        if let Some(window) = window {
            self.ship_deferred_round(shard, window);
        }
    }

    /// Non-blocking counterpart of the retry loop in
    /// [`replicate_until_acked`]: inspect one deferred fan-out's replies
    /// and either complete the commits or schedule a retry round for the
    /// backups that missed it. The same definite-outcome rule applies — a
    /// commit only completes once every still-configured backup applied
    /// its write set, or the configuration itself moved on.
    #[allow(clippy::too_many_arguments)]
    fn settle_deferred_acks(
        &self,
        shard: ShardId,
        body: Bytes,
        down: InvocationContext,
        sent_to: Vec<NodeId>,
        replies: Vec<Result<Vec<u8>, RpcError>>,
        dones: Vec<CommitCallback>,
        window: Option<Arc<DeferredWindow>>,
    ) {
        let failed = failed_acks(&sent_to, &replies);
        if failed.is_empty() {
            self.finish_deferred(shard, &Ok(()), dones, window);
            return;
        }
        if self.shutdown.load(Ordering::Acquire) {
            self.finish_deferred(shard, &Err("node shutting down".into()), dones, window);
            return;
        }
        self.repl_retries.incr();
        let this = self.arc();
        self.rpc().schedule(
            REPL_RETRY_PAUSE,
            Box::new(move || {
                this.retry_deferred_round(shard, body, down, failed, dones, window);
            }),
        );
    }

    /// One retry fan-out for a deferred round that some backups missed,
    /// re-targeted at the intersection of the failed set with the current
    /// configuration and re-stamped with the current epoch and a fresh
    /// lease grant. Runs off the RPC timer wheel, so no thread parks.
    #[allow(clippy::too_many_arguments)]
    fn retry_deferred_round(
        &self,
        shard: ShardId,
        body: Bytes,
        down: InvocationContext,
        failed: Vec<NodeId>,
        dones: Vec<CommitCallback>,
        window: Option<Arc<DeferredWindow>>,
    ) {
        let Some(info) = self.placement.shard_info(shard) else {
            self.finish_deferred(shard, &Ok(()), dones, window);
            return;
        };
        if info.lost {
            let err = format!("fenced: shard {shard} lost every replica (epoch {})", info.epoch);
            self.finish_deferred(shard, &Err(err), dones, window);
            return;
        }
        if info.primary != self.id {
            let err = format!(
                "fenced: node-{} is no longer primary for shard {shard} (epoch {})",
                self.id.0, info.epoch
            );
            self.finish_deferred(shard, &Err(err), dones, window);
            return;
        }
        let retry: Vec<NodeId> = failed.into_iter().filter(|b| info.backups.contains(b)).collect();
        if retry.is_empty() {
            // Every laggard left the configuration; the survivors' acks
            // carry the commit (the laggards re-sync when they rejoin).
            self.finish_deferred(shard, &Ok(()), dones, window);
            return;
        }
        // Rebuild the frame rather than re-sending it verbatim: the epoch
        // may have moved (backups fence stale-epoch frames) and the lease
        // grant must be re-issued *and re-recorded* at this send time so
        // departure fences keep covering what the backups actually hold.
        let epoch = info.epoch;
        let lease_nanos = self.grant_lease_nanos(shard, &retry);
        let req = match proto::decode_request(&body) {
            Ok((_, StoreRequest::ReplicateBatch { entries, .. })) => {
                StoreRequest::ReplicateBatch { shard, epoch, entries, lease_nanos }
            }
            Ok((_, StoreRequest::Replicate { object, ops, .. })) => {
                StoreRequest::Replicate { shard, epoch, object, ops, lease_nanos }
            }
            _ => unreachable!("deferred rounds carry replicate frames"),
        };
        let body = Bytes::from(proto::encode_request(&down, &req).expect("requests serialize"));
        let body2 = body.clone();
        let expect = retry.clone();
        let this = self.arc();
        self.rpc().call_many_deferred(
            &retry,
            body,
            self.rpc_timeout,
            Box::new(move |replies| {
                this.settle_deferred_acks(shard, body2, down, expect, replies, dones, window);
            }),
        );
    }

    /// Forward one committed write set to every syncing backup of `shard`.
    /// Called after synchronous replication succeeds, still under the
    /// object's exclusive lock, so the per-object order of forwards in
    /// each session's stream equals commit order.
    ///
    /// A syncing peer in the placement with *no* open session (the scanner
    /// hasn't caught up, or the session just closed around `ConfirmBackup`)
    /// fails the commit: acking it without a session could strand a write
    /// the peer never receives if the confirmation lands later. The client
    /// retries against fresh placement.
    fn forward_to_syncing(
        &self,
        shard: ShardId,
        epoch: Epoch,
        syncing: &[NodeId],
        object: &ObjectId,
        ops: &[(Vec<u8>, Option<Vec<u8>>)],
    ) -> Result<(), String> {
        if syncing.is_empty() {
            return Ok(());
        }
        let sessions = self.sync.sessions_for(shard);
        for &peer in syncing {
            let Some(session) = sessions.iter().find(|s| s.peer == peer && s.epoch == epoch) else {
                // A session strictly older than the commit's epoch can
                // never confirm this recruit (`ConfirmBackup` is
                // epoch-fenced), so there is nothing owed to it: the
                // recruit only joins the replica set through a future
                // session at the current epoch, whose purge + re-scan
                // covers this already-durable write. Skipping it also
                // breaks a deadlock — the stale session's scan may be
                // blocked on this very object's lock, which the committing
                // thread holds while it retries the forward.
                if sessions.iter().any(|s| s.peer == peer && s.epoch < epoch) {
                    continue;
                }
                // No session at all. If the placement cache still agrees
                // the peer is syncing at this epoch, no session for this
                // epoch has confirmed (a confirmation moves the epoch in
                // our own cache before its session is removed), so any
                // future session's Begin + re-scan covers this
                // already-durable write — bump the forward-gap token to
                // soft-fail sessions already past their snapshot of it,
                // and ack without stalling on session registration. If
                // the cache moved on, retry: the fresh placement routes
                // the write through backup replication instead.
                let now = self.placement.snapshot();
                let current = now.shard(shard);
                if current.is_some_and(|i| i.epoch == epoch && i.is_syncing(peer)) {
                    *self.forward_gaps.lock().entry(shard).or_insert(0) += 1;
                    continue;
                }
                return Err(format!(
                    "placement moved while forwarding to syncing backup {peer} \
                     at epoch {epoch}; retry"
                ));
            };
            session.offer(SyncItem::Forward { object: object.0.clone(), ops: ops.to_vec() })?;
            self.repair_sync_enqueued.incr();
        }
        Ok(())
    }

    /// Ship everything queued in `session` to its peer, in order. Returns
    /// `Err` after [`SYNC_SHIP_RETRIES`] consecutive failures on one chunk
    /// (the caller decides whether that is a soft or hard session failure).
    fn ship_pending(&self, session: &SyncSession) -> Result<(), String> {
        let ctx = InvocationContext::background();
        loop {
            let (items, last_seq) = session.take_batch(SYNC_BATCH_ITEMS);
            if items.is_empty() {
                return Ok(());
            }
            let count = items.len() as u64;
            let bytes: u64 = items.iter().map(sync_item_bytes).sum();
            let req = StoreRequest::InstallShardChunk {
                shard: session.shard,
                epoch: session.epoch,
                items,
            };
            let mut attempts = 0;
            loop {
                if self.shutdown.load(Ordering::Acquire) {
                    return Err("node shutting down".into());
                }
                match self.call_peer(&ctx, session.peer, &req) {
                    Ok(StoreResponse::Ok) => break,
                    Ok(other) => return Err(format!("bad install reply {other:?}")),
                    Err(e) => {
                        attempts += 1;
                        if attempts >= SYNC_SHIP_RETRIES {
                            return Err(format!("chunk ship to {} failed: {e}", session.peer));
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            }
            session.mark_shipped(last_seq);
            self.repair_chunks_sent.incr();
            self.repair_bytes.add(bytes);
            self.repair_sync_shipped.add(count);
        }
    }

    /// Drive one state-transfer session end to end. `Err(hard)` aborts the
    /// session; `hard` means a durability promise was broken (failure after
    /// `ConfirmBackup` was proposed) and blocked commits must fail.
    fn drive_sync(&self, coord: &CoordClient, session: &SyncSession) -> Result<(), bool> {
        let shard = session.shard;
        let peer = session.peer;
        let epoch = session.epoch;
        let soft = |_: String| false;

        // Forward-gap snapshot: commits that find no session ack after
        // bumping this token instead of stalling. Taken before `Begin`, so
        // any bump observed later means a write this stream may have
        // missed — the session must fail instead of confirming, and its
        // replacement's re-scan picks the write up.
        let gap0 = self.forward_gaps.lock().get(&shard).copied().unwrap_or(0);

        // Stream start: the peer wipes stale residue of the shard.
        session.offer(SyncItem::Begin).map_err(soft)?;
        self.repair_sync_enqueued.incr();
        self.ship_pending(session).map_err(soft)?;

        // Bulk scan. The object list is a point-in-time enumeration;
        // objects created after it forward through the session (their
        // create commit happens with the session open), and per-object
        // lock ordering keeps each object's snapshot/forward sequence in
        // commit order.
        let state = self.placement.snapshot();
        let mut ids: Vec<ObjectId> = self
            .engine
            .list_objects()
            .into_iter()
            .filter(|o| state.shard_for_object(&o.0) == Some(shard))
            .collect();
        ids.sort_by(|a, b| a.0.cmp(&b.0));
        for oid in ids {
            if self.shutdown.load(Ordering::Acquire) {
                return Err(false);
            }
            // Abort when the configuration moved on under us (another
            // failover, or the recruit was dropped).
            let now = self.placement.snapshot();
            let Some(info) = now.shard(shard).cloned() else { return Err(false) };
            if info.epoch != epoch || !info.is_syncing(peer) {
                return Err(false);
            }
            match self
                .engine
                .export_object_with(&oid, |snap| session.offer(SyncItem::Object(snap.clone())))
            {
                Ok(Ok(())) => self.repair_sync_enqueued.incr(),
                Ok(Err(e)) => return Err(soft(e)),
                // Deleted while we scanned: nothing to transfer.
                Err(InvokeError::UnknownObject(_)) => {}
                Err(e) => return Err(soft(e.to_string())),
            }
            self.ship_pending(session).map_err(soft)?;
        }

        // Drain: commits now block until their forward ships, squeezing
        // the stream dry before promotion.
        session.set_phase(SyncPhase::Draining);
        self.ship_pending(session).map_err(soft)?;
        {
            let now = self.placement.snapshot();
            let Some(info) = now.shard(shard).cloned() else { return Err(false) };
            if info.epoch != epoch || !info.is_syncing(peer) {
                return Err(false);
            }
        }

        // Forward-gap check: a commit raced session registration and acked
        // with its forward unshipped. This stream may predate that write —
        // abandon the recruit; the replacement session re-scans everything.
        if self.forward_gaps.lock().get(&shard).copied().unwrap_or(0) != gap0 {
            return Err(false);
        }

        // Final health probe: an empty chunk that the peer only acks while
        // its store has detected no corruption since this session's Begin.
        // A recruit whose scrubber quarantined installed transfer state
        // must fail here, before its confirmation can be proposed.
        {
            let ctx = InvocationContext::background();
            let probe = StoreRequest::InstallShardChunk { shard, epoch, items: Vec::new() };
            match self.call_peer(&ctx, peer, &probe) {
                Ok(StoreResponse::Ok) => {}
                Ok(_) | Err(_) => return Err(false),
            }
        }

        // Admit BEFORE proposing: once the confirmation may be chosen, a
        // ship failure must fail the waiting commit rather than ack it
        // without the (about-to-be-counted) new replica.
        session.set_phase(SyncPhase::Admitted);
        let _ = coord.propose(lambda_coordinator::CoordCmd::ConfirmBackup {
            shard,
            node: peer,
            expected_epoch: epoch,
        });

        // Keep shipping while waiting for the epoch to move past the
        // session's: either our confirmation applied (peer is a backup) or
        // a concurrent reconfiguration won the fencing race.
        let deadline = Instant::now() + Duration::from_secs(15);
        loop {
            self.ship_pending(session).map_err(|_| true)?;
            let now = self.placement.snapshot();
            let Some(info) = now.shard(shard).cloned() else { return Err(false) };
            if info.epoch > epoch {
                self.ship_pending(session).map_err(|_| true)?;
                return if info.backups.contains(&peer) { Ok(()) } else { Err(false) };
            }
            if Instant::now() > deadline || self.shutdown.load(Ordering::Acquire) {
                // Ambiguous: the confirmation may yet be chosen. Hard-fail
                // so no commit is acked into the ambiguity.
                return Err(true);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Run one registered transfer session to completion and tear it down
    /// (the scanner registered it in [`SyncManager`] before spawning us).
    fn run_sync_session(&self, coord: &CoordClient, session: Arc<SyncSession>) {
        match self.drive_sync(coord, &session) {
            Ok(()) => session.set_phase(SyncPhase::Done),
            Err(hard) => {
                session.set_phase(SyncPhase::Failed { hard });
                self.repair_sessions_failed.incr();
            }
        }
        self.sync.remove(session.shard, session.peer);
    }

    /// Count one invocation against `object` for the next heartbeat's
    /// load report.
    fn tally_invoke(&self, object: &[u8]) {
        let mut tally = self.invoke_tally.lock();
        if let Some(n) = tally.get_mut(object) {
            *n += 1;
        } else {
            tally.insert(object.to_vec(), 1);
        }
    }

    /// Drain the per-object invocation tally into a coordinator load
    /// report: total invocations since the last beat plus the hottest
    /// [`HOT_REPORT_TOP_K`] objects, and the instantaneous run-queue depth.
    fn drain_load(&self) -> NodeLoad {
        let tally: HashMap<Vec<u8>, u64> = std::mem::take(&mut *self.invoke_tally.lock());
        let invocations: u64 = tally.values().sum();
        let mut hot: Vec<(Vec<u8>, u64)> = tally.into_iter().collect();
        hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hot.truncate(HOT_REPORT_TOP_K);
        NodeLoad { queue_depth: self.rpc().queue_stats().depth, invocations, hot }
    }

    /// Drive one coordinator-owned migration as the source shard's
    /// primary: warm copy, handoff, final fenced copy, commit, retire the
    /// source copy. Every step is idempotent against the replicated phase,
    /// so a crashed driver's successor (a restarted source primary, or a
    /// promoted backup once the coordinator re-plans) resumes cleanly; a
    /// persistent target failure rolls the plan back with
    /// `AbortMigration` and the source keeps serving from its own copy.
    fn drive_migration(&self, coord: &CoordClient, object: Vec<u8>, planned: MigrationInfo) {
        if let Err(reason) = self.drive_migration_steps(coord, &object, &planned) {
            let _ = reason;
            // Identity-guarded: if this plan was already superseded by a
            // fresh one (our ship retries outlived the entry), the abort
            // must not kill the successor — mismatched fields no-op.
            let _ = coord.propose(CoordCmd::AbortMigration {
                object: object.clone(),
                from: planned.from,
                to: planned.to,
                from_primary: planned.from_primary,
                to_primary: planned.to_primary,
            });
        }
        self.migrations_driving.lock().remove(&object);
    }

    fn drive_migration_steps(
        &self,
        coord: &CoordClient,
        object: &[u8],
        planned: &MigrationInfo,
    ) -> Result<(), String> {
        let oid = ObjectId::new(object.to_vec());
        let mut warmed = false;
        let mut announced = false;
        let mut shipped_final = false;
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return Ok(());
            }
            let state = self.placement.snapshot();
            let Some(m) = state.migrations.get(object) else {
                // Chosen out of the log: committed (placement follows the
                // object to the target in the same state version) or
                // aborted (placement unchanged, source keeps serving).
                if state.shard_for_object(object) == Some(planned.to) {
                    self.retire_migrated_object(&state, &oid, planned.from, planned.to);
                    self.migrations_completed.incr();
                }
                return Ok(());
            };
            if (m.from, m.to, m.from_primary, m.to_primary)
                != (planned.from, planned.to, planned.from_primary, planned.to_primary)
            {
                // The entry we're looking at is a *successor* plan (ours
                // was aborted and re-planned while we were stuck in ship
                // retries). Our warm/handoff flags describe the old plan —
                // bail and let the successor's own driver run it.
                return Ok(());
            }
            let Some(src) = state.shard(m.from) else { return Ok(()) };
            if src.primary != self.id || src.lost {
                // Deposed mid-drive: the coordinator's liveness GC aborts
                // the entry; whoever leads next starts a fresh plan.
                return Ok(());
            }
            let Some(dst) = state.shard(m.to) else { return Ok(()) };
            match m.phase {
                MigrationPhase::Planned | MigrationPhase::Copying => {
                    if !warmed {
                        // Warm copy: get the bulk of the object durable at
                        // the target while the source still serves
                        // everything. The target install replaces
                        // wholesale, so re-running after a crash is fine.
                        let snap = match self.engine.export_object(&oid) {
                            Ok(snap) => snap,
                            Err(e) => return Err(format!("warm export of {oid}: {e}")),
                        };
                        self.ship_migrate_install(dst.primary, object, planned, snap, m.to)?;
                        warmed = true;
                    }
                    if !announced {
                        // Both proposals must land for the plan to make
                        // progress — a swallowed failure (e.g. the propose
                        // raced a coordinator replica's death) would
                        // otherwise park this driver in Copying forever,
                        // so only a confirmed choice sets the flag and a
                        // failure retries next iteration.
                        if m.phase == MigrationPhase::Planned {
                            let _ = coord
                                .propose(CoordCmd::MigrationCopying { object: object.to_vec() });
                        }
                        if coord
                            .propose(CoordCmd::MigrationHandoff { object: object.to_vec() })
                            .is_ok()
                        {
                            announced = true;
                        }
                    }
                    // Wait for our own placement to reflect the handoff:
                    // the fence must be visible locally before the final
                    // copy, or a racing commit could ack after it.
                }
                MigrationPhase::Handoff => {
                    if !announced {
                        // Resuming an interrupted handoff (driver restart):
                        // re-propose the idempotent phase change so the
                        // coordinator counts the resumption. The phase is
                        // already replicated, so a failure here is not
                        // load-bearing — don't retry, just stop claiming
                        // the resumption happened.
                        let _ =
                            coord.propose(CoordCmd::MigrationHandoff { object: object.to_vec() });
                        announced = true;
                    }
                    if !shipped_final {
                        // The fence is active in our placement: admission
                        // refuses new mutations and racing commits fail at
                        // commit time, so this snapshot — taken under the
                        // object's exclusive lock — is the final word,
                        // dedup records included.
                        let snap = match self.engine.export_object(&oid) {
                            Ok(snap) => snap,
                            Err(e) => return Err(format!("final export of {oid}: {e}")),
                        };
                        self.ship_migrate_install(dst.primary, object, planned, snap, m.to)?;
                        shipped_final = true;
                    }
                    // Idempotent: a duplicate commit against a vanished
                    // entry is a no-op at the coordinator.
                    let _ = coord.propose(CoordCmd::CommitMigration { object: object.to_vec() });
                }
            }
            std::thread::sleep(MIGRATE_POLL_PAUSE);
        }
    }

    /// Ship a snapshot to the migration target's primary, retrying through
    /// transient faults; a persistent failure aborts the migration.
    ///
    /// Each retry re-checks the replicated plan: a dead target means the
    /// retries span seconds, long enough for the coordinator's liveness GC
    /// to abort the entry and a successor plan to appear. Bailing as soon
    /// as the plan we're serving is gone keeps a stuck driver from
    /// shipping a stale snapshot at (or past) the successor.
    fn ship_migrate_install(
        &self,
        target: NodeId,
        object: &[u8],
        planned: &MigrationInfo,
        snapshot: lambda_objects::migration::ObjectSnapshot,
        shard: ShardId,
    ) -> Result<(), String> {
        let ctx = InvocationContext::background();
        let req = StoreRequest::MigrateInstall { snapshot, shard };
        let mut last = String::new();
        for attempt in 0..MIGRATE_SHIP_RETRIES {
            if self.shutdown.load(Ordering::Acquire) {
                return Err("node shutting down".into());
            }
            if attempt > 0 {
                let state = self.placement.snapshot();
                let live = state.migrations.get(object).is_some_and(|m| {
                    (m.from, m.to, m.from_primary, m.to_primary)
                        == (planned.from, planned.to, planned.from_primary, planned.to_primary)
                });
                if !live {
                    return Err("plan superseded mid-ship".into());
                }
            }
            match self.call_peer(&ctx, target, &req) {
                Ok(StoreResponse::Ok) => return Ok(()),
                Ok(other) => last = format!("bad reply {other:?}"),
                Err(e) => last = e.to_string(),
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        Err(format!("install at node-{} failed: {last}", target.0))
    }

    /// The migration committed: the object now lives at the target, so the
    /// source copy (ours and our backups') is residue. Purge locally and
    /// ship the deletions to the shard's backups best-effort — leftover
    /// keys there are harmless (placement no longer maps the object here,
    /// and any later install replaces wholesale), so failures are ignored.
    ///
    /// A node holds ONE copy of an object, not one per shard: when the
    /// source and target shards share replicas, the overlap nodes' copy
    /// *is* the target's data now, so both the local purge and the delete
    /// fan-out must skip every member of the target shard.
    fn retire_migrated_object(
        &self,
        state: &ClusterState,
        oid: &ObjectId,
        from: ShardId,
        to: ShardId,
    ) {
        let in_target = |node: NodeId| state.shard(to).is_some_and(|dst| dst.contains(node));
        let prefix = keys::object_prefix(oid);
        let ops: Vec<(Vec<u8>, Option<Vec<u8>>)> =
            self.engine.db().scan_prefix(&prefix).map(|(k, _)| (k, None)).collect();
        if ops.is_empty() {
            return;
        }
        if !in_target(self.id) && self.engine.purge_object(oid).is_err() {
            return;
        }
        if let Some(info) = state.shard(from) {
            let ctx = InvocationContext::background();
            let req = StoreRequest::Replicate {
                shard: from,
                epoch: info.epoch,
                object: oid.0.clone(),
                ops,
                lease_nanos: 0,
            };
            for backup in info.backups.iter().filter(|b| !in_target(**b)) {
                let _ = self.call_peer(&ctx, *backup, &req);
            }
        }
    }
}

impl CommitHook for NodeInner {
    fn on_commit(
        &self,
        ctx: &InvocationContext,
        object: &ObjectId,
        ops: &[(Vec<u8>, Option<Vec<u8>>)],
    ) -> Result<(), String> {
        // The edge-cache invalidation stream fires for every local commit,
        // before any replication gating: single-node mode and the no-repl
        // ablation still publish (the write is already durably applied).
        self.publish_invalidations(ops.iter().map(|(k, _)| k));
        if !self.replicate.load(Ordering::Relaxed) {
            return Ok(());
        }
        let mut recorded = false;
        loop {
            let Some((shard, info)) = self.placement.locate(object) else {
                return Ok(()); // no shard map: single-node mode
            };
            if info.lost {
                return Err(format!(
                    "fenced: shard {shard} lost every replica (epoch {})",
                    info.epoch
                ));
            }
            if info.primary != self.id {
                return Err(format!(
                    "fenced: node-{} is no longer primary for shard {shard} (epoch {})",
                    self.id.0, info.epoch
                ));
            }
            // Migration handoff fence, checked at commit time: a mutation
            // admitted before the handoff record arrived must not ack
            // after the driver's final snapshot. Failed — not held — so
            // the commit is never acked and writes no replicated dedup
            // record; the client follows `ObjectMoved` to the target and
            // re-executes (or dedups, if this write made the snapshot).
            if let Some(m) = self.placement.migration_of(&object.0) {
                if m.phase == MigrationPhase::Handoff && m.from == shard {
                    self.migration_fenced.incr();
                    return Err(encode_error(&InvokeError::ObjectMoved(format!(
                        "commit fenced: object handing off from shard {} to shard {}",
                        m.from, m.to
                    ))));
                }
            }
            // A post-reconfiguration fence *holds* the commit rather than
            // failing it: the write is already durable locally, so an error
            // here would strand it at the primary while the client's retry
            // dedups into an ack nobody replicated. Waiting the drain out
            // (bounded by one lease duration) keeps the write in the ack
            // chain; the placement is re-read afterwards so replication
            // targets the configuration that ends the fence.
            if let Some(wait) = self.fence_remaining(shard) {
                self.lease_fenced_commits.incr();
                std::thread::sleep(wait);
                continue;
            }
            if !recorded {
                self.record_recent(shard, &object.0, ops);
                recorded = true;
            }
            self.replicate_to_backups(ctx, shard, info.epoch, object, ops, &info.backups)?;
            // The forward is held-not-failed for the same reason as the
            // fence above: the write is already durable locally, so a
            // forward error surfaced to the client turns into a dedup'd ack
            // on retry — without the forward. A recruit whose bulk scan
            // already passed this object would then confirm with a hole in
            // its state, and promoting it later loses the acked write.
            // Retrying with fresh placement resolves every case: the
            // session appears (offer lands), the recruit is re-streamed (a
            // new session re-scans everything, covering this write), or the
            // recruit left the syncing set — dropped (forward vacuous) or
            // confirmed (the re-read places it in `backups`, and the
            // definite-outcome replication above covers it).
            match self.forward_to_syncing(shard, info.epoch, &info.syncing, object, ops) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    if self.shutdown.load(Ordering::Acquire) {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }

    /// Non-blocking commit hook for the deferred invocation path: the
    /// fencing checks and the forward to syncing peers run inline on the
    /// committing thread (still under the object's exclusive lock, so
    /// per-object stream order equals commit order), then the write set
    /// joins the shard's deferred replication window and `done` fires from
    /// the ack thread. No thread parks between local commit and ack.
    fn on_commit_deferred(
        &self,
        ctx: &InvocationContext,
        object: &ObjectId,
        ops: WriteSetOps,
        done: CommitCallback,
    ) {
        // See `on_commit`: publish for every local commit, unconditionally.
        self.publish_invalidations(ops.iter().map(|(k, _)| k));
        if !self.replicate.load(Ordering::Relaxed) {
            done(Ok(()));
            return;
        }
        let Some((shard, info)) = self.placement.locate(object) else {
            done(Ok(())); // no shard map: single-node mode
            return;
        };
        if info.lost {
            done(Err(format!("fenced: shard {shard} lost every replica (epoch {})", info.epoch)));
            return;
        }
        if info.primary != self.id {
            done(Err(format!(
                "fenced: node-{} is no longer primary for shard {shard} (epoch {})",
                self.id.0, info.epoch
            )));
            return;
        }
        // Migration handoff fence — see `on_commit`. Checked inline on the
        // committing thread (still under the object's exclusive lock), so
        // it serializes against the driver's final export.
        if let Some(m) = self.placement.migration_of(&object.0) {
            if m.phase == MigrationPhase::Handoff && m.from == shard {
                self.migration_fenced.incr();
                done(Err(encode_error(&InvokeError::ObjectMoved(format!(
                    "commit fenced: object handing off from shard {} to shard {}",
                    m.from, m.to
                )))));
                return;
            }
        }
        // Hold, don't fail — see `on_commit`. The deferred path re-enters
        // through the rpc timer wheel once the fence drains (no thread
        // parks); the object guard rides in `done`, so per-object commit
        // order is preserved across the hold. Re-entry re-publishes the
        // invalidation frame, which edge caches absorb idempotently.
        if let Some(wait) = self.fence_remaining(shard) {
            self.lease_fenced_commits.incr();
            let this = self.arc();
            let ctx = *ctx;
            let object = object.clone();
            self.rpc().schedule(
                wait,
                Box::new(move || this.on_commit_deferred(&ctx, &object, ops, done)),
            );
            return;
        }
        // The forward precedes the backup acks here (the blocking path
        // forwards after them). The write is already durable locally, so
        // forwarding a write whose replication later fails only makes the
        // syncing peer converge toward local state. A forward *error* is
        // held-not-failed, exactly like the lease fence above: surfaced to
        // the client it would dedup into an ack on retry — without the
        // forward — and a recruit whose bulk scan already passed this
        // object could confirm with a hole in its state. Re-entering with
        // fresh placement resolves every case (session appears, recruit
        // re-streamed from a new scan, recruit dropped, or recruit
        // confirmed and covered by backup replication below).
        if self.forward_to_syncing(shard, info.epoch, &info.syncing, object, &ops).is_err() {
            if self.shutdown.load(Ordering::Acquire) {
                done(Err("node shutting down".into()));
                return;
            }
            let this = self.arc();
            let ctx = *ctx;
            let object = object.clone();
            self.rpc().schedule(
                Duration::from_millis(5),
                Box::new(move || this.on_commit_deferred(&ctx, &object, ops, done)),
            );
            return;
        }
        self.record_recent(shard, &object.0, &ops);
        if info.backups.is_empty() {
            done(Ok(()));
            return;
        }
        self.replicate_deferred(ctx, shard, info.epoch, object, ops, info.backups.clone(), done);
    }
}

impl InvokeRouter for NodeInner {
    fn route(
        &self,
        ctx: &InvocationContext,
        _source: &ObjectId,
        target: &ObjectId,
        method: &str,
        args: Vec<VmValue>,
        depth: usize,
    ) -> Result<VmValue, InvokeError> {
        match self.placement.locate(target) {
            Some((_, info)) if info.primary != self.id => {
                // Remote object: one hop to its primary (§4.2.1 — "a
                // function invocation results in at most one network
                // round-trip within the responsible replica set"). The
                // caller's context rides along, so the remote engine's
                // spans join this trace and its scheduler enforces what is
                // left of the deadline.
                let req = StoreRequest::Invoke {
                    object: target.0.clone(),
                    method: method.to_string(),
                    args,
                    read_only: false,
                    internal: true,
                    collect_read_set: false,
                };
                match self.call_peer(ctx, info.primary, &req)? {
                    StoreResponse::Value(v) => Ok(v),
                    other => Err(InvokeError::Nested(format!("bad reply {other:?}"))),
                }
            }
            _ => self.engine.invoke_ctx(ctx, target, method, args, false, depth),
        }
    }
}

/// A running LambdaStore node.
pub struct AggregatedNode {
    inner: Arc<NodeInner>,
    watch_rpc: Arc<RpcNode>,
}

impl std::fmt::Debug for AggregatedNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AggregatedNode").field("id", &self.inner.id).finish()
    }
}

impl AggregatedNode {
    /// Start a node with the given id on `net`.
    ///
    /// # Errors
    /// Propagates storage-open failures as [`InvokeError::Storage`].
    pub fn start(
        net: &Network,
        id: NodeId,
        config: AggregatedConfig,
    ) -> Result<Arc<AggregatedNode>, InvokeError> {
        // One registry per node: the kv layer, engine, scheduler and the
        // node's own request counters all report through it.
        let registry = Registry::shared();
        let db = Db::open_with_registry(&config.data_dir, config.kv.clone(), &registry)?;
        let types = Arc::new(TypeRegistry::new());
        let engine =
            Arc::new(Engine::with_registry(db, types, config.engine, Arc::clone(&registry)));

        let inner = Arc::new(NodeInner {
            id,
            engine,
            placement: Placement::new(),
            rpc: OnceLock::new(),
            self_ref: OnceLock::new(),
            rpc_timeout: config.rpc_timeout,
            requests: registry.counter("node_requests"),
            replications: registry.counter("node_replications_applied"),
            busy_nanos: registry.counter("node_busy_nanos"),
            shutdown: AtomicBool::new(false),
            replicate: AtomicBool::new(true),
            repl_batching: AtomicBool::new(true),
            repl_windows: Mutex::new(HashMap::new()),
            deferred_windows: Mutex::new(HashMap::new()),
            q_depth: registry.gauge("rpc_queue_depth"),
            q_inflight: registry.gauge("rpc_inflight"),
            q_shed: registry.gauge("rpc_shed"),
            repl_rounds: registry.counter("node_repl_rounds"),
            repl_entries: registry.counter("node_repl_entries"),
            sync: SyncManager::new(),
            sync_chunk_bytes: config.sync_chunk_bytes,
            repair_chunks_sent: registry.counter("repair_chunks_sent"),
            repair_bytes: registry.counter("repair_bytes"),
            repair_chunks_applied: registry.counter("repair_chunks_applied"),
            repair_sessions_failed: registry.counter("repair_sessions_failed"),
            repair_sync_enqueued: registry.counter("repair_sync_enqueued"),
            repair_sync_shipped: registry.counter("repair_sync_shipped"),
            lease_duration: config.lease_duration,
            lease_enforce: !config.coordinators.is_empty(),
            started: Instant::now(),
            last_coord_ok: AtomicU64::new(0),
            leases_held: Mutex::new(HashMap::new()),
            leases_granted: Mutex::new(HashMap::new()),
            commit_fences: Mutex::new(HashMap::new()),
            subscribers: Mutex::new(Vec::new()),
            follower_reads: registry.counter("lease_follower_reads"),
            lease_rejections: registry.counter("lease_rejections"),
            lease_renewals: registry.counter("lease_renewals"),
            lease_fenced_commits: registry.counter("lease_fenced_commits"),
            repl_retries: registry.counter("node_repl_retries"),
            invalidations_published: registry.counter("invalidations_published"),
            recent_commits: Mutex::new(HashMap::new()),
            suspect_shards: Mutex::new(HashMap::new()),
            sync_damage_floor: Mutex::new(HashMap::new()),
            forward_gaps: Mutex::new(HashMap::new()),
            corruption_reports: registry.counter("node_corruption_reports"),
            promotion_resyncs: registry.counter("node_promotion_resyncs"),
            invoke_tally: Mutex::new(HashMap::new()),
            migrations_driving: Mutex::new(HashSet::new()),
            migrations_completed: registry.counter("node_migrations_completed"),
            migration_fenced: registry.counter("node_migration_fenced"),
            registry,
        });

        // Service endpoint. `Invoke` is served as a *deferred reply*: the
        // worker thread hands the parked `Responder` to the engine's
        // continuation chain and is released while the invocation waits on
        // the object lock, the group commit, or replication acks — the
        // reply is a completion, not a return value. Every other request
        // kind still replies inline.
        let handler_inner = Arc::clone(&inner);
        let handler: Handler =
            Arc::new(move |from: NodeId, body: Vec<u8>, responder: Responder| {
                let started = Instant::now();
                let (ctx, req) = match proto::decode_request(&body) {
                    Ok(decoded) => decoded,
                    Err(e) => {
                        responder.reply(Err(e.to_string()));
                        return;
                    }
                };
                if let StoreRequest::Invoke {
                    object,
                    method,
                    args,
                    read_only,
                    internal,
                    collect_read_set,
                } = req
                {
                    handler_inner.requests.incr();
                    let oid = ObjectId::new(object);
                    if let Err(e) = handler_inner.check_role(&oid, read_only) {
                        handler_inner.busy_nanos.add(started.elapsed().as_nanos() as u64);
                        responder.reply(Err(encode_error(&e)));
                        return;
                    }
                    handler_inner.tally_invoke(oid.as_bytes());
                    let busy = handler_inner.busy_nanos.clone();
                    handler_inner.engine.invoke_deferred_tracked(
                        &ctx,
                        &oid,
                        &method,
                        args,
                        !internal,
                        Box::new(move |result| {
                            let encoded = result
                                .map(|(value, read_set)| match read_set {
                                    // Only cacheable (deterministic
                                    // read-only) invocations carry a read
                                    // set, and only when the client asked.
                                    Some(read_set) if collect_read_set => {
                                        StoreResponse::CachedValue { value, read_set }
                                    }
                                    _ => StoreResponse::Value(value),
                                })
                                .map_err(|e| encode_error(&e))
                                .and_then(|resp| wire::to_bytes(&resp).map_err(|e| e.to_string()));
                            busy.add(started.elapsed().as_nanos() as u64);
                            responder.reply(encoded);
                        }),
                    );
                    return;
                }
                let result = handler_inner
                    .handle(from, &ctx, req)
                    .map_err(|e| encode_error(&e))
                    .and_then(|resp| wire::to_bytes(&resp).map_err(|e| e.to_string()));
                handler_inner.busy_nanos.add(started.elapsed().as_nanos() as u64);
                responder.reply(result);
            });
        // Admission control: once the run queue is over depth, requests
        // born at a client are refused with a retryable `Overloaded`
        // before consuming a worker. Node-to-node and background traffic
        // (replication, repair, state transfer) is always admitted, so
        // shedding never cascades into the durability path.
        let shed_reply =
            encode_error(&InvokeError::Overloaded(format!("node-{} run queue full", id.0)));
        let admission: AdmissionPolicy =
            Arc::new(move |body: &[u8]| match wire::split_header(body) {
                Ok((Some(header), _)) if header.origin == Origin::Client.to_wire() => {
                    Some(shed_reply.clone())
                }
                // Headerless, malformed, or non-client origin: admit — only
                // provably client-origin load is sheddable.
                _ => None,
            });
        let rpc = RpcNode::start_with_config(
            net,
            id,
            handler,
            RpcConfig {
                workers: config.workers,
                queue_depth: config.run_queue_depth,
                admission: Some(admission),
                ..RpcConfig::default()
            },
        );
        inner.rpc.set(Arc::clone(&rpc)).expect("set once");
        inner.self_ref.set(Arc::downgrade(&inner)).expect("set once");

        // The engine's replication hook and cross-shard router are the node.
        inner.engine.set_commit_hook(Arc::clone(&inner) as Arc<dyn CommitHook>);
        inner.engine.set_router(Arc::clone(&inner) as Arc<dyn InvokeRouter>);

        // Watch endpoint for coordinator pushes.
        let watch_inner = Arc::clone(&inner);
        let watch_rpc = RpcNode::start(
            net,
            NodeId(id.0 + WATCH_ID_OFFSET),
            sync_handler(move |_, body| {
                if let Ok(CoordEvent::StateChanged(state)) = wire::from_bytes(&body) {
                    watch_inner.install_placement(state);
                }
                Ok(vec![])
            }),
            1,
        );

        // Heartbeat + state-poll loop, and the repair scanner that opens
        // state-transfer sessions for recruits the coordinator assigned us.
        if !config.coordinators.is_empty() {
            let coord = Arc::new(CoordClient::new(
                Arc::clone(&rpc),
                config.coordinators.clone(),
                config.rpc_timeout,
            ));
            let hb_coord = Arc::clone(&coord);
            let hb_inner = Arc::clone(&inner);
            let interval = config.heartbeat_interval;
            let watch_id = NodeId(id.0 + WATCH_ID_OFFSET);
            std::thread::Builder::new()
                .name(format!("store-{id}-heartbeat"))
                .spawn(move || loop {
                    if hb_inner.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    // The load report rides the heartbeat: queue depth plus
                    // the hottest objects since the last beat, feeding the
                    // coordinator's rebalancer.
                    let load = hb_inner.drain_load();
                    if hb_coord.heartbeat(hb_inner.id, Some(watch_id), Some(load)).is_ok() {
                        hb_inner.note_coord_ok();
                    }
                    if let Ok(Some(state)) = hb_coord.get_state(hb_inner.placement.version()) {
                        hb_inner.install_placement(state);
                    }
                    // Re-grant read leases to the backups of every shard
                    // this node leads, so write-idle shards stay readable.
                    hb_inner.renew_leases();
                    // Disk health: surface unrecoverable kv corruptions to
                    // the coordinator so the replica sets repair around
                    // this node's bad media.
                    hb_inner.report_corruption(&hb_coord);
                    // Housekeeping: drop lock-table entries for idle objects.
                    hb_inner.engine.scheduler().gc();
                    std::thread::sleep(interval);
                })
                .expect("spawn heartbeat");

            // Migration scanner: drive every replicated migration whose
            // source shard this node leads. The plan lives in the Paxos
            // log, so a restarted source primary finds it again here and
            // resumes from the recorded phase.
            let mig_inner = Arc::clone(&inner);
            let mig_coord = Arc::clone(&coord);
            std::thread::Builder::new()
                .name(format!("store-{id}-migrate"))
                .spawn(move || loop {
                    if mig_inner.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    let state = mig_inner.placement.snapshot();
                    for (object, m) in &state.migrations {
                        let Some(src) = state.shard(m.from) else { continue };
                        if src.primary != mig_inner.id || src.lost {
                            continue;
                        }
                        // Claim before spawning so the next scan skips it.
                        if !mig_inner.migrations_driving.lock().insert(object.clone()) {
                            continue;
                        }
                        let n = Arc::clone(&mig_inner);
                        let c = Arc::clone(&mig_coord);
                        let (object, m) = (object.clone(), m.clone());
                        std::thread::Builder::new()
                            .name(format!("store-{}-migrate-drive", n.id))
                            .spawn(move || n.drive_migration(&c, object, m))
                            .expect("spawn migration driver");
                    }
                    std::thread::sleep(interval);
                })
                .expect("spawn migration scanner");

            let sync_inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("store-{id}-sync"))
                .spawn(move || loop {
                    if sync_inner.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    let state = sync_inner.placement.snapshot();
                    for (&shard, info) in &state.shards {
                        if info.primary != sync_inner.id || info.lost {
                            continue;
                        }
                        for &peer in &info.syncing {
                            if sync_inner.sync.contains(shard, peer) {
                                continue;
                            }
                            // Register before spawning so the next scan
                            // (and concurrent commits) see the session.
                            let session = SyncSession::new(shard, peer, info.epoch);
                            sync_inner.sync.insert(Arc::clone(&session));
                            let n = Arc::clone(&sync_inner);
                            let c = Arc::clone(&coord);
                            std::thread::Builder::new()
                                .name(format!("store-{}-sync-{shard}-{peer}", n.id))
                                .spawn(move || n.run_sync_session(&c, session))
                                .expect("spawn sync session");
                        }
                    }
                    std::thread::sleep(interval);
                })
                .expect("spawn sync scanner");
        }

        Ok(Arc::new(AggregatedNode { inner, watch_rpc }))
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.inner.id
    }

    /// Direct engine access (tests, native-type deployment, benches).
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// The node-wide telemetry registry (span chains, stage histograms,
    /// and every counter the node's stats surfaces are served from).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.inner.registry
    }

    /// Deploy a native (trusted) object type directly on this node.
    pub fn register_native_type(&self, ty: ObjectType) {
        self.inner.engine.types().register(ty);
    }

    /// The node's placement view (tests/diagnostics; also used to install
    /// static shard maps when no coordinator is configured).
    pub fn placement(&self) -> &Placement {
        &self.inner.placement
    }

    /// Enable or disable synchronous replication (ABL-REPL ablation).
    pub fn set_replication_enabled(&self, enabled: bool) {
        self.inner.replicate.store(enabled, Ordering::Relaxed);
    }

    /// Enable or disable per-shard replication batching (ABL-GROUPCOMMIT
    /// ablation). When disabled each committed write set is shipped as its
    /// own [`StoreRequest::Replicate`] RPC.
    pub fn set_replication_batching(&self, enabled: bool) {
        self.inner.repl_batching.store(enabled, Ordering::Relaxed);
    }

    /// `(rounds, entries)` shipped through the batched replication path;
    /// `entries / rounds` is the mean replication window size.
    pub fn replication_batch_stats(&self) -> (u64, u64) {
        (self.inner.repl_rounds.get(), self.inner.repl_entries.get())
    }

    /// Statistics snapshot (a thin view over the registry's counters).
    pub fn stats(&self) -> NodeStatsWire {
        self.inner.stats_wire()
    }

    /// Stop serving (the node "crashes": heartbeats stop, RPCs fail).
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.rpc().shutdown();
        self.watch_rpc.shutdown();
    }
}
