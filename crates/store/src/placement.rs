//! Cached cluster-state view used by nodes and clients for routing.

use parking_lot::RwLock;

use lambda_coordinator::{ClusterState, Epoch, MigrationInfo, ShardId, ShardInfo};
use lambda_net::NodeId;
use lambda_objects::ObjectId;

/// A monotonically-updated local copy of the coordinator's replicated
/// state. Watch notifications and on-demand refreshes both funnel through
/// [`update`](Placement::update), which ignores stale versions.
#[derive(Debug, Default)]
pub struct Placement {
    state: RwLock<ClusterState>,
}

impl Placement {
    /// Empty placement (no shards known yet).
    pub fn new() -> Placement {
        Placement::default()
    }

    /// Install `state` if it is newer than the current copy; returns
    /// whether it was accepted.
    pub fn update(&self, state: ClusterState) -> bool {
        let mut cur = self.state.write();
        if state.version > cur.version {
            *cur = state;
            true
        } else {
            false
        }
    }

    /// Version of the local copy.
    pub fn version(&self) -> u64 {
        self.state.read().version
    }

    /// Full snapshot (diagnostics).
    pub fn snapshot(&self) -> ClusterState {
        self.state.read().clone()
    }

    /// The shard and replica set responsible for `object`.
    pub fn locate(&self, object: &ObjectId) -> Option<(ShardId, ShardInfo)> {
        let st = self.state.read();
        let shard = st.shard_for_object(object.as_bytes())?;
        let info = st.shard(shard)?.clone();
        Some((shard, info))
    }

    /// The live migration entry for `object`, if any — read under the
    /// lock without cloning the whole state (this sits on the mutation
    /// admission path).
    pub fn migration_of(&self, object: &[u8]) -> Option<MigrationInfo> {
        self.state.read().migrations.get(object).cloned()
    }

    /// The current epoch of `shard`.
    pub fn epoch_of(&self, shard: ShardId) -> Option<Epoch> {
        self.state.read().shard(shard).map(|i| i.epoch)
    }

    /// The current replica set of `shard`.
    pub fn shard_info(&self, shard: ShardId) -> Option<ShardInfo> {
        self.state.read().shard(shard).cloned()
    }

    /// True when `node` is the primary for `object`.
    pub fn is_primary(&self, node: NodeId, object: &ObjectId) -> bool {
        self.locate(object).is_some_and(|(_, info)| info.primary == node)
    }

    /// True when `node` serves `object` in any role.
    pub fn is_replica(&self, node: NodeId, object: &ObjectId) -> bool {
        self.locate(object).is_some_and(|(_, info)| info.contains(node))
    }

    /// All registered storage nodes.
    pub fn storage_nodes(&self) -> Vec<NodeId> {
        self.state.read().nodes.iter().copied().collect()
    }

    /// True while `node` is registered with the coordinator. Failed nodes
    /// are deregistered by the heartbeat monitor, so this is the client's
    /// cheapest liveness signal when picking a read replica.
    pub fn is_live(&self, node: NodeId) -> bool {
        self.state.read().nodes.contains(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_coordinator::CoordCmd;

    fn state() -> ClusterState {
        let mut st = ClusterState::default();
        st.apply(&CoordCmd::RegisterNode { node: NodeId(1) });
        st.apply(&CoordCmd::RegisterNode { node: NodeId(2) });
        st.apply(&CoordCmd::CreateShard { shard: 0, replicas: vec![NodeId(1), NodeId(2)] });
        st.apply(&CoordCmd::AssignSlots {
            shard: 0,
            slots: (0..lambda_coordinator::N_SLOTS).collect(),
        });
        st
    }

    #[test]
    fn update_accepts_only_newer() {
        let p = Placement::new();
        assert!(p.update(state()));
        let v = p.version();
        assert!(!p.update(ClusterState::default()), "older state rejected");
        assert_eq!(p.version(), v);
    }

    #[test]
    fn locate_and_roles() {
        let p = Placement::new();
        p.update(state());
        let obj = ObjectId::from("user/1");
        let (shard, info) = p.locate(&obj).unwrap();
        assert_eq!(shard, 0);
        assert_eq!(info.primary, NodeId(1));
        assert!(p.is_primary(NodeId(1), &obj));
        assert!(!p.is_primary(NodeId(2), &obj));
        assert!(p.is_replica(NodeId(2), &obj));
        assert!(!p.is_replica(NodeId(9), &obj));
        assert_eq!(p.epoch_of(0), Some(1));
        assert_eq!(p.storage_nodes(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn liveness_follows_node_registration() {
        let p = Placement::new();
        let mut st = state();
        assert!(!p.is_live(NodeId(1)), "empty placement knows no live nodes");
        p.update(st.clone());
        assert!(p.is_live(NodeId(1)) && p.is_live(NodeId(2)));
        assert!(!p.is_live(NodeId(9)));
        st.apply(&CoordCmd::RemoveNode { node: NodeId(2) });
        p.update(st);
        assert!(!p.is_live(NodeId(2)), "deregistered node is dead");
    }

    #[test]
    fn empty_placement_locates_nothing() {
        let p = Placement::new();
        assert!(p.locate(&ObjectId::from("x")).is_none());
        assert!(p.epoch_of(0).is_none());
    }
}
