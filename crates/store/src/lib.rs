//! # lambda-store
//!
//! LambdaStore node runtimes: the three cloud-programming architectures the
//! paper compares.
//!
//! * [`aggregated`] — **LambdaStore** (§4.2): storage nodes embed the
//!   LambdaObjects engine; functions execute where the data lives, with
//!   per-object scheduling, synchronous primary-backup replication with
//!   epoch fencing, consistent caching, coordinator heartbeats and
//!   microshard migration.
//! * [`disaggregated`] — the baseline of §5: the *same* bytecode runs in
//!   the *same* metered VM, but on a dedicated compute node whose host
//!   interface pays one network round-trip per storage access against the
//!   same storage replica set, with no consistency guarantees.
//! * [`serverless`] — the conventional-serverless emulation of §4.1
//!   (durable request log + container cold starts in front of the
//!   disaggregated path), used for the Table 1 comparison.
//!
//! [`cluster`] provides turn-key builders matching the paper's testbed
//! (1 compute + 3 storage machines, one replica set, no sharding — plus
//! arbitrary sharded configurations), and [`client`] the routing client.

pub mod aggregated;
pub mod client;
pub mod cluster;
pub mod disaggregated;
pub mod placement;
pub mod proto;
pub mod serverless;
pub mod sync;

pub use aggregated::{AggregatedConfig, AggregatedNode, WATCH_ID_OFFSET};
pub use client::{InvokeCallback, StoreClient};
pub use cluster::{
    ids, AggregatedCluster, ClusterConfig, ClusterCore, DisaggregatedCluster, ServerlessCluster,
};
pub use disaggregated::{ComputeConfig, ComputeNode, FunctionExecutor};
pub use placement::Placement;
pub use proto::{ClientPush, NodeStatsWire, StoreRequest, StoreResponse, SyncItem};
pub use serverless::{ServerlessConfig, ServerlessGateway};
pub use sync::{SyncManager, SyncPhase, SyncSession};
