//! Minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]` without syn/quote.
//!
//! Parses the item declaration directly from the proc-macro token stream.
//! Field *types* are never inspected — the generated code relies on type
//! inference through `next_element()` and the type's own constructor, which is
//! sufficient for the positional wire format this workspace uses. Generic
//! types are rejected.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::iter::Peekable;

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attrs_and_vis(iter: &mut TokenIter) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                match iter.next() {
                    Some(TokenTree::Group(_)) => {}
                    other => panic!("expected attribute body, got {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Skip a field's type: everything up to a `,` at angle-bracket depth zero.
/// Consumes the trailing comma if present.
fn skip_type(iter: &mut TokenIter) {
    let mut angle_depth = 0usize;
    while let Some(tok) = iter.peek() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                iter.next();
                return;
            }
            _ => {}
        }
        iter.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut iter = stream.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            None => return names,
            Some(TokenTree::Ident(id)) => {
                names.push(id.to_string());
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("expected `:` after field name, got {other:?}"),
                }
                skip_type(&mut iter);
            }
            other => panic!("expected field name, got {other:?}"),
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut iter = stream.into_iter().peekable();
    let mut count = 0usize;
    loop {
        skip_attrs_and_vis(&mut iter);
        if iter.peek().is_none() {
            return count;
        }
        count += 1;
        skip_type(&mut iter);
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            None => return variants,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected variant name, got {other:?}"),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                iter.next();
                Fields::Named(parse_named_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                iter.next();
                Fields::Tuple(count_tuple_fields(inner))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        match iter.next() {
            None => return variants,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => panic!("expected `,` after variant, got {other:?}"),
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("derive shim does not support generic types ({name})");
        }
    }
    match kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Struct { name, fields: Fields::Named(parse_named_fields(g.stream())) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::Struct { name, fields: Fields::Tuple(count_tuple_fields(g.stream())) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Item::Struct { name, fields: Fields::Unit }
            }
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum { name, variants: parse_variants(g.stream()) }
            }
            other => panic!("unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("derive shim supports structs and enums only, got `{other}`"),
    }
}

/// Derive `serde::Serialize` for a non-generic struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut out = String::new();
    match &item {
        Item::Struct { name, fields } => {
            let body = serialize_struct_body(name, fields);
            let _ = write!(
                out,
                "impl ::serde::ser::Serialize for {name} {{\
                   fn serialize<S: ::serde::ser::Serializer>(&self, serializer: S) \
                       -> ::std::result::Result<S::Ok, S::Error> {{ {body} }}\
                 }}"
            );
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vname} => ::serde::ser::Serializer::\
                             serialize_unit_variant(serializer, \"{name}\", {idx}u32, \"{vname}\"),"
                        );
                    }
                    Fields::Tuple(1) => {
                        let _ = write!(
                            arms,
                            "{name}::{vname}(__f0) => ::serde::ser::Serializer::\
                             serialize_newtype_variant(serializer, \"{name}\", {idx}u32, \
                             \"{vname}\", __f0),"
                        );
                    }
                    Fields::Tuple(n) => {
                        let pats: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut steps = String::new();
                        for p in &pats {
                            let _ = write!(
                                steps,
                                "::serde::ser::SerializeTupleVariant::\
                                 serialize_field(&mut __tv, {p})?;"
                            );
                        }
                        let _ = write!(
                            arms,
                            "{name}::{vname}({}) => {{\
                               let mut __tv = ::serde::ser::Serializer::serialize_tuple_variant(\
                                   serializer, \"{name}\", {idx}u32, \"{vname}\", {n}usize)?;\
                               {steps}\
                               ::serde::ser::SerializeTupleVariant::end(__tv)\
                             }},",
                            pats.join(", ")
                        );
                    }
                    Fields::Named(fnames) => {
                        let mut steps = String::new();
                        for f in fnames {
                            let _ = write!(
                                steps,
                                "::serde::ser::SerializeStructVariant::\
                                 serialize_field(&mut __sv, \"{f}\", {f})?;"
                            );
                        }
                        let n = fnames.len();
                        let _ = write!(
                            arms,
                            "{name}::{vname} {{ {} }} => {{\
                               let mut __sv = ::serde::ser::Serializer::serialize_struct_variant(\
                                   serializer, \"{name}\", {idx}u32, \"{vname}\", {n}usize)?;\
                               {steps}\
                               ::serde::ser::SerializeStructVariant::end(__sv)\
                             }},",
                            fnames.join(", ")
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "impl ::serde::ser::Serialize for {name} {{\
                   fn serialize<S: ::serde::ser::Serializer>(&self, serializer: S) \
                       -> ::std::result::Result<S::Ok, S::Error> {{\
                     match self {{ {arms} }}\
                   }}\
                 }}"
            );
        }
    }
    out.parse().expect("serde_derive: generated Serialize impl failed to parse")
}

fn serialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => {
            format!("::serde::ser::Serializer::serialize_unit_struct(serializer, \"{name}\")")
        }
        Fields::Tuple(1) => format!(
            "::serde::ser::Serializer::serialize_newtype_struct(serializer, \"{name}\", &self.0)"
        ),
        Fields::Tuple(n) => {
            let mut body = format!(
                "let mut __ts = ::serde::ser::Serializer::serialize_tuple_struct(\
                 serializer, \"{name}\", {n}usize)?;"
            );
            for i in 0..*n {
                let _ = write!(
                    body,
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __ts, &self.{i})?;"
                );
            }
            body.push_str("::serde::ser::SerializeTupleStruct::end(__ts)");
            body
        }
        Fields::Named(fnames) => {
            let n = fnames.len();
            let mut body = format!(
                "let mut __st = ::serde::ser::Serializer::serialize_struct(\
                 serializer, \"{name}\", {n}usize)?;"
            );
            for f in fnames {
                let _ = write!(
                    body,
                    "::serde::ser::SerializeStruct::serialize_field(&mut __st, \"{f}\", &self.{f})?;"
                );
            }
            body.push_str("::serde::ser::SerializeStruct::end(__st)");
            body
        }
    }
}

/// Emit a `visit_seq` body that reads `n` positional elements and finishes
/// with `ctor(...)` applied to them.
fn visit_seq_fn(ctor: &str, n: usize, named: Option<&[String]>) -> String {
    let mut body = String::new();
    for i in 0..n {
        let _ = write!(
            body,
            "let __f{i} = match ::serde::de::SeqAccess::next_element(&mut seq)? {{\
               ::std::option::Option::Some(v) => v,\
               ::std::option::Option::None => return ::std::result::Result::Err(\
                   ::serde::de::Error::invalid_length({i}usize, &\"more elements\")),\
             }};"
        );
    }
    let finish = match named {
        Some(fnames) => {
            let binds: Vec<String> =
                fnames.iter().enumerate().map(|(i, f)| format!("{f}: __f{i}")).collect();
            format!("{ctor} {{ {} }}", binds.join(", "))
        }
        None => {
            let args: Vec<String> = (0..n).map(|i| format!("__f{i}")).collect();
            format!("{ctor}({})", args.join(", "))
        }
    };
    format!(
        "fn visit_seq<A: ::serde::de::SeqAccess<'de>>(self, mut seq: A) \
             -> ::std::result::Result<Self::Value, A::Error> {{\
           {body} ::std::result::Result::Ok({finish})\
         }}"
    )
}

fn quoted_list(names: &[String]) -> String {
    let quoted: Vec<String> = names.iter().map(|n| format!("\"{n}\"")).collect();
    format!("&[{}]", quoted.join(", "))
}

/// Derive `serde::Deserialize` for a non-generic struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (name, visitor_impl, dispatch) = match &item {
        Item::Struct { name, fields } => match fields {
            Fields::Unit => (
                name.clone(),
                format!(
                    "fn visit_unit<E: ::serde::de::Error>(self) \
                         -> ::std::result::Result<Self::Value, E> {{\
                       ::std::result::Result::Ok({name})\
                     }}"
                ),
                format!(
                    "::serde::de::Deserializer::deserialize_unit_struct(\
                     deserializer, \"{name}\", __Visitor)"
                ),
            ),
            Fields::Tuple(1) => (
                name.clone(),
                format!(
                    "fn visit_newtype_struct<D: ::serde::de::Deserializer<'de>>(\
                         self, __d: D) -> ::std::result::Result<Self::Value, D::Error> {{\
                       ::std::result::Result::Ok({name}(::serde::de::Deserialize::deserialize(__d)?))\
                     }}"
                ),
                format!(
                    "::serde::de::Deserializer::deserialize_newtype_struct(\
                     deserializer, \"{name}\", __Visitor)"
                ),
            ),
            Fields::Tuple(n) => (
                name.clone(),
                visit_seq_fn(name, *n, None),
                format!(
                    "::serde::de::Deserializer::deserialize_tuple_struct(\
                     deserializer, \"{name}\", {n}usize, __Visitor)"
                ),
            ),
            Fields::Named(fnames) => (
                name.clone(),
                visit_seq_fn(name, fnames.len(), Some(fnames)),
                format!(
                    "::serde::de::Deserializer::deserialize_struct(\
                     deserializer, \"{name}\", {}, __Visitor)",
                    quoted_list(fnames)
                ),
            ),
        },
        Item::Enum { name, variants } => {
            let vnames: Vec<String> = variants.iter().map(|v| v.name.clone()).collect();
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = write!(
                            arms,
                            "{idx}u32 => {{\
                               ::serde::de::VariantAccess::unit_variant(__variant)?;\
                               ::std::result::Result::Ok({name}::{vname})\
                             }},"
                        );
                    }
                    Fields::Tuple(1) => {
                        let _ = write!(
                            arms,
                            "{idx}u32 => ::std::result::Result::Ok({name}::{vname}(\
                               ::serde::de::VariantAccess::newtype_variant(__variant)?)),"
                        );
                    }
                    Fields::Tuple(n) => {
                        let inner = visit_seq_fn(&format!("{name}::{vname}"), *n, None);
                        let _ = write!(
                            arms,
                            "{idx}u32 => {{\
                               struct __V{idx};\
                               impl<'de> ::serde::de::Visitor<'de> for __V{idx} {{\
                                 type Value = {name};\
                                 fn expecting(&self, f: &mut ::std::fmt::Formatter<'_>) \
                                     -> ::std::fmt::Result {{\
                                   f.write_str(\"tuple variant {name}::{vname}\")\
                                 }}\
                                 {inner}\
                               }}\
                               ::serde::de::VariantAccess::tuple_variant(\
                                   __variant, {n}usize, __V{idx})\
                             }},"
                        );
                    }
                    Fields::Named(fnames) => {
                        let inner =
                            visit_seq_fn(&format!("{name}::{vname}"), fnames.len(), Some(fnames));
                        let flist = quoted_list(fnames);
                        let _ = write!(
                            arms,
                            "{idx}u32 => {{\
                               struct __V{idx};\
                               impl<'de> ::serde::de::Visitor<'de> for __V{idx} {{\
                                 type Value = {name};\
                                 fn expecting(&self, f: &mut ::std::fmt::Formatter<'_>) \
                                     -> ::std::fmt::Result {{\
                                   f.write_str(\"struct variant {name}::{vname}\")\
                                 }}\
                                 {inner}\
                               }}\
                               ::serde::de::VariantAccess::struct_variant(\
                                   __variant, {flist}, __V{idx})\
                             }},"
                        );
                    }
                }
            }
            let vlist = quoted_list(&vnames);
            let visitor_impl = format!(
                "fn visit_enum<A: ::serde::de::EnumAccess<'de>>(self, __data: A) \
                     -> ::std::result::Result<Self::Value, A::Error> {{\
                   let (__idx, __variant): (u32, _) = ::serde::de::EnumAccess::variant(__data)?;\
                   match __idx {{\
                     {arms}\
                     _ => ::std::result::Result::Err(::serde::de::Error::unknown_variant(\
                         __idx, {vlist})),\
                   }}\
                 }}"
            );
            let dispatch = format!(
                "::serde::de::Deserializer::deserialize_enum(\
                 deserializer, \"{name}\", {vlist}, __Visitor)"
            );
            (name.clone(), visitor_impl, dispatch)
        }
    };

    let out = format!(
        "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\
           fn deserialize<D: ::serde::de::Deserializer<'de>>(deserializer: D) \
               -> ::std::result::Result<Self, D::Error> {{\
             struct __Visitor;\
             impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\
               type Value = {name};\
               fn expecting(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\
                 f.write_str(\"{name}\")\
               }}\
               {visitor_impl}\
             }}\
             {dispatch}\
           }}\
         }}"
    );
    out.parse().expect("serde_derive: generated Deserialize impl failed to parse")
}
