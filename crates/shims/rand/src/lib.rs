//! Vendored, minimal `rand`-compatible PRNG (SplitMix64-based).
//!
//! Provides the slice of the rand 0.8 API this workspace uses: `SmallRng`
//! seeded via `seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `thread_rng()`.

use std::cell::Cell;
use std::hash::{BuildHasher, Hasher};
use std::ops::Range;

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build an rng whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an rng (rand's `Standard` distribution).
pub trait StandardSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_standard {
    ($($ty:ty),*) => {
        $(impl StandardSample for $ty {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        })*
    };
}

int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($ty:ty),*) => {
        $(impl SampleRange<$ty> for Range<$ty> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            #[allow(clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Lemire multiply-shift: maps a u64 uniformly onto [0, span).
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + offset) as $ty
            }
        })*
    };
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of an inferable type.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named rng types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, seedable PRNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    /// Alias: the "standard" rng is the same generator here.
    pub type StdRng = SmallRng;
}

thread_local! {
    static THREAD_RNG_STATE: Cell<u64> = Cell::new({
        // Seed from the hasher's per-process random state plus a per-thread
        // stack address so threads get distinct streams.
        let mut h = std::collections::hash_map::RandomState::new().build_hasher();
        let marker = 0u8;
        h.write_usize(std::ptr::addr_of!(marker) as usize);
        h.finish()
    });
}

/// Handle to a thread-local rng.
pub struct ThreadRng;

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        THREAD_RNG_STATE.with(|state| {
            let mut s = state.get();
            let out = splitmix64(&mut s);
            state.set(s);
            out
        })
    }
}

/// The calling thread's rng.
pub fn thread_rng() -> ThreadRng {
    ThreadRng
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{thread_rng, Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen_range(0..10usize);
            assert_eq!(x, b.gen_range(0..10usize));
            assert!(x < 10);
            let f: f64 = a.gen();
            let _ = b.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn thread_rng_produces_values() {
        let mut rng = thread_rng();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
        assert!(rng.gen_range(0..5u64) < 5);
    }
}
