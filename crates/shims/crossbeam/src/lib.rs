//! Vendored, minimal `crossbeam`-compatible MPMC channels plus a two-way
//! `select!` with a `default(timeout)` arm — exactly the surface this
//! workspace uses.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    /// Shared wakeup target registered by `select!` so a send on *any*
    /// selected channel unblocks the selecting thread.
    pub struct SelectWaker {
        fired: Mutex<bool>,
        cv: Condvar,
    }

    impl SelectWaker {
        fn new() -> Arc<Self> {
            Arc::new(SelectWaker { fired: Mutex::new(false), cv: Condvar::new() })
        }

        fn notify(&self) {
            let mut fired = self.fired.lock().unwrap_or_else(PoisonError::into_inner);
            *fired = true;
            self.cv.notify_all();
        }

        /// Wait until notified or `deadline`; returns false on timeout.
        fn wait_until(&self, deadline: Instant) -> bool {
            let mut fired = self.fired.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if *fired {
                    *fired = false;
                    return true;
                }
                let now = Instant::now();
                if now >= deadline {
                    return false;
                }
                let (g, _res) = self
                    .cv
                    .wait_timeout(fired, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                fired = g;
            }
        }
    }

    struct ChanState<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        wakers: Vec<Arc<SelectWaker>>,
    }

    struct Shared<T> {
        state: Mutex<ChanState<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn notify_wakers(state: &mut ChanState<T>) {
            for w in &state.wakers {
                w.notify();
            }
        }
    }

    /// Sending half; cloneable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Create a bounded channel; sends block when `cap` messages are queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(ChanState {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                wakers: Vec::new(),
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    /// All receivers disconnected; the message is handed back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// All senders disconnected and the queue is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Outcome of [`Receiver::recv_timeout`] failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived in time.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    /// Outcome of [`Receiver::try_recv`] failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue currently empty.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    /// Outcome of [`Sender::try_send`] failure; the message is handed back.
    pub enum TrySendError<T> {
        /// Bounded channel at capacity.
        Full(T),
        /// All receivers disconnected.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send `msg`, blocking if the channel is bounded and full.
        ///
        /// # Errors
        /// [`SendError`] when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(cap) = self.shared.cap {
                while state.queue.len() >= cap && state.receivers > 0 {
                    state =
                        self.shared.not_full.wait(state).unwrap_or_else(PoisonError::into_inner);
                }
            }
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.queue.push_back(msg);
            self.shared.not_empty.notify_one();
            Shared::notify_wakers(&mut state);
            Ok(())
        }

        /// Non-blocking send: fails with `Full` instead of waiting when a
        /// bounded channel is at capacity.
        ///
        /// # Errors
        /// [`TrySendError::Full`] at capacity, [`TrySendError::Disconnected`]
        /// when every receiver is gone.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.shared.cap {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            state.queue.push_back(msg);
            self.shared.not_empty.notify_one();
            Shared::notify_wakers(&mut state);
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap_or_else(PoisonError::into_inner).queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.senders += 1;
            drop(state);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.senders -= 1;
            if state.senders == 0 {
                self.shared.not_empty.notify_all();
                Shared::notify_wakers(&mut state);
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives.
        ///
        /// # Errors
        /// [`RecvError`] when the channel is empty and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Block until a message arrives or `timeout` passes.
        ///
        /// # Errors
        /// `Timeout` or `Disconnected`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _res) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                state = g;
            }
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        /// `Empty` or `Disconnected`.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(msg) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap_or_else(PoisonError::into_inner).queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        fn register_waker(&self, waker: &Arc<SelectWaker>) {
            let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.wakers.push(Arc::clone(waker));
        }

        fn unregister_waker(&self, waker: &Arc<SelectWaker>) {
            let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.wakers.retain(|w| !Arc::ptr_eq(w, waker));
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.receivers += 1;
            drop(state);
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.receivers -= 1;
            if state.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Which `select!` arm fired (support type for the macro; not public API).
    #[doc(hidden)]
    pub enum SelectResult<A, B> {
        /// First `recv` arm.
        Recv0(Result<A, RecvError>),
        /// Second `recv` arm.
        Recv1(Result<B, RecvError>),
        /// The `default(timeout)` arm.
        Default,
    }

    /// Two-channel select with timeout (support fn for the macro).
    #[doc(hidden)]
    pub fn select2_timeout<A, B>(
        r0: &Receiver<A>,
        r1: &Receiver<B>,
        timeout: Duration,
    ) -> SelectResult<A, B> {
        let deadline = Instant::now() + timeout;
        let waker = SelectWaker::new();
        r0.register_waker(&waker);
        r1.register_waker(&waker);
        let result = loop {
            match r0.try_recv() {
                Ok(v) => break SelectResult::Recv0(Ok(v)),
                Err(TryRecvError::Disconnected) => break SelectResult::Recv0(Err(RecvError)),
                Err(TryRecvError::Empty) => {}
            }
            match r1.try_recv() {
                Ok(v) => break SelectResult::Recv1(Ok(v)),
                Err(TryRecvError::Disconnected) => break SelectResult::Recv1(Err(RecvError)),
                Err(TryRecvError::Empty) => {}
            }
            if !waker.wait_until(deadline) {
                break SelectResult::Default;
            }
        };
        r0.unregister_waker(&waker);
        r1.unregister_waker(&waker);
        result
    }

    pub use crate::select;

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn mpmc_roundtrip_and_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx2.recv().unwrap(), 2);
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx2.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let t = thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 2);
            t.join().unwrap();
        }

        #[test]
        fn try_send_full_and_disconnected() {
            let (tx, rx) = bounded::<u32>(1);
            tx.try_send(1).unwrap();
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            assert_eq!(tx.len(), 1);
            assert_eq!(rx.len(), 1);
            assert_eq!(rx.recv().unwrap(), 1);
            assert!(rx.is_empty());
            drop(rx);
            assert!(matches!(tx.try_send(3), Err(TrySendError::Disconnected(3))));
        }

        #[test]
        fn select_two_channels() {
            let (tx_a, rx_a) = unbounded::<u32>();
            let (_tx_b, rx_b) = unbounded::<u32>();
            let t = thread::spawn(move || {
                thread::sleep(Duration::from_millis(10));
                tx_a.send(42).unwrap();
            });
            let got = crate::select! {
                recv(rx_a) -> v => {
                    v.unwrap()
                }
                recv(rx_b) -> v => v.map(|x| x + 1).unwrap_or(0),
                default(Duration::from_secs(2)) => {
                    unreachable!("timed out")
                }
            };
            assert_eq!(got, 42);
            t.join().unwrap();
        }

        #[test]
        fn select_times_out() {
            let (_tx_a, rx_a) = unbounded::<u32>();
            let (_tx_b, rx_b) = unbounded::<u32>();
            let got = crate::select! {
                recv(rx_a) -> _v => {
                    1u32
                }
                recv(rx_b) -> _v => 2u32,
                default(Duration::from_millis(5)) => {
                    3u32
                }
            };
            assert_eq!(got, 3);
        }
    }
}

/// Two-`recv`-arm select with a `default(timeout)` arm.
///
/// Arm bodies expand in place inside a `match`, so `break`/`continue` in a
/// body bind to the *caller's* enclosing loop — this matches how the RPC
/// router uses crossbeam's `select!`.
#[macro_export]
macro_rules! select {
    (
        recv($r0:expr) -> $p0:pat => $b0:block
        recv($r1:expr) -> $p1:pat => $b1:expr,
        default($t:expr) => $b2:block
    ) => {
        match $crate::channel::select2_timeout(&$r0, &$r1, $t) {
            $crate::channel::SelectResult::Recv0($p0) => $b0,
            $crate::channel::SelectResult::Recv1($p1) => $b1,
            $crate::channel::SelectResult::Default => $b2,
        }
    };
}
