//! Vendored, minimal `bytes::Bytes`: a cheaply clonable, immutable,
//! reference-counted byte buffer.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable shared byte buffer; `clone` is an `Arc` bump, never a copy.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Copy `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: Arc::from(data) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Self {
        Bytes::copy_from_slice(data.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;
    use std::sync::Arc;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(Arc::strong_count(&a.data), 2);
    }
}
