//! Vendored, minimal `parking_lot`-compatible synchronization primitives.
//!
//! Built on `std::sync` (poison errors are swallowed, matching parking_lot's
//! no-poisoning semantics). The `RwLock` is a custom writer-preference lock so
//! that `read_arc`/`write_arc` can hand out `'static` guards holding an `Arc`
//! without lifetime gymnastics.

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, PoisonError};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock (no poisoning).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.0.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can temporarily
/// take ownership of it.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("mutex guard vacated")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("mutex guard vacated")
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of [`Condvar::wait_for`].
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`].
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing the lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("mutex guard vacated");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("mutex guard vacated");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Marker type standing in for parking_lot's raw lock type parameter on the
/// `Arc*Guard` structs.
pub struct RawRwLock;

struct RwState {
    readers: usize,
    writer: bool,
    waiting_writers: usize,
}

/// A writer-preference readers–writer lock supporting `Arc`-owned guards.
pub struct RwLock<T: ?Sized> {
    state: std::sync::Mutex<RwState>,
    reader_cv: std::sync::Condvar,
    writer_cv: std::sync::Condvar,
    data: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Create a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            state: std::sync::Mutex::new(RwState { readers: 0, writer: false, waiting_writers: 0 }),
            reader_cv: std::sync::Condvar::new(),
            writer_cv: std::sync::Condvar::new(),
            data: UnsafeCell::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    fn lock_shared(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while state.writer || state.waiting_writers > 0 {
            state = self.reader_cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        state.readers += 1;
    }

    fn lock_exclusive(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.waiting_writers += 1;
        while state.writer || state.readers > 0 {
            state = self.writer_cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        state.waiting_writers -= 1;
        state.writer = true;
    }

    fn unlock_shared(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.readers -= 1;
        if state.readers == 0 {
            self.writer_cv.notify_one();
        }
    }

    fn unlock_exclusive(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.writer = false;
        if state.waiting_writers > 0 {
            self.writer_cv.notify_one();
        } else {
            self.reader_cv.notify_all();
        }
    }

    /// Acquire a shared (read) lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.lock_shared();
        RwLockReadGuard { lock: self }
    }

    /// Acquire an exclusive (write) lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.lock_exclusive();
        RwLockWriteGuard { lock: self }
    }

    /// Whether any reader or writer currently holds the lock.
    pub fn is_locked(&self) -> bool {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.writer || state.readers > 0
    }
}

impl<T> RwLock<T> {
    /// Acquire a shared lock whose guard owns an `Arc` of the lock.
    pub fn read_arc(self: &Arc<Self>) -> ArcRwLockReadGuard<RawRwLock, T> {
        self.lock_shared();
        ArcRwLockReadGuard { lock: Arc::clone(self), marker: PhantomData }
    }

    /// Acquire an exclusive lock whose guard owns an `Arc` of the lock.
    pub fn write_arc(self: &Arc<Self>) -> ArcRwLockWriteGuard<RawRwLock, T> {
        self.lock_exclusive();
        ArcRwLockWriteGuard { lock: Arc::clone(self), marker: PhantomData }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: shared lock held for the guard's lifetime.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock_shared();
    }
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: exclusive lock held for the guard's lifetime.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: exclusive lock held for the guard's lifetime.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock_exclusive();
    }
}

/// Shared guard owning an `Arc` of its lock (from [`RwLock::read_arc`]).
pub struct ArcRwLockReadGuard<R, T> {
    lock: Arc<RwLock<T>>,
    marker: PhantomData<R>,
}

impl<R, T> Deref for ArcRwLockReadGuard<R, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: shared lock held for the guard's lifetime.
        unsafe { &*self.lock.data.get() }
    }
}

impl<R, T> Drop for ArcRwLockReadGuard<R, T> {
    fn drop(&mut self) {
        self.lock.unlock_shared();
    }
}

/// Exclusive guard owning an `Arc` of its lock (from [`RwLock::write_arc`]).
pub struct ArcRwLockWriteGuard<R, T> {
    lock: Arc<RwLock<T>>,
    marker: PhantomData<R>,
}

impl<R, T> Deref for ArcRwLockWriteGuard<R, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: exclusive lock held for the guard's lifetime.
        unsafe { &*self.lock.data.get() }
    }
}

impl<R, T> DerefMut for ArcRwLockWriteGuard<R, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: exclusive lock held for the guard's lifetime.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<R, T> Drop for ArcRwLockWriteGuard<R, T> {
    fn drop(&mut self) {
        self.lock.unlock_exclusive();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            *ready = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        handle.join().unwrap();
        assert!(*ready);
    }

    #[test]
    fn rwlock_arc_guards_release() {
        let lock = Arc::new(RwLock::new(0u32));
        {
            let mut w = lock.write_arc();
            *w = 7;
        }
        let r1 = lock.read_arc();
        let r2 = lock.read_arc();
        assert_eq!((*r1, *r2), (7, 7));
        drop((r1, r2));
        assert!(!lock.is_locked());
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
