//! `Serialize`/`Deserialize` impls for the std types used in wire messages.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;

use crate::de::{Deserialize, Deserializer, Error as DeError, MapAccess, SeqAccess, Visitor};
use crate::ser::{Serialize, SerializeMap, SerializeSeq, SerializeTuple, Serializer};

macro_rules! primitive_impl {
    ($ty:ty, $ser:ident, $de:ident, $visit:ident) => {
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self)
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct PrimVisitor;
                impl<'de> Visitor<'de> for PrimVisitor {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str(stringify!($ty))
                    }
                    fn $visit<E: DeError>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$de(PrimVisitor)
            }
        }
    };
}

primitive_impl!(bool, serialize_bool, deserialize_bool, visit_bool);
primitive_impl!(i8, serialize_i8, deserialize_i8, visit_i8);
primitive_impl!(i16, serialize_i16, deserialize_i16, visit_i16);
primitive_impl!(i32, serialize_i32, deserialize_i32, visit_i32);
primitive_impl!(i64, serialize_i64, deserialize_i64, visit_i64);
primitive_impl!(u8, serialize_u8, deserialize_u8, visit_u8);
primitive_impl!(u16, serialize_u16, deserialize_u16, visit_u16);
primitive_impl!(u32, serialize_u32, deserialize_u32, visit_u32);
primitive_impl!(u64, serialize_u64, deserialize_u64, visit_u64);
primitive_impl!(f32, serialize_f32, deserialize_f32, visit_f32);
primitive_impl!(f64, serialize_f64, deserialize_f64, visit_f64);
primitive_impl!(char, serialize_char, deserialize_char, visit_char);

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = u64::deserialize(deserializer)?;
        usize::try_from(v).map_err(|_| DeError::custom("usize overflow"))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: DeError>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: DeError>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: DeError>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: DeError>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Self::Value, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
            fn visit_unit<E: DeError>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct SetVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de> + Ord> Visitor<'de> for SetVisitor<T> {
            type Value = BTreeSet<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a set")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = BTreeSet::new();
                while let Some(item) = seq.next_element()? {
                    out.insert(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(SetVisitor(PhantomData))
    }
}

macro_rules! map_impl {
    ($map:ident, $($bound:path),*) => {
        impl<K: Serialize, V: Serialize> Serialize for $map<K, V>
        where
            K: $($bound +)*,
        {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut map = serializer.serialize_map(Some(self.len()))?;
                for (k, v) in self {
                    map.serialize_key(k)?;
                    map.serialize_value(v)?;
                }
                map.end()
            }
        }

        impl<'de, K, V> Deserialize<'de> for $map<K, V>
        where
            K: Deserialize<'de> $(+ $bound)*,
            V: Deserialize<'de>,
        {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct MapVisitor<K, V>(PhantomData<(K, V)>);
                impl<'de, K, V> Visitor<'de> for MapVisitor<K, V>
                where
                    K: Deserialize<'de> $(+ $bound)*,
                    V: Deserialize<'de>,
                {
                    type Value = $map<K, V>;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str("a map")
                    }
                    fn visit_map<A: MapAccess<'de>>(
                        self,
                        mut access: A,
                    ) -> Result<Self::Value, A::Error> {
                        let mut out = $map::new();
                        while let Some(key) = access.next_key()? {
                            let value = access.next_value()?;
                            out.insert(key, value);
                        }
                        Ok(out)
                    }
                }
                deserializer.deserialize_map(MapVisitor(PhantomData))
            }
        }
    };
}

map_impl!(BTreeMap, Ord);
map_impl!(HashMap, Eq, Hash);

macro_rules! tuple_impl {
    ($len:expr, $($idx:tt $name:ident),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple($len)?;
                $(tup.serialize_element(&self.$idx)?;)+
                tup.end()
            }
        }

        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct TupleVisitor<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($name),+> {
                    type Value = ($($name,)+);
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, "a tuple of length {}", $len)
                    }
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        Ok(($(
                            seq.next_element::<$name>()?
                                .ok_or_else(|| {
                                    <A::Error as DeError>::invalid_length($idx, &"tuple")
                                })?,
                        )+))
                    }
                }
                deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
            }
        }
    };
}

tuple_impl!(1, 0 T0);
tuple_impl!(2, 0 T0, 1 T1);
tuple_impl!(3, 0 T0, 1 T1, 2 T2);
tuple_impl!(4, 0 T0, 1 T1, 2 T2, 3 T3);
tuple_impl!(5, 0 T0, 1 T1, 2 T2, 3 T3, 4 T4);
tuple_impl!(6, 0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5);
