//! A vendored, minimal reimplementation of the serde data model.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! its own `serde` with exactly the API surface the repository uses: the
//! `Serialize`/`Deserialize` traits, the `Serializer`/`Deserializer` visitor
//! machinery, impls for the std types that appear in wire messages, and a
//! derive macro (see `serde_derive`) for structs and enums.
//!
//! It is intentionally NOT a drop-in replacement for all of serde — only the
//! positional, non-self-describing subset exercised by `lambda_net::wire`.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

pub use serde_derive::{Deserialize, Serialize};

mod impls;
