//! Serialization half of the data model.

use std::fmt::Display;

/// Error raised by a [`Serializer`].
pub trait Error: Sized + std::error::Error {
    /// Build an error from any displayable message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any serde data format.
pub trait Serialize {
    /// Serialize `self` into `serializer`.
    ///
    /// # Errors
    /// Whatever the serializer reports.
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

/// A serde output format.
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Sub-serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a `bool`.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i8`.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i16`.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i32`.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i64`.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u8`.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u16`.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u32`.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u64`.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f32`.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f64`.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `char`.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string slice.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize opaque bytes.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Option::None`.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Option::Some(value)`.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serialize `()`.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit struct.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit enum variant.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype struct.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype enum variant.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begin a sequence.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin a tuple.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begin a tuple struct.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begin a tuple enum variant.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begin a map.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begin a struct.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begin a struct enum variant.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
    /// True for human-readable formats (JSON-like). Binary formats say no.
    fn is_human_readable(&self) -> bool {
        false
    }
}

/// Sequence sub-serializer.
pub trait SerializeSeq {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one element.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the sequence.
    ///
    /// # Errors
    /// Format-specific.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple sub-serializer.
pub trait SerializeTuple {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one element.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple.
    ///
    /// # Errors
    /// Format-specific.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple-struct sub-serializer.
pub trait SerializeTupleStruct {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one field.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple struct.
    ///
    /// # Errors
    /// Format-specific.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple-variant sub-serializer.
pub trait SerializeTupleVariant {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one field.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the variant.
    ///
    /// # Errors
    /// Format-specific.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Map sub-serializer.
pub trait SerializeMap {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one key.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serialize one value.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the map.
    ///
    /// # Errors
    /// Format-specific.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct sub-serializer.
pub trait SerializeStruct {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one named field.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the struct.
    ///
    /// # Errors
    /// Format-specific.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct-variant sub-serializer.
pub trait SerializeStructVariant {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one named field.
    ///
    /// # Errors
    /// Format-specific.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the variant.
    ///
    /// # Errors
    /// Format-specific.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}
