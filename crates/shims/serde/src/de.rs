//! Deserialization half of the data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Error raised by a [`Deserializer`].
pub trait Error: Sized + std::error::Error {
    /// Build an error from any displayable message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A field the type requires was not present.
    fn missing_field(field: &'static str) -> Self {
        Error::custom(format_args!("missing field `{field}`"))
    }

    /// An enum variant index the type does not define.
    fn unknown_variant(variant: u32, expected: &'static [&'static str]) -> Self {
        Error::custom(format_args!("unknown variant index {variant}, expected one of {expected:?}"))
    }

    /// A sequence/tuple had the wrong number of elements.
    fn invalid_length(len: usize, expected: &dyn Expected) -> Self {
        Error::custom(format_args!("invalid length {len}, expected {expected}"))
    }
}

/// What a [`Visitor`] expected, for error messages.
pub trait Expected {
    /// Describe the expectation.
    ///
    /// # Errors
    /// Formatter errors.
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;
}

impl<'de, T: Visitor<'de>> Expected for T {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.expecting(formatter)
    }
}

impl Expected for &str {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        formatter.write_str(self)
    }
}

impl Display for dyn Expected + '_ {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        Expected::fmt(self, formatter)
    }
}

/// A data structure deserializable from any serde format.
pub trait Deserialize<'de>: Sized {
    /// Deserialize `Self` from `deserializer`.
    ///
    /// # Errors
    /// Format- or shape-specific.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// Types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// A stateful [`Deserialize`] (serde's seed mechanism).
pub trait DeserializeSeed<'de>: Sized {
    /// The produced value.
    type Value;
    /// Deserialize with this seed's state.
    ///
    /// # Errors
    /// Format- or shape-specific.
    fn deserialize<D>(self, deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D>(self, deserializer: D) -> Result<T, D::Error>
    where
        D: Deserializer<'de>,
    {
        T::deserialize(deserializer)
    }
}

/// A serde input format.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Self-describing dispatch (unsupported by positional formats).
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: the next value is a `bool`.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `i8`.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `i16`.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `i32`.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `i64`.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `i128` (defaults to unsupported).
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_i128<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, Self::Error> {
        Err(Self::Error::custom("i128 is not supported"))
    }
    /// Hint: `u128` (defaults to unsupported).
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_u128<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, Self::Error> {
        Err(Self::Error::custom("u128 is not supported"))
    }
    /// Hint: `u8`.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `u16`.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `u32`.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `u64`.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `f32`.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `f64`.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `char`.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: string slice.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: owned string.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: byte slice.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: owned bytes.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `Option`.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `()`.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: unit struct.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hint: newtype struct.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hint: variable-length sequence.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: fixed-length tuple.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hint: tuple struct.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hint: map.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: struct with named fields.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hint: enum.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hint: struct field / variant identifier.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Skip a value of any type.
    ///
    /// # Errors
    /// Format-specific.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// True for human-readable formats.
    fn is_human_readable(&self) -> bool {
        false
    }
}

macro_rules! visit_default {
    ($fn:ident, $ty:ty, $what:expr) => {
        /// Receive a value of this shape (default: type error).
        ///
        /// # Errors
        /// Defaults to a type-mismatch error.
        fn $fn<E: Error>(self, _v: $ty) -> Result<Self::Value, E> {
            Err(Error::custom(format_args!(concat!("unexpected ", $what))))
        }
    };
}

/// Drives deserialization of one value: the format calls back the matching
/// `visit_*` method.
pub trait Visitor<'de>: Sized {
    /// The value built by this visitor.
    type Value;

    /// Describe what this visitor expects (for error messages).
    ///
    /// # Errors
    /// Formatter errors.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    visit_default!(visit_bool, bool, "bool");
    visit_default!(visit_i8, i8, "i8");
    visit_default!(visit_i16, i16, "i16");
    visit_default!(visit_i32, i32, "i32");
    visit_default!(visit_i64, i64, "i64");
    visit_default!(visit_u8, u8, "u8");
    visit_default!(visit_u16, u16, "u16");
    visit_default!(visit_u32, u32, "u32");
    visit_default!(visit_u64, u64, "u64");
    visit_default!(visit_f32, f32, "f32");
    visit_default!(visit_f64, f64, "f64");
    visit_default!(visit_char, char, "char");

    /// Receive a borrowed string (defaults to [`Visitor::visit_str`]).
    ///
    /// # Errors
    /// Type-mismatch by default.
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    /// Receive a string slice.
    ///
    /// # Errors
    /// Type-mismatch by default.
    fn visit_str<E: Error>(self, _v: &str) -> Result<Self::Value, E> {
        Err(Error::custom("unexpected string"))
    }
    /// Receive an owned string (defaults to [`Visitor::visit_str`]).
    ///
    /// # Errors
    /// Type-mismatch by default.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    /// Receive borrowed bytes (defaults to [`Visitor::visit_bytes`]).
    ///
    /// # Errors
    /// Type-mismatch by default.
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }
    /// Receive a byte slice.
    ///
    /// # Errors
    /// Type-mismatch by default.
    fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
        Err(Error::custom("unexpected bytes"))
    }
    /// Receive owned bytes (defaults to [`Visitor::visit_bytes`]).
    ///
    /// # Errors
    /// Type-mismatch by default.
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }
    /// Receive `None`.
    ///
    /// # Errors
    /// Type-mismatch by default.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::custom("unexpected none"))
    }
    /// Receive `Some(value)`.
    ///
    /// # Errors
    /// Type-mismatch by default.
    fn visit_some<D: Deserializer<'de>>(self, _deserializer: D) -> Result<Self::Value, D::Error> {
        Err(Error::custom("unexpected some"))
    }
    /// Receive `()`.
    ///
    /// # Errors
    /// Type-mismatch by default.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::custom("unexpected unit"))
    }
    /// Receive a newtype struct.
    ///
    /// # Errors
    /// Type-mismatch by default.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        _deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        Err(Error::custom("unexpected newtype struct"))
    }
    /// Receive a sequence.
    ///
    /// # Errors
    /// Type-mismatch by default.
    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(Error::custom("unexpected sequence"))
    }
    /// Receive a map.
    ///
    /// # Errors
    /// Type-mismatch by default.
    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(Error::custom("unexpected map"))
    }
    /// Receive an enum.
    ///
    /// # Errors
    /// Type-mismatch by default.
    fn visit_enum<A: EnumAccess<'de>>(self, _data: A) -> Result<Self::Value, A::Error> {
        Err(Error::custom("unexpected enum"))
    }
}

/// Format-side access to sequence elements.
pub trait SeqAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Next element via a seed.
    ///
    /// # Errors
    /// Format-specific.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;
    /// Next element.
    ///
    /// # Errors
    /// Format-specific.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }
    /// Remaining length, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Format-side access to map entries.
pub trait MapAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Next key via a seed.
    ///
    /// # Errors
    /// Format-specific.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;
    /// Next value via a seed.
    ///
    /// # Errors
    /// Format-specific.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;
    /// Next key.
    ///
    /// # Errors
    /// Format-specific.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }
    /// Next value.
    ///
    /// # Errors
    /// Format-specific.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }
    /// Remaining length, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Format-side access to an enum value.
pub trait EnumAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Accessor for the variant payload.
    type Variant: VariantAccess<'de, Error = Self::Error>;
    /// Read the variant identifier via a seed.
    ///
    /// # Errors
    /// Format-specific.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;
    /// Read the variant identifier.
    ///
    /// # Errors
    /// Format-specific.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Format-side access to one enum variant's payload.
pub trait VariantAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// The variant has no payload.
    ///
    /// # Errors
    /// Format-specific.
    fn unit_variant(self) -> Result<(), Self::Error>;
    /// Newtype payload via a seed.
    ///
    /// # Errors
    /// Format-specific.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;
    /// Newtype payload.
    ///
    /// # Errors
    /// Format-specific.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }
    /// Tuple payload.
    ///
    /// # Errors
    /// Format-specific.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Struct payload.
    ///
    /// # Errors
    /// Format-specific.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of primitives into trivial deserializers (used for enum
/// variant indices).
pub trait IntoDeserializer<'de, E: Error> {
    /// The deserializer produced.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Wrap `self`.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// A deserializer holding one `u32` (enum variant index).
pub struct U32Deserializer<E> {
    value: u32,
    marker: PhantomData<E>,
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
    type Deserializer = U32Deserializer<E>;
    fn into_deserializer(self) -> U32Deserializer<E> {
        U32Deserializer { value: self, marker: PhantomData }
    }
}

macro_rules! u32_forward {
    ($($fn:ident)*) => {
        $(
            fn $fn<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                visitor.visit_u32(self.value)
            }
        )*
    };
}

impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
    type Error = E;

    u32_forward!(
        deserialize_any deserialize_bool deserialize_i8 deserialize_i16 deserialize_i32
        deserialize_i64 deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64
        deserialize_f32 deserialize_f64 deserialize_char deserialize_str deserialize_string
        deserialize_bytes deserialize_byte_buf deserialize_option deserialize_unit
        deserialize_seq deserialize_map deserialize_identifier deserialize_ignored_any
    );

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_tuple<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
}
