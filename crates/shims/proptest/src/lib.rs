//! Vendored, minimal `proptest`-compatible property-testing harness.
//!
//! Covers the surface this workspace uses: `proptest!`, `prop_oneof!`
//! (weighted and unweighted), `prop_assert*`, `any::<T>()`, integer-range and
//! simple `".{a,b}"` string strategies, tuples, `collection::{vec,
//! btree_map}`, `option::of`, `Just`, `prop_map`, and `prop_recursive`.
//! Cases are generated from a deterministic per-test seed. There is **no
//! shrinking**: a failing case reports its inputs and seed instead.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::Range;
    use std::sync::Arc;

    /// Random source handed to strategies.
    pub type TestRng = SmallRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { strat: self, f }
        }

        /// Type-erase into a cheaply clonable strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Build a recursive strategy: `self` is the leaf; `branch` maps a
        /// strategy for depth-`d` values to one for depth-`d+1` values.
        /// `depth` bounds nesting; the size hints are accepted for API
        /// compatibility but unused.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                let deeper = branch(strat.clone()).boxed();
                // 2:1 bias toward branching, bottoming out at the leaf.
                strat = Union::new(vec![(1, strat), (2, deeper)]).boxed();
            }
            strat
        }
    }

    /// Object-safe strategy facade backing [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A clonable, type-erased strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        strat: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.strat.generate(rng))
        }
    }

    /// Weighted choice between strategies of the same value type
    /// (the expansion of `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T: Debug> Union<T> {
        /// Build from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (weight, strat) in &self.arms {
                if pick < *weight {
                    return strat.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_strategy {
        ($($ty:ty),*) => {
            $(impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            })*
        };
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Types with a default "any value" strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($ty:ty),*) => {
            $(impl Arbitrary for $ty {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    use rand::RngCore;
                    rng.next_u64() as $ty
                }
            })*
        };
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen_bool(0.5)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            use rand::RngCore;
            // Raw bit patterns: exercises infinities, NaNs, subnormals.
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            use rand::RngCore;
            #[allow(clippy::cast_possible_truncation)]
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let options = ['a', 'Z', '0', ' ', '\u{00e9}', '\u{4e16}', '\u{1f600}', '\\', '"'];
            options[rng.gen_range(0..options.len())]
        }
    }

    /// Strategy for any value of `T` (see [`any`]).
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Unconstrained values of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    /// `&'static str` patterns act as string strategies. Only the simple
    /// `.{min,max}` regex shape (any chars, bounded length) is understood;
    /// that is the only shape this workspace uses.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (min, max) = parse_len_pattern(self)
                .unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
            let len = if max > min { rng.gen_range(min..max + 1) } else { min };
            let alphabet: &[char] = &[
                'a',
                'b',
                'z',
                'A',
                'Q',
                '0',
                '7',
                ' ',
                '_',
                '-',
                '/',
                '.',
                '\\',
                '"',
                '\'',
                '\u{00e9}',
                '\u{00df}',
                '\u{4e16}',
                '\u{754c}',
                '\u{1f600}',
            ];
            (0..len).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect()
        }
    }

    /// Parse `".{min,max}"` → `(min, max)`.
    fn parse_len_pattern(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (min, max) = rest.split_once(',')?;
        Some((min.trim().parse().ok()?, max.trim().parse().ok()?))
    }

    macro_rules! tuple_strategy {
        ($($idx:tt $name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(0 T0);
    tuple_strategy!(0 T0, 1 T1);
    tuple_strategy!(0 T0, 1 T1, 2 T2);
    tuple_strategy!(0 T0, 1 T1, 2 T2, 3 T3);
    tuple_strategy!(0 T0, 1 T1, 2 T2, 3 T3, 4 T4);
    tuple_strategy!(0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5);
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeMap;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = sample_len(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap` with entry count drawn from a range.
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Maps of `key`/`value` pairs with size in `size` (duplicate keys may
    /// reduce the final size, as in real proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord + Debug,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = sample_len(&self.size, rng);
            (0..len).map(|_| (self.key.generate(rng), self.value.generate(rng))).collect()
        }
    }

    fn sample_len(range: &Range<usize>, rng: &mut TestRng) -> usize {
        if range.end > range.start {
            rng.gen_range(range.clone())
        } else {
            range.start
        }
    }
}

pub mod option {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Option<S::Value>`.
    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    /// `None` a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod test_runner {
    use super::strategy::TestRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
        /// Maximum shrink iterations (accepted for API parity; shrinking
        /// in this shim is bounded by the strategy, not this knob).
        pub max_shrink_iters: u32,
        /// Upper bound on rejected (`prop_assume!`-filtered) cases.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 1024, max_global_rejects: 65_536 }
        }
    }

    /// A failed property case (from `prop_assert*`).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Execute `case` for each configured case with a deterministic rng.
    ///
    /// # Panics
    /// Panics (failing the test) on the first case returning `Err`.
    pub fn run<F>(config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for i in 0..u64::from(config.cases) {
            let seed = 0x9d8f_7a6b_5c4d_3e2f ^ (i.wrapping_mul(0x2545_F491_4F6C_DD1D));
            let mut rng = TestRng::seed_from_u64(seed);
            if let Err(err) = case(&mut rng) {
                panic!("proptest case {i} failed (seed {seed:#x}): {err}");
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Weighted (`w => strat`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(( $weight as u32, $crate::strategy::Strategy::boxed($strat) )),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(( 1u32, $crate::strategy::Strategy::boxed($strat) )),+
        ])
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// Without shrinking machinery, a skipped case simply counts as passing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Assert inside a property; failure fails the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError(format!($($fmt)+)),
            );
        }
    };
}

/// Assert two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r)
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l == r, $($fmt)+)
            }
        }
    };
}

/// Assert two values are not equal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r)
            }
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config = $config;
                $crate::test_runner::run(&__config, |__rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$attr])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_strings(n in 3u32..17, s in ".{0,8}", pair in (any::<u8>(), 0i64..5)) {
            prop_assert!((3..17).contains(&n));
            prop_assert!(s.chars().count() <= 8);
            let (_b, small) = pair;
            prop_assert!((0..5).contains(&small));
        }

        #[test]
        fn collections_and_options(
            v in crate::collection::vec(any::<u8>(), 0..9),
            m in crate::collection::btree_map(".{0,4}", any::<i64>(), 0..5),
            o in crate::option::of(any::<bool>()),
        ) {
            prop_assert!(v.len() < 9);
            prop_assert!(m.len() < 5);
            let _ = o;
        }

        #[test]
        fn oneof_weighted(x in prop_oneof![
            4 => (0u8..10).prop_map(u32::from),
            1 => Just(99u32),
        ]) {
            prop_assert!(x < 10 || x == 99);
        }
    }

    #[test]
    fn recursion_bottoms_out() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 1,
                T::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(T::Leaf).prop_recursive(4, 16, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(T::Node)
        });
        crate::test_runner::run(
            &ProptestConfig { cases: 128, ..ProptestConfig::default() },
            |rng| {
                let t = strat.generate(rng);
                if depth(&t) > 5 {
                    return Err(crate::test_runner::TestCaseError("too deep".into()));
                }
                Ok(())
            },
        );
    }
}
