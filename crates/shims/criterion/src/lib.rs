//! Vendored, minimal `criterion`-compatible benchmark harness.
//!
//! Runs each benchmark for a fixed short measurement window, reports
//! mean time per iteration and derived throughput on stdout. No statistics,
//! no plotting, no baseline comparison — just enough to keep `cargo bench`
//! compiling and producing useful numbers offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized in [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small setup output; batches of a few thousand.
    SmallInput,
    /// Large setup output; one setup per measurement.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    measure: Duration,
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly for the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..3 {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measure {
            black_box(routine());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.total = start.elapsed();
    }

    /// Time `routine` on inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..3 {
            black_box(routine(setup()));
        }
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        while total < self.measure {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.iters = iters.max(1);
        self.total = total;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    measure: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the work performed per iteration for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; sampling is time-based here.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Shorten/lengthen the per-benchmark measurement window.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.measure = window;
        self
    }

    /// Run one benchmark and print its result.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { measure: self.measure, iters: 1, total: Duration::ZERO };
        f(&mut bencher);
        let per_iter = bencher.total.as_nanos() as f64 / bencher.iters as f64;
        let mut line = format!(
            "{}/{:<28} {:>12.1} ns/iter ({} iters)",
            self.name, id, per_iter, bencher.iters
        );
        if let Some(tp) = self.throughput {
            let per_sec = match tp {
                Throughput::Elements(n) => {
                    format!("{:>12.0} elem/s", n as f64 * 1e9 / per_iter)
                }
                Throughput::Bytes(n) => {
                    format!("{:>12.1} MiB/s", n as f64 * 1e9 / per_iter / (1024.0 * 1024.0))
                }
            };
            line.push_str("  ");
            line.push_str(&per_sec);
        }
        println!("{line}");
        self
    }

    /// End the group (printing is immediate; this is a no-op for parity).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep offline benches quick: the harness favors completion over
        // statistical power. CRITERION_MEASURE_MS overrides.
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion { measure: Duration::from_millis(ms) }
    }
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let measure = self.measure;
        BenchmarkGroup { name: name.to_string(), throughput: None, measure, _criterion: self }
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
