//! The invocation engine: executes object methods with invocation
//! linearizability, consistent caching and nested-call semantics.
//!
//! This is the component the paper co-locates with storage (§4.2): it owns
//! the per-object scheduler, runs methods (bytecode via the metered VM, or
//! trusted native code) against a write buffer, commits each invocation's
//! write set as one atomic batch, and maintains the consistent result
//! cache.

use std::sync::Arc;
use std::time::Instant;

use lambda_kv::{Db, WriteBatch};
use lambda_telemetry::{Counter, InvocationContext, Registry, Stage};
use lambda_vm::{HostError, Interpreter, Limits, VmValue};

use crate::cache::{CacheStats, ConsistentCache};
use crate::error::{encode_error, InvokeError, Result};
use crate::host::{NestedInvoker, ObjectHost};
use crate::keys;
use crate::object::{MethodSet, ObjectId, ObjectType, TypeRegistry};
use crate::scheduler::{Scheduler, SchedulerMode, SchedulerStats};

/// Routes nested cross-object invocations. In a single-node deployment the
/// engine recurses locally; in LambdaStore the router checks the shard map
/// and forwards to the responsible primary.
pub trait InvokeRouter: Send + Sync {
    /// Invoke `method` on `target` on behalf of `source`. `ctx` is the
    /// originating invocation's context (trace identity + remaining
    /// deadline budget — forwarded hops must re-serialize the remaining
    /// budget, not the original). `depth` is the nesting depth of the new
    /// invocation (for runaway-recursion limits; no locks are held across
    /// the boundary, §3.1).
    ///
    /// # Errors
    /// Any invocation failure.
    fn route(
        &self,
        ctx: &InvocationContext,
        source: &ObjectId,
        target: &ObjectId,
        method: &str,
        args: Vec<VmValue>,
        depth: usize,
    ) -> Result<VmValue>;
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// VM resource ceilings per invocation.
    pub limits: Limits,
    /// Consistent-cache capacity in entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Scheduler discipline.
    pub scheduler: SchedulerMode,
    /// Maximum nested-invocation depth.
    pub max_depth: usize,
    /// Lowered-bytecode cache capacity in modules (0 re-lowers every
    /// invocation).
    pub lowered_cache_capacity: usize,
    /// Run the reference (match-decode) interpreter instead of the
    /// threaded one — for differential testing and before/after
    /// benchmarking of the dispatch rewrite.
    pub reference_interpreter: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            limits: Limits::default(),
            cache_capacity: 4096,
            scheduler: SchedulerMode::PerObject,
            max_depth: 16,
            lowered_cache_capacity: lambda_vm::DEFAULT_LOWERED_CACHE_CAPACITY,
            reference_interpreter: false,
        }
    }
}

/// Remembered invocation results per object. Each committed external
/// mutation stores its result under the object's dedup prefix; when the
/// window overflows, the records with the lowest commit versions are
/// evicted in the same atomic batch. A duplicate arriving after its record
/// was evicted re-executes — the window bounds storage, and a client whose
/// retries span more than `DEDUP_WINDOW` intervening commits has long
/// exhausted its deadline budget.
pub const DEDUP_WINDOW: usize = 32;

/// Engine operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Completed invocations (committed or read-only).
    pub invocations: u64,
    /// Invocations that failed/aborted (no writes applied).
    pub aborts: u64,
    /// Nested cross-object calls performed.
    pub nested_calls: u64,
    /// Atomic commits applied.
    pub commits: u64,
    /// Results served from the consistent cache.
    pub cache_hits: u64,
    /// Redelivered mutations answered from the dedup window.
    pub duplicates_suppressed: u64,
    /// Cache behaviour details.
    pub cache: CacheStats,
    /// Scheduler behaviour details.
    pub scheduler: SchedulerStats,
}

/// Observes every committed write batch — LambdaStore installs a hook that
/// synchronously replicates the batch to backup replicas (§4.2.1). The hook
/// runs after the local apply; an error is surfaced to the invoker.
/// One replicated write set: `(key, Some(value))` puts / `(key, None)`
/// deletes, as shipped by primary-to-backup replication.
pub type WriteSetOps = Vec<(Vec<u8>, Option<Vec<u8>>)>;

/// Completion for a deferred commit-hook fan-out: invoked exactly once
/// with the replication outcome.
pub type CommitCallback = Box<dyn FnOnce(std::result::Result<(), String>) + Send>;

/// Completion for a deferred invocation: invoked exactly once with the
/// final result.
pub type InvokeCompletion = Box<dyn FnOnce(Result<VmValue>) + Send>;

/// A recorded read set: keys and value hashes, as cached by the
/// consistent result cache (§4.2.2).
pub type ReadSet = Vec<(Vec<u8>, u64)>;

/// Completion for a deferred invocation that also wants the recorded read
/// set. The read set is `Some` only for cacheable (deterministic
/// read-only) invocations; mutating or non-deterministic calls yield
/// `None`.
pub type TrackedCompletion = Box<dyn FnOnce(Result<(VmValue, Option<ReadSet>)>) + Send>;

pub trait CommitHook: Send + Sync {
    /// Called with the object and the operations just committed locally
    /// (`None` value = deletion). `ctx` carries the committing
    /// invocation's trace identity and remaining deadline budget so
    /// replication RPCs can be bounded by it.
    ///
    /// # Errors
    /// A string describing the replication failure.
    fn on_commit(
        &self,
        ctx: &InvocationContext,
        object: &ObjectId,
        ops: &[(Vec<u8>, Option<Vec<u8>>)],
    ) -> std::result::Result<(), String>;

    /// Deferred variant used by the non-blocking invocation pipeline:
    /// implementations that replicate over the network should kick off the
    /// fan-out and complete `done` from their ack-processing thread instead
    /// of parking this one. The default falls back to the blocking
    /// [`on_commit`](CommitHook::on_commit) and completes inline.
    fn on_commit_deferred(
        &self,
        ctx: &InvocationContext,
        object: &ObjectId,
        ops: WriteSetOps,
        done: CommitCallback,
    ) {
        done(self.on_commit(ctx, object, &ops));
    }
}

/// Oldest-first (commit version, storage key) queue of one object's live
/// dedup records.
type DedupWindow = std::collections::VecDeque<(u64, Vec<u8>)>;

/// The LambdaObjects execution engine of one storage node.
pub struct Engine {
    db: Db,
    types: Arc<TypeRegistry>,
    cache: ConsistentCache,
    cache_enabled: bool,
    scheduler: Scheduler,
    interpreter: Interpreter,
    router: parking_lot::RwLock<Option<Arc<dyn InvokeRouter>>>,
    commit_hook: parking_lot::RwLock<Option<Arc<dyn CommitHook>>>,
    /// Per-object dedup-record eviction order, oldest first. Purely an
    /// index over what is already in storage (lazily rebuilt on first
    /// touch), so that retiring old records on the hot path does not
    /// re-scan the dedup prefix — which walks one tombstone per record
    /// ever retired and turns sustained single-object load quadratic.
    dedup_windows: parking_lot::Mutex<std::collections::BTreeMap<ObjectId, DedupWindow>>,
    max_depth: usize,
    registry: Arc<Registry>,
    invocations: Counter,
    aborts: Counter,
    nested_calls: Counter,
    commits: Counter,
    cache_hits: Counter,
    duplicates_suppressed: Counter,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine").field("types", &self.types.type_names()).finish()
    }
}

impl Engine {
    /// Build an engine over an open database with a private telemetry
    /// registry.
    pub fn new(db: Db, types: Arc<TypeRegistry>, config: EngineConfig) -> Engine {
        Engine::with_registry(db, types, config, Registry::shared())
    }

    /// Build an engine that reports through `registry` — the node-wide
    /// registry shared with the kv layer and the RPC handler, so
    /// `EngineStats`, `SchedulerStats` and the node's wire stats are all
    /// views over one set of cells.
    pub fn with_registry(
        db: Db,
        types: Arc<TypeRegistry>,
        config: EngineConfig,
        registry: Arc<Registry>,
    ) -> Engine {
        Engine {
            db,
            types,
            cache: ConsistentCache::new(config.cache_capacity),
            cache_enabled: config.cache_capacity > 0,
            scheduler: Scheduler::with_registry(config.scheduler, &registry),
            interpreter: if config.reference_interpreter {
                Interpreter::reference(config.limits)
            } else {
                Interpreter::with_cache_capacity(config.limits, config.lowered_cache_capacity)
            },
            router: parking_lot::RwLock::new(None),
            commit_hook: parking_lot::RwLock::new(None),
            dedup_windows: parking_lot::Mutex::new(std::collections::BTreeMap::new()),
            max_depth: config.max_depth,
            invocations: registry.counter("eng_invocations"),
            aborts: registry.counter("eng_aborts"),
            nested_calls: registry.counter("eng_nested_calls"),
            commits: registry.counter("eng_commits"),
            cache_hits: registry.counter("eng_cache_hits"),
            duplicates_suppressed: registry.counter("eng_duplicates_suppressed"),
            registry,
        }
    }

    /// The telemetry registry this engine reports through.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Install the cross-shard router (LambdaStore does this at startup).
    pub fn set_router(&self, router: Arc<dyn InvokeRouter>) {
        *self.router.write() = Some(router);
    }

    /// Install the replication hook (LambdaStore does this at startup).
    pub fn set_commit_hook(&self, hook: Arc<dyn CommitHook>) {
        *self.commit_hook.write() = Some(hook);
    }

    /// Run the commit hook for `batch` (already applied locally), timing
    /// the replication fan-out as the invocation's `replicate` span.
    fn run_commit_hook(
        &self,
        ctx: &InvocationContext,
        object: &ObjectId,
        batch: &WriteBatch,
    ) -> Result<()> {
        let hook = self.commit_hook.read().clone();
        if let Some(hook) = hook {
            let ops: Vec<(Vec<u8>, Option<Vec<u8>>)> = batch
                .iter()
                .map(|op| match op {
                    lambda_kv::batch::BatchOp::Put { key, value } => {
                        (key.clone(), Some(value.clone()))
                    }
                    lambda_kv::batch::BatchOp::Delete { key } => (key.clone(), None),
                })
                .collect();
            let start = Instant::now();
            let result = hook.on_commit(ctx, object, &ops);
            self.registry.record_span(ctx.trace_id, Stage::Replicate, start.elapsed());
            result.map_err(crate::error::decode_hook_error)?;
        }
        Ok(())
    }

    /// Apply a batch produced on another node (the backup side of
    /// replication or a migration install): writes directly, bypassing the
    /// commit hook, and invalidates overlapping cache entries.
    ///
    /// # Errors
    /// Storage failures.
    pub fn apply_replicated(
        &self,
        object: &ObjectId,
        ops: &[(Vec<u8>, Option<Vec<u8>>)],
    ) -> Result<()> {
        let _guard = self.scheduler.acquire_exclusive(object, &[]);
        let mut batch = WriteBatch::new();
        let mut keys: Vec<&[u8]> = Vec::with_capacity(ops.len());
        for (key, value) in ops {
            keys.push(key);
            match value {
                Some(v) => {
                    batch.put(key.clone(), v.clone());
                }
                None => {
                    batch.delete(key.clone());
                }
            }
        }
        self.db.write(batch)?;
        self.cache.invalidate_keys(keys.into_iter().map(|k| k as &[u8]));
        self.forget_dedup_window(object);
        Ok(())
    }

    /// Apply a window of replicated write sets (the backup side of batched
    /// replication): all entries land in **one** storage batch — atomically
    /// and in commit order — under exclusive guards for every touched
    /// object.
    ///
    /// Guards are acquired in sorted object order so concurrent window
    /// appliers cannot deadlock; windows for different shards touch
    /// disjoint objects anyway, but sorting removes the assumption.
    ///
    /// # Errors
    /// Storage failures (the whole window fails together; nothing applied).
    pub fn apply_replicated_batch(&self, entries: &[(ObjectId, WriteSetOps)]) -> Result<()> {
        let mut objects: Vec<&ObjectId> = entries.iter().map(|(o, _)| o).collect();
        objects.sort();
        objects.dedup();
        let _guards: Vec<_> =
            objects.iter().map(|o| self.scheduler.acquire_exclusive(o, &[])).collect();

        let mut batch = WriteBatch::new();
        let mut keys: Vec<&[u8]> = Vec::new();
        for (_, ops) in entries {
            for (key, value) in ops {
                keys.push(key);
                match value {
                    Some(v) => {
                        batch.put(key.clone(), v.clone());
                    }
                    None => {
                        batch.delete(key.clone());
                    }
                }
            }
        }
        if batch.is_empty() {
            return Ok(());
        }
        self.db.write(batch)?;
        self.cache.invalidate_keys(keys.into_iter().map(|k| k as &[u8]));
        for object in objects {
            self.forget_dedup_window(object);
        }
        Ok(())
    }

    /// The underlying database (used by replication and migration).
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// The type registry.
    pub fn types(&self) -> &TypeRegistry {
        &self.types
    }

    // -- Object lifecycle ---------------------------------------------------

    /// Instantiate an object of `type_name` with initial scalar fields.
    ///
    /// # Errors
    /// [`InvokeError::UnknownType`] / [`InvokeError::AlreadyExists`], plus
    /// storage failures.
    pub fn create_object(
        &self,
        type_name: &str,
        id: &ObjectId,
        fields: &[(&str, &[u8])],
    ) -> Result<()> {
        if self.types.get(type_name).is_none() {
            return Err(InvokeError::UnknownType(type_name.to_string()));
        }
        let _guard = self.scheduler.acquire_exclusive(id, &[]);
        if self.db.get(&keys::meta_key(id))?.is_some() {
            return Err(InvokeError::AlreadyExists(id.to_string()));
        }
        let mut batch = WriteBatch::new();
        batch.put(keys::meta_key(id), type_name.as_bytes().to_vec());
        for (field, value) in fields {
            batch.put(keys::field_key(id, field.as_bytes()), value.to_vec());
        }
        self.db.write(batch.clone())?;
        self.run_commit_hook(&InvocationContext::background(), id, &batch)?;
        Ok(())
    }

    /// True when `id` exists on this node.
    pub fn object_exists(&self, id: &ObjectId) -> bool {
        matches!(self.db.get(&keys::meta_key(id)), Ok(Some(_)))
    }

    /// The type name of `id`.
    ///
    /// # Errors
    /// [`InvokeError::UnknownObject`] when absent.
    pub fn object_type_name(&self, id: &ObjectId) -> Result<String> {
        match self.db.get(&keys::meta_key(id))? {
            Some(bytes) => Ok(String::from_utf8_lossy(&bytes).into_owned()),
            None => Err(InvokeError::UnknownObject(id.to_string())),
        }
    }

    /// Remove an object and all its data.
    ///
    /// # Errors
    /// Storage failures; deleting a missing object is a no-op.
    pub fn delete_object(&self, id: &ObjectId) -> Result<()> {
        let _guard = self.scheduler.acquire_exclusive(id, &[]);
        let prefix = keys::object_prefix(id);
        let mut batch = WriteBatch::new();
        for (key, _) in self.db.scan_prefix(&prefix) {
            batch.delete(key);
        }
        if !batch.is_empty() {
            self.db.write(batch.clone())?;
            self.run_commit_hook(&InvocationContext::background(), id, &batch)?;
        }
        self.cache.invalidate_object(id);
        self.forget_dedup_window(id);
        Ok(())
    }

    /// Enumerate every object stored on this node (admin/rebalancing use;
    /// scans the meta keys).
    pub fn list_objects(&self) -> Vec<ObjectId> {
        self.db
            .scan_prefix(b"o")
            .filter_map(|(key, _)| {
                let (id, suffix) = keys::split_key(&key)?;
                (suffix == b"m").then_some(id)
            })
            .collect()
    }

    /// The commit version of `id` (0 before its first mutating commit).
    pub fn object_version(&self, id: &ObjectId) -> u64 {
        self.db
            .get(&keys::version_key(id))
            .ok()
            .flatten()
            .and_then(|v| v.try_into().ok())
            .map(u64::from_le_bytes)
            .unwrap_or(0)
    }

    // -- Invocation ----------------------------------------------------------

    /// Invoke a public method from outside (a client request) under a
    /// fresh unbounded context.
    ///
    /// # Errors
    /// Any [`InvokeError`]; on error no writes were applied (beyond those
    /// committed by nested-call boundaries per §3.1).
    pub fn invoke(&self, object: &ObjectId, method: &str, args: Vec<VmValue>) -> Result<VmValue> {
        self.invoke_ctx(&InvocationContext::background(), object, method, args, true, 0)
    }

    /// Full-control invocation entry used by routers and replication:
    /// `external` enforces the `public` flag, `depth` is the nesting depth
    /// (0 for client-facing invocations). Runs under a fresh unbounded
    /// context; deadline-carrying callers use [`Engine::invoke_ctx`].
    ///
    /// # Errors
    /// Any [`InvokeError`].
    pub fn invoke_with_depth(
        &self,
        object: &ObjectId,
        method: &str,
        args: Vec<VmValue>,
        external: bool,
        depth: usize,
    ) -> Result<VmValue> {
        self.invoke_ctx(&InvocationContext::background(), object, method, args, external, depth)
    }

    /// Invoke under an explicit [`InvocationContext`]: the queue wait,
    /// method execution, kv commit and replication fan-out are each
    /// recorded as a span against `ctx.trace_id`, and an invocation whose
    /// deadline expires while queued is shed before execution with
    /// [`InvokeError::DeadlineExceeded`].
    ///
    /// # Errors
    /// Any [`InvokeError`].
    pub fn invoke_ctx(
        &self,
        ctx: &InvocationContext,
        object: &ObjectId,
        method: &str,
        args: Vec<VmValue>,
        external: bool,
        depth: usize,
    ) -> Result<VmValue> {
        if depth >= self.max_depth {
            return Err(InvokeError::DepthExceeded);
        }
        let ty = self.object_type(object)?;
        let meta =
            ty.method_meta(method).ok_or_else(|| InvokeError::UnknownMethod(method.to_string()))?;
        if external && !meta.public {
            return Err(InvokeError::NotPublic(method.to_string()));
        }

        let cacheable = self.cache_enabled && meta.read_only && meta.deterministic;
        if cacheable {
            // Plain O(1) lookup: every write path invalidates eagerly, so
            // resident entries are valid by construction (§4.2.2).
            if let Some(hit) = self.cache.lookup(object, method, &args) {
                self.cache_hits.incr();
                self.invocations.incr();
                return Ok(hit);
            }
        }

        // Queue span: time spent waiting behind the per-object lock. The
        // scheduler re-checks the deadline at dequeue and sheds expired
        // work here — before any execute/commit cycles are spent on it.
        let queue_start = Instant::now();
        let guard = match self.scheduler.acquire_ctx(object, &[], !meta.read_only, ctx) {
            Ok(guard) => guard,
            Err(e) => {
                self.aborts.incr();
                return Err(e);
            }
        };
        self.registry.record_span(ctx.trace_id, Stage::Queue, queue_start.elapsed());

        // Exactly-once under retries: a redelivered mutation (the client
        // re-sent after a lost ack) whose invocation id is still in the
        // object's dedup window is answered from the recorded result
        // without re-executing. Checked under the object guard, so the
        // first delivery's commit is fully visible here.
        let dedup = external && !meta.read_only && ctx.invocation_id != 0;
        if dedup {
            if let Some(rec) = self.db.get(&keys::dedup_key(object, ctx.invocation_id))? {
                if let Some(result) = decode_dedup_record(&rec) {
                    self.duplicates_suppressed.incr();
                    self.invocations.incr();
                    return Ok(result);
                }
            }
        }

        let snapshot_seq = self.db.last_sequence();
        let mut host = ObjectHost::new(
            &self.db,
            object.clone(),
            snapshot_seq,
            meta.read_only,
            cacheable,
            Some(self),
            depth,
            Some(guard),
        );
        host.ctx = *ctx;

        // Execute span: the method body proper (nested calls and their
        // commits run inside it; their own spans break that down).
        let exec_start = Instant::now();
        let outcome: std::result::Result<VmValue, InvokeError> = match &ty.methods {
            MethodSet::Bytecode(module) => self
                .interpreter
                .execute(module, method, args.clone(), &mut host)
                .map_err(InvokeError::from),
            MethodSet::Native(reg) => {
                reg.invoke(method, args.clone(), &mut host).map_err(InvokeError::from)
            }
        };
        self.registry.record_span(ctx.trace_id, Stage::Execute, exec_start.elapsed());
        self.nested_calls.add(host.nested_calls);

        match outcome {
            Ok(value) => {
                let read_set = host.buffer.read_set();
                debug_assert!(
                    !meta.read_only || host.buffer.is_clean(),
                    "read-only invocation buffered writes"
                );
                if !host.buffer.is_clean() {
                    let written = host.buffer.written_keys();
                    let mut batch = host.buffer.take_batch();
                    if dedup {
                        // The record joins the invocation's own write set,
                        // so one atomic commit makes the effects and the
                        // memory of them durable together — and the same
                        // ops replicate to backups, preserving exactly-once
                        // across failover.
                        self.append_dedup_record(object, ctx.invocation_id, &value, &mut batch);
                    }
                    self.commit_batch(ctx, object, batch, &written)?;
                }
                // The insert happens while the object guard is still held:
                // a concurrent exclusive apply (replication landing this
                // object's next write) is then ordered entirely before or
                // after this read — never between its snapshot and its
                // cache insert, which is the window where a stale result
                // could be recorded *after* the apply's eager invalidation
                // already ran and serve trusted hits forever after.
                let guard = host.guard.take();
                drop(host);
                self.invocations.incr();
                if cacheable {
                    self.cache.insert(object, method, &args, value.clone(), read_set);
                }
                drop(guard);
                Ok(value)
            }
            Err(e) => {
                host.buffer.discard();
                drop(host);
                self.aborts.incr();
                // Unwrap nested-error encoding so callers see the original.
                if let InvokeError::Nested(msg) = &e {
                    if msg.contains('\x1f') {
                        return Err(crate::error::decode_error(msg));
                    }
                }
                Err(e)
            }
        }
    }

    /// Invoke without parking this thread: `done` runs exactly once with
    /// the invocation's result, on whichever thread drives the final step —
    /// inline when everything is free, the lock-releasing thread when the
    /// invocation queued behind the object, the group-commit leader's
    /// thread after the kv write, or the replication ack thread when the
    /// commit hook defers.
    ///
    /// Semantically identical to [`Engine::invoke_ctx`] at depth 0: same
    /// cache, dedup, scheduling, span and counter behaviour. Nested calls
    /// made *by* the method still run synchronously on the executing
    /// thread (they are bounded by `max_depth`, not by client fan-in).
    pub fn invoke_deferred(
        self: &Arc<Self>,
        ctx: &InvocationContext,
        object: &ObjectId,
        method: &str,
        args: Vec<VmValue>,
        external: bool,
        done: InvokeCompletion,
    ) {
        self.invoke_deferred_tracked(
            ctx,
            object,
            method,
            args,
            external,
            Box::new(move |r| done(r.map(|(v, _)| v))),
        );
    }

    /// [`invoke_deferred`](Engine::invoke_deferred), but the completion
    /// also receives the invocation's recorded read set when the method is
    /// cacheable — from the cache entry on a hit, from the execution's
    /// read buffer on a miss. Servers use this to feed client-edge result
    /// caches without a second execution.
    pub fn invoke_deferred_tracked(
        self: &Arc<Self>,
        ctx: &InvocationContext,
        object: &ObjectId,
        method: &str,
        args: Vec<VmValue>,
        external: bool,
        done: TrackedCompletion,
    ) {
        let ty = match self.object_type(object) {
            Ok(ty) => ty,
            Err(e) => {
                done(Err(e));
                return;
            }
        };
        let meta = match ty.method_meta(method) {
            Some(m) => m,
            None => {
                done(Err(InvokeError::UnknownMethod(method.to_string())));
                return;
            }
        };
        if external && !meta.public {
            done(Err(InvokeError::NotPublic(method.to_string())));
            return;
        }
        let read_only = meta.read_only;
        let cacheable = self.cache_enabled && read_only && meta.deterministic;
        if cacheable {
            if let Some((hit, read_set)) = self.cache.lookup_with_read_set(object, method, &args) {
                self.cache_hits.incr();
                self.invocations.incr();
                done(Ok((hit, Some(read_set))));
                return;
            }
        }

        let this = Arc::clone(self);
        let ctx = *ctx;
        let obj = object.clone();
        let method = method.to_string();
        let queue_start = Instant::now();
        self.scheduler.acquire_deferred(
            object,
            &[],
            !read_only,
            &ctx,
            Box::new(move |granted| match granted {
                Err(e) => {
                    this.aborts.incr();
                    done(Err(e));
                }
                Ok(guard) => {
                    this.registry.record_span(ctx.trace_id, Stage::Queue, queue_start.elapsed());
                    this.execute_granted(
                        ctx, obj, ty, method, args, external, read_only, cacheable, guard, done,
                    );
                }
            }),
        );
    }

    /// The execute step of a deferred invocation: runs on the thread that
    /// was granted the object lock. The VM itself executes synchronously
    /// here; only the commit/replicate tail defers further.
    #[allow(clippy::too_many_arguments)]
    fn execute_granted(
        self: &Arc<Self>,
        ctx: InvocationContext,
        object: ObjectId,
        ty: Arc<ObjectType>,
        method: String,
        args: Vec<VmValue>,
        external: bool,
        read_only: bool,
        cacheable: bool,
        guard: crate::scheduler::ObjectGuard,
        done: TrackedCompletion,
    ) {
        // Exactly-once under retries, as in the sync path: checked under
        // the object guard so the first delivery's commit is visible.
        let dedup = external && !read_only && ctx.invocation_id != 0;
        if dedup {
            match self.db.get(&keys::dedup_key(&object, ctx.invocation_id)) {
                Ok(Some(rec)) => {
                    if let Some(result) = decode_dedup_record(&rec) {
                        self.duplicates_suppressed.incr();
                        self.invocations.incr();
                        drop(guard);
                        done(Ok((result, None)));
                        return;
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    drop(guard);
                    done(Err(e.into()));
                    return;
                }
            }
        }

        let snapshot_seq = self.db.last_sequence();
        let mut host = ObjectHost::new(
            &self.db,
            object.clone(),
            snapshot_seq,
            read_only,
            cacheable,
            Some(self.as_ref()),
            0,
            Some(guard),
        );
        host.ctx = ctx;

        let exec_start = Instant::now();
        let outcome: std::result::Result<VmValue, InvokeError> = match &ty.methods {
            MethodSet::Bytecode(module) => self
                .interpreter
                .execute(module, &method, args.clone(), &mut host)
                .map_err(InvokeError::from),
            MethodSet::Native(reg) => {
                reg.invoke(&method, args.clone(), &mut host).map_err(InvokeError::from)
            }
        };
        self.registry.record_span(ctx.trace_id, Stage::Execute, exec_start.elapsed());
        self.nested_calls.add(host.nested_calls);

        match outcome {
            Ok(value) => {
                let read_set = host.buffer.read_set();
                debug_assert!(
                    !read_only || host.buffer.is_clean(),
                    "read-only invocation buffered writes"
                );
                if !host.buffer.is_clean() {
                    let written = host.buffer.written_keys();
                    let mut batch = host.buffer.take_batch();
                    if dedup {
                        self.append_dedup_record(&object, ctx.invocation_id, &value, &mut batch);
                    }
                    // Keep the object guard alive through commit and
                    // replication: it travels into the completion chain and
                    // is dropped (releasing the lock) wherever the chain
                    // finishes.
                    let guard = host.guard.take();
                    drop(host);
                    let done: InvokeCompletion = Box::new(move |r| done(r.map(|v| (v, None))));
                    self.commit_deferred(ctx, object, batch, written, guard, value, done);
                    return;
                }
                // Insert under the object guard — see `invoke_ctx` for why
                // releasing first would let a concurrent replicated apply
                // invalidate *before* the stale insert lands.
                let guard = host.guard.take();
                drop(host);
                self.invocations.incr();
                if cacheable {
                    self.cache.insert(&object, &method, &args, value.clone(), read_set.clone());
                }
                drop(guard);
                done(Ok((value, cacheable.then_some(read_set))));
            }
            Err(e) => {
                host.buffer.discard();
                drop(host);
                self.aborts.incr();
                if let InvokeError::Nested(msg) = &e {
                    if msg.contains('\x1f') {
                        done(Err(crate::error::decode_error(msg)));
                        return;
                    }
                }
                done(Err(e));
            }
        }
    }

    /// The commit/replicate tail of a deferred invocation: hand the batch
    /// to the deferred group commit, then (on the committing thread) run
    /// the commit hook's deferred fan-out, and finally complete `done`.
    #[allow(clippy::too_many_arguments)]
    fn commit_deferred(
        self: &Arc<Self>,
        ctx: InvocationContext,
        object: ObjectId,
        mut batch: WriteBatch,
        written_keys: Vec<Vec<u8>>,
        guard: Option<crate::scheduler::ObjectGuard>,
        value: VmValue,
        done: InvokeCompletion,
    ) {
        let vkey = keys::version_key(&object);
        let version = self.object_version(&object) + 1;
        batch.put(vkey.clone(), version.to_le_bytes().to_vec());
        let commit_start = Instant::now();
        let this = Arc::clone(self);
        let hook_batch = batch.clone();
        self.db.write_deferred(
            batch,
            Box::new(move |res| {
                this.registry.record_span(ctx.trace_id, Stage::Commit, commit_start.elapsed());
                if let Err(e) = res {
                    drop(guard);
                    done(Err(e.into()));
                    return;
                }
                let hook = this.commit_hook.read().clone();
                match hook {
                    None => this.finish_commit(object, vkey, written_keys, guard, Ok(value), done),
                    Some(hook) => {
                        let ops: WriteSetOps = hook_batch
                            .iter()
                            .map(|op| match op {
                                lambda_kv::batch::BatchOp::Put { key, value } => {
                                    (key.clone(), Some(value.clone()))
                                }
                                lambda_kv::batch::BatchOp::Delete { key } => (key.clone(), None),
                            })
                            .collect();
                        let this2 = Arc::clone(&this);
                        let obj = object.clone();
                        let replicate_start = Instant::now();
                        hook.on_commit_deferred(
                            &ctx,
                            &object,
                            ops,
                            Box::new(move |hook_res| {
                                this2.registry.record_span(
                                    ctx.trace_id,
                                    Stage::Replicate,
                                    replicate_start.elapsed(),
                                );
                                let result = match hook_res {
                                    Ok(()) => Ok(value),
                                    Err(msg) => Err(crate::error::decode_hook_error(msg)),
                                };
                                this2.finish_commit(obj, vkey, written_keys, guard, result, done);
                            }),
                        );
                    }
                }
            }),
        );
    }

    /// Last step of a deferred mutating invocation: bump counters,
    /// invalidate overlapping cache entries, release the object lock and
    /// complete the caller.
    fn finish_commit(
        &self,
        _object: ObjectId,
        vkey: Vec<u8>,
        written_keys: Vec<Vec<u8>>,
        guard: Option<crate::scheduler::ObjectGuard>,
        result: Result<VmValue>,
        done: InvokeCompletion,
    ) {
        if result.is_ok() {
            self.commits.incr();
            self.invocations.incr();
        }
        let mut all_keys: Vec<&[u8]> = written_keys.iter().map(Vec::as_slice).collect();
        all_keys.push(&vkey);
        self.cache.invalidate_keys(all_keys);
        drop(guard);
        done(result);
    }

    /// Add a dedup record for `invocation_id` to `batch` and evict the
    /// oldest records beyond [`DEDUP_WINDOW`] in the same batch. Runs under
    /// the object's guard, right before the commit that bumps the version.
    ///
    /// Eviction order comes from the in-memory [`Engine::dedup_windows`]
    /// index, lazily rebuilt from storage on first touch (fresh
    /// primaryship, restart). Re-scanning the dedup prefix here instead
    /// would walk one tombstone per record ever retired — O(the object's
    /// whole mutation history) per write until compaction catches up,
    /// which decays hot-object throughput the longer it stays hot.
    fn append_dedup_record(
        &self,
        object: &ObjectId,
        invocation_id: u64,
        result: &VmValue,
        batch: &mut WriteBatch,
    ) {
        let version = self.object_version(object) + 1;
        let encoded = result.encode();
        let mut value = Vec::with_capacity(8 + encoded.len());
        value.extend_from_slice(&version.to_le_bytes());
        value.extend_from_slice(&encoded);
        let own_key = keys::dedup_key(object, invocation_id);

        let mut windows = self.dedup_windows.lock();
        let window = windows.entry(object.clone()).or_insert_with(|| {
            let mut records: Vec<(u64, Vec<u8>)> = self
                .db
                .scan_prefix(&keys::dedup_prefix(object))
                .map(|(k, v)| {
                    let ver = v
                        .get(0..8)
                        .and_then(|b| b.try_into().ok())
                        .map(u64::from_le_bytes)
                        .unwrap_or(0);
                    (ver, k)
                })
                .collect();
            records.sort_unstable();
            records.into_iter().collect()
        });
        // A retried id supersedes its old record in place rather than
        // counting twice against the window.
        window.retain(|(_, k)| *k != own_key);
        window.push_back((version, own_key.clone()));
        while window.len() > DEDUP_WINDOW {
            let Some((_, key)) = window.pop_front() else { break };
            batch.delete(key);
        }
        batch.put(own_key, value);
    }

    /// Drop the in-memory dedup-eviction window for `id`. Called whenever
    /// the object's records change outside [`Engine::append_dedup_record`]
    /// — replicated write sets, migration installs, deletion — so a stale
    /// index can never drive eviction; it is rebuilt from storage on the
    /// next primary-side mutation.
    pub(crate) fn forget_dedup_window(&self, id: &ObjectId) {
        self.dedup_windows.lock().remove(id);
    }

    fn object_type(&self, id: &ObjectId) -> Result<Arc<ObjectType>> {
        let name = self.object_type_name(id)?;
        self.types.get(&name).ok_or(InvokeError::UnknownType(name))
    }

    /// Resolve the [`ObjectType`] of `id` (shared with the transaction
    /// extension).
    pub(crate) fn object_type_of(&self, id: &ObjectId) -> Result<Arc<ObjectType>> {
        self.object_type(id)
    }

    /// The interpreter (shared with the transaction extension).
    pub(crate) fn interpreter_ref(&self) -> &Interpreter {
        &self.interpreter
    }

    /// Commit a multi-object transaction batch: apply atomically, run the
    /// replication hook per touched object, invalidate caches.
    pub(crate) fn commit_transaction_batch(
        &self,
        objects: &[ObjectId],
        batch: WriteBatch,
        written_keys: &[Vec<u8>],
    ) -> Result<()> {
        self.db.write(batch.clone())?;
        // Group the committed ops per object for the replication hook.
        for object in objects {
            let ops: Vec<(Vec<u8>, Option<Vec<u8>>)> = batch
                .iter()
                .filter_map(|op| {
                    let key = op.key().to_vec();
                    let (owner, _) = keys::split_key(&key)?;
                    if &owner != object {
                        return None;
                    }
                    Some(match op {
                        lambda_kv::batch::BatchOp::Put { value, .. } => (key, Some(value.clone())),
                        lambda_kv::batch::BatchOp::Delete { .. } => (key, None),
                    })
                })
                .collect();
            if !ops.is_empty() {
                let hook = self.commit_hook.read().clone();
                if let Some(hook) = hook {
                    hook.on_commit(&InvocationContext::background(), object, &ops)
                        .map_err(InvokeError::Storage)?;
                }
            }
        }
        self.commits.incr();
        self.cache.invalidate_keys(written_keys.iter().map(Vec::as_slice));
        Ok(())
    }

    /// Commit an invocation's write set atomically, bumping the object's
    /// version and invalidating overlapping cache entries. The kv write is
    /// the invocation's `commit` span; the hook call inside
    /// [`Engine::run_commit_hook`] is its `replicate` span.
    fn commit_batch(
        &self,
        ctx: &InvocationContext,
        object: &ObjectId,
        mut batch: WriteBatch,
        written_keys: &[Vec<u8>],
    ) -> Result<u64> {
        let vkey = keys::version_key(object);
        let version = self.object_version(object) + 1;
        batch.put(vkey.clone(), version.to_le_bytes().to_vec());
        let commit_start = Instant::now();
        self.db.write(batch.clone())?;
        self.registry.record_span(ctx.trace_id, Stage::Commit, commit_start.elapsed());
        self.run_commit_hook(ctx, object, &batch)?;
        self.commits.incr();
        let mut all_keys: Vec<&[u8]> = written_keys.iter().map(Vec::as_slice).collect();
        all_keys.push(&vkey);
        self.cache.invalidate_keys(all_keys);
        Ok(self.db.last_sequence())
    }

    /// Counter snapshot (a view over the telemetry registry's `eng_*` and
    /// `sched_*` counters).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            invocations: self.invocations.get(),
            aborts: self.aborts.get(),
            nested_calls: self.nested_calls.get(),
            commits: self.commits.get(),
            cache_hits: self.cache_hits.get(),
            duplicates_suppressed: self.duplicates_suppressed.get(),
            cache: self.cache.stats(),
            scheduler: self.scheduler.stats(),
        }
    }

    /// Access the consistent cache (benchmarks/diagnostics).
    pub fn cache(&self) -> &ConsistentCache {
        &self.cache
    }

    /// Access the scheduler (benchmarks/diagnostics).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }
}

/// Decode a dedup record's stored result (layout: `version (u64 LE) ‖
/// encoded VmValue`). `None` on malformed records — the invocation then
/// re-executes, the safe direction for corrupted state.
fn decode_dedup_record(rec: &[u8]) -> Option<VmValue> {
    VmValue::decode(rec.get(8..)?)
}

impl NestedInvoker for Engine {
    fn commit_source(
        &self,
        ctx: &InvocationContext,
        source: &ObjectId,
        batch: WriteBatch,
        written_keys: Vec<Vec<u8>>,
    ) -> std::result::Result<(), HostError> {
        self.commit_batch(ctx, source, batch, &written_keys)
            .map(|_| ())
            .map_err(|e| HostError::Storage(e.to_string()))
    }

    fn invoke_nested(
        &self,
        ctx: &InvocationContext,
        target: &ObjectId,
        method: &str,
        args: Vec<VmValue>,
        depth: usize,
    ) -> std::result::Result<VmValue, HostError> {
        let router = self.router.read().clone();
        let result = match router {
            Some(router) => router.route(ctx, target, target, method, args, depth),
            None => self.invoke_ctx(ctx, target, method, args, false, depth),
        };
        result.map_err(|e| HostError::InvokeFailed(encode_error(&e)))
    }

    fn reacquire(&self, object: &ObjectId) -> (crate::scheduler::ObjectGuard, u64) {
        let guard = self.scheduler.acquire_exclusive(object, &[]);
        (guard, self.db.last_sequence())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{FieldDef, FieldKind};
    use lambda_kv::Options;
    use lambda_vm::assemble;
    use std::path::PathBuf;

    fn counter_module() -> ObjectType {
        let module = assemble(
            r#"
            fn init(0) {
                push.s "count"
                push.s "0"
                host.put
                ret
            }
            fn bump_raw(1) locals=2 {
                ; arg 0: how many entries to also append to the log
                push.s "count"
                host.get
                store 1
                load 1
                jz missing
                jmp have
            missing:
                trap "count field missing"
            have:
                ; store count+1 as a single byte string of the arg (simplified):
                push.s "count"
                load 0
                host.put
                ret
            }
            fn read_count(0) ro det {
                push.s "count"
                host.get
                ret
            }
            fn crash(0) {
                push.s "count"
                push.s "partial"
                host.put
                trap "deliberate crash"
            }
            fn abort_after_write(0) {
                push.s "count"
                push.s "partial"
                host.put
                push.s "rolled back"
                host.abort
            }
            fn hidden(0) priv {
                unit
                ret
            }
            fn poke_other(2) {
                ; args: target object id, value
                load 0
                push.s "bump_raw"
                load 1
                mklist 1
                host.invoke
                ret
            }
            fn write_then_poke(2) locals=2 {
                ; write locally, then nested-invoke target; our write commits first
                push.s "count"
                push.s "pre-call"
                host.put
                load 0
                push.s "bump_raw"
                load 1
                mklist 1
                host.invoke
                ret
            }
            fn poke_then_crash(2) {
                load 0
                push.s "bump_raw"
                load 1
                mklist 1
                host.invoke
                pop
                trap "after nested"
            }
            "#,
        )
        .unwrap();
        ObjectType::from_module(
            "Counter",
            vec![FieldDef { name: "count".into(), kind: FieldKind::Scalar }],
            module,
        )
        .unwrap()
    }

    struct TestEnv {
        engine: Arc<Engine>,
        dir: PathBuf,
    }

    impl Drop for TestEnv {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.dir).ok();
        }
    }

    fn setup(config: EngineConfig) -> TestEnv {
        use std::sync::atomic::{AtomicU32, Ordering};
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("lambda-engine-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = Db::open(&dir, Options::small_for_tests()).unwrap();
        let types = Arc::new(TypeRegistry::new());
        types.register(counter_module());
        TestEnv { engine: Arc::new(Engine::new(db, types, config)), dir }
    }

    fn oid(s: &str) -> ObjectId {
        ObjectId::from(s)
    }

    #[test]
    fn create_invoke_read_round_trip() {
        let env = setup(EngineConfig::default());
        let id = oid("c/1");
        env.engine.create_object("Counter", &id, &[]).unwrap();
        env.engine.invoke(&id, "init", vec![]).unwrap();
        let v = env.engine.invoke(&id, "read_count", vec![]).unwrap();
        assert_eq!(v, VmValue::str("0"));
        env.engine.invoke(&id, "bump_raw", vec![VmValue::str("7")]).unwrap();
        let v = env.engine.invoke(&id, "read_count", vec![]).unwrap();
        assert_eq!(v, VmValue::str("7"));
    }

    #[test]
    fn create_validates_type_and_duplicates() {
        let env = setup(EngineConfig::default());
        let id = oid("c/1");
        assert!(matches!(
            env.engine.create_object("Nope", &id, &[]),
            Err(InvokeError::UnknownType(_))
        ));
        env.engine.create_object("Counter", &id, &[("count", b"5")]).unwrap();
        assert!(matches!(
            env.engine.create_object("Counter", &id, &[]),
            Err(InvokeError::AlreadyExists(_))
        ));
        // Initial field visible.
        assert_eq!(env.engine.invoke(&id, "read_count", vec![]).unwrap(), VmValue::str("5"));
    }

    #[test]
    fn invoking_missing_object_or_method_fails() {
        let env = setup(EngineConfig::default());
        assert!(matches!(
            env.engine.invoke(&oid("ghost"), "init", vec![]),
            Err(InvokeError::UnknownObject(_))
        ));
        let id = oid("c/1");
        env.engine.create_object("Counter", &id, &[]).unwrap();
        assert!(matches!(
            env.engine.invoke(&id, "nope", vec![]),
            Err(InvokeError::UnknownMethod(_))
        ));
    }

    #[test]
    fn private_methods_rejected_externally() {
        let env = setup(EngineConfig::default());
        let id = oid("c/1");
        env.engine.create_object("Counter", &id, &[]).unwrap();
        assert!(matches!(env.engine.invoke(&id, "hidden", vec![]), Err(InvokeError::NotPublic(_))));
        // Internal path allows it.
        assert!(env.engine.invoke_with_depth(&id, "hidden", vec![], false, 0).is_ok());
    }

    #[test]
    fn atomicity_failed_invocation_leaves_no_writes() {
        let env = setup(EngineConfig::default());
        let id = oid("c/1");
        env.engine.create_object("Counter", &id, &[("count", b"ok")]).unwrap();
        let err = env.engine.invoke(&id, "crash", vec![]).unwrap_err();
        assert!(matches!(err, InvokeError::Vm(_)));
        assert_eq!(
            env.engine.invoke(&id, "read_count", vec![]).unwrap(),
            VmValue::str("ok"),
            "partial write must be invisible"
        );
        assert_eq!(env.engine.stats().aborts, 1);
    }

    #[test]
    fn voluntary_abort_discards_writes() {
        let env = setup(EngineConfig::default());
        let id = oid("c/1");
        env.engine.create_object("Counter", &id, &[("count", b"ok")]).unwrap();
        let err = env.engine.invoke(&id, "abort_after_write", vec![]).unwrap_err();
        assert_eq!(err, InvokeError::Aborted("rolled back".into()));
        assert_eq!(env.engine.invoke(&id, "read_count", vec![]).unwrap(), VmValue::str("ok"));
    }

    #[test]
    fn version_bumps_on_every_mutating_commit() {
        let env = setup(EngineConfig::default());
        let id = oid("c/1");
        env.engine.create_object("Counter", &id, &[]).unwrap();
        assert_eq!(env.engine.object_version(&id), 0);
        env.engine.invoke(&id, "init", vec![]).unwrap();
        env.engine.invoke(&id, "bump_raw", vec![VmValue::str("1")]).unwrap();
        assert_eq!(env.engine.object_version(&id), 2);
        // Read-only invocations do not bump.
        env.engine.invoke(&id, "read_count", vec![]).unwrap();
        assert_eq!(env.engine.object_version(&id), 2);
    }

    #[test]
    fn nested_invocation_reaches_other_object() {
        let env = setup(EngineConfig::default());
        let a = oid("c/a");
        let b = oid("c/b");
        env.engine.create_object("Counter", &a, &[("count", b"a0")]).unwrap();
        env.engine.create_object("Counter", &b, &[("count", b"b0")]).unwrap();
        env.engine.invoke(&a, "poke_other", vec![VmValue::str("c/b"), VmValue::str("b1")]).unwrap();
        assert_eq!(env.engine.invoke(&b, "read_count", vec![]).unwrap(), VmValue::str("b1"));
        assert_eq!(env.engine.stats().nested_calls, 1);
    }

    #[test]
    fn nested_boundary_commits_precall_writes_even_if_caller_later_crashes() {
        // §3.1: parts before and after a nested call are separate
        // invocations; the pre-call part survives a post-call crash.
        let env = setup(EngineConfig::default());
        let a = oid("c/a");
        let b = oid("c/b");
        env.engine.create_object("Counter", &a, &[("count", b"a0")]).unwrap();
        env.engine.create_object("Counter", &b, &[("count", b"b0")]).unwrap();
        let err = env
            .engine
            .invoke(&a, "poke_then_crash", vec![VmValue::str("c/b"), VmValue::str("b9")])
            .unwrap_err();
        assert!(matches!(err, InvokeError::Vm(_)));
        // The nested call's effect is durable.
        assert_eq!(env.engine.invoke(&b, "read_count", vec![]).unwrap(), VmValue::str("b9"));
    }

    #[test]
    fn precall_writes_commit_before_nested_call() {
        let env = setup(EngineConfig::default());
        let a = oid("c/a");
        let b = oid("c/b");
        env.engine.create_object("Counter", &a, &[("count", b"a0")]).unwrap();
        env.engine.create_object("Counter", &b, &[("count", b"b0")]).unwrap();
        env.engine
            .invoke(&a, "write_then_poke", vec![VmValue::str("c/b"), VmValue::str("b1")])
            .unwrap();
        assert_eq!(env.engine.invoke(&a, "read_count", vec![]).unwrap(), VmValue::str("pre-call"));
    }

    #[test]
    fn self_invocation_does_not_deadlock() {
        let env = setup(EngineConfig::default());
        let a = oid("c/a");
        env.engine.create_object("Counter", &a, &[("count", b"a0")]).unwrap();
        // a invokes a method on itself (e.g. a user following themselves).
        env.engine
            .invoke(&a, "poke_other", vec![VmValue::str("c/a"), VmValue::str("self")])
            .unwrap();
        assert_eq!(env.engine.invoke(&a, "read_count", vec![]).unwrap(), VmValue::str("self"));
    }

    #[test]
    fn cache_serves_repeat_reads_and_invalidates_on_write() {
        let env = setup(EngineConfig::default());
        let id = oid("c/1");
        env.engine.create_object("Counter", &id, &[("count", b"x")]).unwrap();
        for _ in 0..3 {
            assert_eq!(env.engine.invoke(&id, "read_count", vec![]).unwrap(), VmValue::str("x"));
        }
        let stats = env.engine.stats();
        assert_eq!(stats.cache_hits, 2, "first fills, rest hit");
        // A write invalidates.
        env.engine.invoke(&id, "bump_raw", vec![VmValue::str("y")]).unwrap();
        assert_eq!(
            env.engine.invoke(&id, "read_count", vec![]).unwrap(),
            VmValue::str("y"),
            "stale result must not be served"
        );
    }

    #[test]
    fn cache_disabled_by_zero_capacity() {
        let env = setup(EngineConfig { cache_capacity: 0, ..EngineConfig::default() });
        let id = oid("c/1");
        env.engine.create_object("Counter", &id, &[("count", b"x")]).unwrap();
        env.engine.invoke(&id, "read_count", vec![]).unwrap();
        env.engine.invoke(&id, "read_count", vec![]).unwrap();
        assert_eq!(env.engine.stats().cache_hits, 0);
    }

    #[test]
    fn depth_limit_stops_runaway_recursion() {
        let env = setup(EngineConfig { max_depth: 4, ..EngineConfig::default() });
        let a = oid("c/a");
        let b = oid("c/b");
        env.engine.create_object("Counter", &a, &[("count", b"0")]).unwrap();
        env.engine.create_object("Counter", &b, &[("count", b"0")]).unwrap();
        // poke_other invoking bump_raw is depth 2 — fine. To exercise the
        // limit, call invoke_with_depth with a synthetic deep depth.
        let err = env.engine.invoke_with_depth(&a, "read_count", vec![], false, 4).unwrap_err();
        assert_eq!(err, InvokeError::DepthExceeded);
    }

    #[test]
    fn concurrent_writers_on_same_object_serialize() {
        let env = setup(EngineConfig::default());
        let id = oid("c/hot");
        env.engine.create_object("Counter", &id, &[("count", b"0")]).unwrap();
        let engine = Arc::clone(&env.engine);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let engine = Arc::clone(&engine);
                let id = id.clone();
                std::thread::spawn(move || {
                    for i in 0..25 {
                        engine
                            .invoke(&id, "bump_raw", vec![VmValue::str(format!("{t}-{i}"))])
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(engine.object_version(&id), 100, "all 100 commits applied");
    }

    #[test]
    fn invoke_ctx_records_span_chain() {
        let env = setup(EngineConfig::default());
        let id = oid("c/1");
        env.engine.create_object("Counter", &id, &[("count", b"0")]).unwrap();
        let ctx = InvocationContext::client(std::time::Duration::from_secs(30));
        env.engine.invoke_ctx(&ctx, &id, "bump_raw", vec![VmValue::str("9")], true, 0).unwrap();
        let spans = env.engine.registry().spans_for(ctx.trace_id);
        let stages: Vec<Stage> = spans.iter().map(|s| s.stage).collect();
        assert!(stages.contains(&Stage::Queue), "{stages:?}");
        assert!(stages.contains(&Stage::Execute), "{stages:?}");
        assert!(stages.contains(&Stage::Commit), "{stages:?}");
        // No commit hook installed → no replicate span on a bare engine.
        assert!(!stages.contains(&Stage::Replicate), "{stages:?}");
        // Every span belongs to this trace.
        assert!(spans.iter().all(|s| s.trace_id == ctx.trace_id));
        // Stage histograms were fed too.
        assert!(env.engine.registry().stage_stats(Stage::Execute).count >= 1);
    }

    #[test]
    fn expired_deadline_is_shed_before_execution() {
        let env = setup(EngineConfig::default());
        let id = oid("c/1");
        env.engine.create_object("Counter", &id, &[("count", b"keep")]).unwrap();
        let expired = InvocationContext::from_wire(4242, 0, 0);
        let err = env
            .engine
            .invoke_ctx(&expired, &id, "bump_raw", vec![VmValue::str("x")], true, 0)
            .unwrap_err();
        assert_eq!(err, InvokeError::DeadlineExceeded);
        // The method never ran: no writes, no version bump, no spans.
        assert_eq!(env.engine.invoke(&id, "read_count", vec![]).unwrap(), VmValue::str("keep"));
        assert_eq!(env.engine.object_version(&id), 0);
        assert!(env.engine.registry().spans_for(4242).is_empty());
        assert_eq!(env.engine.stats().scheduler.shed, 1);
        assert_eq!(env.engine.stats().aborts, 1);
    }

    #[test]
    fn duplicate_delivery_returns_recorded_result_without_reexecuting() {
        let env = setup(EngineConfig::default());
        let id = oid("c/1");
        env.engine.create_object("Counter", &id, &[("count", b"0")]).unwrap();
        let ctx = InvocationContext::client(std::time::Duration::from_secs(30));
        let first =
            env.engine.invoke_ctx(&ctx, &id, "bump_raw", vec![VmValue::str("9")], true, 0).unwrap();
        assert_eq!(env.engine.object_version(&id), 1);

        // The client's retry redelivers the same invocation id.
        let mut retry = ctx;
        retry.attempt = 1;
        let second = env
            .engine
            .invoke_ctx(&retry, &id, "bump_raw", vec![VmValue::str("9")], true, 0)
            .unwrap();
        assert_eq!(second, first, "recorded result served verbatim");
        assert_eq!(env.engine.object_version(&id), 1, "no second commit");
        assert_eq!(env.engine.stats().duplicates_suppressed, 1);
    }

    #[test]
    fn contexts_without_invocation_id_are_not_deduped() {
        let env = setup(EngineConfig::default());
        let id = oid("c/1");
        env.engine.create_object("Counter", &id, &[("count", b"0")]).unwrap();
        let ctx = InvocationContext::background();
        assert_eq!(ctx.invocation_id, 0);
        env.engine.invoke_ctx(&ctx, &id, "bump_raw", vec![VmValue::str("a")], true, 0).unwrap();
        env.engine.invoke_ctx(&ctx, &id, "bump_raw", vec![VmValue::str("b")], true, 0).unwrap();
        assert_eq!(env.engine.object_version(&id), 2, "both executions committed");
        assert_eq!(env.engine.stats().duplicates_suppressed, 0);
    }

    #[test]
    fn dedup_window_stays_bounded_and_evicts_oldest() {
        let env = setup(EngineConfig::default());
        let id = oid("c/1");
        env.engine.create_object("Counter", &id, &[("count", b"0")]).unwrap();
        let ctxs: Vec<InvocationContext> = (0..DEDUP_WINDOW + 8)
            .map(|i| {
                let ctx = InvocationContext::client(std::time::Duration::from_secs(30));
                env.engine
                    .invoke_ctx(&ctx, &id, "bump_raw", vec![VmValue::str(format!("{i}"))], true, 0)
                    .unwrap();
                ctx
            })
            .collect();
        let records = env.engine.db().scan_prefix(&keys::dedup_prefix(&id)).count();
        assert_eq!(records, DEDUP_WINDOW, "window bounded");
        // The newest id is remembered, the oldest has been evicted (its
        // duplicate re-executes — bounded-window tradeoff).
        let newest = ctxs.last().unwrap();
        assert!(env
            .engine
            .db()
            .get(&keys::dedup_key(&id, newest.invocation_id))
            .unwrap()
            .is_some());
        assert!(env
            .engine
            .db()
            .get(&keys::dedup_key(&id, ctxs[0].invocation_id))
            .unwrap()
            .is_none());
    }

    #[test]
    fn deferred_invoke_matches_sync_semantics() {
        let env = setup(EngineConfig::default());
        let id = oid("c/1");
        env.engine.create_object("Counter", &id, &[("count", b"0")]).unwrap();
        let ctx = InvocationContext::client(std::time::Duration::from_secs(30));
        let (tx, rx) = std::sync::mpsc::channel();
        env.engine.invoke_deferred(
            &ctx,
            &id,
            "bump_raw",
            vec![VmValue::str("9")],
            true,
            Box::new(move |res| tx.send(res).unwrap()),
        );
        assert!(rx.recv().unwrap().is_ok());
        assert_eq!(env.engine.object_version(&id), 1);
        // Same span chain as the sync path.
        let spans = env.engine.registry().spans_for(ctx.trace_id);
        let stages: Vec<Stage> = spans.iter().map(|s| s.stage).collect();
        assert!(stages.contains(&Stage::Queue), "{stages:?}");
        assert!(stages.contains(&Stage::Execute), "{stages:?}");
        assert!(stages.contains(&Stage::Commit), "{stages:?}");
        // And the value is durably visible afterwards.
        assert_eq!(env.engine.invoke(&id, "read_count", vec![]).unwrap(), VmValue::str("9"));
    }

    #[test]
    fn deferred_invoke_sheds_expired_deadline() {
        let env = setup(EngineConfig::default());
        let id = oid("c/1");
        env.engine.create_object("Counter", &id, &[("count", b"keep")]).unwrap();
        let expired = InvocationContext::from_wire(777, 0, 0);
        let (tx, rx) = std::sync::mpsc::channel();
        env.engine.invoke_deferred(
            &expired,
            &id,
            "bump_raw",
            vec![VmValue::str("x")],
            true,
            Box::new(move |res| tx.send(res).unwrap()),
        );
        assert_eq!(rx.recv().unwrap().unwrap_err(), InvokeError::DeadlineExceeded);
        assert_eq!(env.engine.invoke(&id, "read_count", vec![]).unwrap(), VmValue::str("keep"));
        assert_eq!(env.engine.stats().scheduler.shed, 1);
    }

    #[test]
    fn deferred_invoke_queued_behind_holder_completes_on_releasing_thread() {
        let env = setup(EngineConfig::default());
        let id = oid("c/hot");
        env.engine.create_object("Counter", &id, &[("count", b"0")]).unwrap();
        // Hold the object's lock so the deferred invocation must queue.
        let guard = env.engine.scheduler().acquire_exclusive(&id, &[]);
        let ctx = InvocationContext::client(std::time::Duration::from_secs(30));
        let (tx, rx) = std::sync::mpsc::channel();
        env.engine.invoke_deferred(
            &ctx,
            &id,
            "bump_raw",
            vec![VmValue::str("later")],
            true,
            Box::new(move |res| tx.send((res, std::thread::current().id())).unwrap()),
        );
        assert!(
            rx.recv_timeout(std::time::Duration::from_millis(50)).is_err(),
            "must wait for the lock holder"
        );
        let releaser = std::thread::spawn(move || {
            drop(guard);
            std::thread::current().id()
        });
        let releaser_id = releaser.join().unwrap();
        let (res, ran_on) = rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap();
        assert!(res.is_ok());
        assert_eq!(ran_on, releaser_id, "execution rides the releasing thread");
        assert_eq!(env.engine.invoke(&id, "read_count", vec![]).unwrap(), VmValue::str("later"));
    }

    #[test]
    fn deferred_invoke_suppresses_duplicates() {
        let env = setup(EngineConfig::default());
        let id = oid("c/1");
        env.engine.create_object("Counter", &id, &[("count", b"0")]).unwrap();
        let ctx = InvocationContext::client(std::time::Duration::from_secs(30));
        let call = |ctx: &InvocationContext| {
            let (tx, rx) = std::sync::mpsc::channel();
            env.engine.invoke_deferred(
                ctx,
                &id,
                "bump_raw",
                vec![VmValue::str("9")],
                true,
                Box::new(move |res| tx.send(res).unwrap()),
            );
            rx.recv().unwrap().unwrap()
        };
        let first = call(&ctx);
        let mut retry = ctx;
        retry.attempt = 1;
        let second = call(&retry);
        assert_eq!(second, first, "recorded result served verbatim");
        assert_eq!(env.engine.object_version(&id), 1, "no second commit");
        assert_eq!(env.engine.stats().duplicates_suppressed, 1);
    }

    #[test]
    fn deferred_invoke_runs_commit_hook_and_reports_failures() {
        struct FailingHook;
        impl CommitHook for FailingHook {
            fn on_commit(
                &self,
                _ctx: &InvocationContext,
                _object: &ObjectId,
                _ops: &[(Vec<u8>, Option<Vec<u8>>)],
            ) -> std::result::Result<(), String> {
                Err("replica down".into())
            }
        }
        let env = setup(EngineConfig::default());
        let id = oid("c/1");
        env.engine.create_object("Counter", &id, &[("count", b"0")]).unwrap();
        env.engine.set_commit_hook(Arc::new(FailingHook));
        let ctx = InvocationContext::client(std::time::Duration::from_secs(30));
        let (tx, rx) = std::sync::mpsc::channel();
        env.engine.invoke_deferred(
            &ctx,
            &id,
            "bump_raw",
            vec![VmValue::str("1")],
            true,
            Box::new(move |res| tx.send(res).unwrap()),
        );
        let err = rx.recv().unwrap().unwrap_err();
        assert!(matches!(err, InvokeError::Storage(_)), "{err}");
    }

    #[test]
    fn deferred_invoke_read_only_uses_cache() {
        let env = setup(EngineConfig::default());
        let id = oid("c/1");
        env.engine.create_object("Counter", &id, &[("count", b"x")]).unwrap();
        let ctx = InvocationContext::client(std::time::Duration::from_secs(30));
        for _ in 0..3 {
            let (tx, rx) = std::sync::mpsc::channel();
            env.engine.invoke_deferred(
                &ctx,
                &id,
                "read_count",
                vec![],
                true,
                Box::new(move |res| tx.send(res).unwrap()),
            );
            assert_eq!(rx.recv().unwrap().unwrap(), VmValue::str("x"));
        }
        assert_eq!(env.engine.stats().cache_hits, 2, "first fills, rest hit");
    }

    #[test]
    fn delete_object_removes_all_data() {
        let env = setup(EngineConfig::default());
        let id = oid("c/1");
        env.engine.create_object("Counter", &id, &[("count", b"v")]).unwrap();
        env.engine.invoke(&id, "bump_raw", vec![VmValue::str("w")]).unwrap();
        assert!(env.engine.object_exists(&id));
        env.engine.delete_object(&id).unwrap();
        assert!(!env.engine.object_exists(&id));
        assert!(matches!(
            env.engine.invoke(&id, "read_count", vec![]),
            Err(InvokeError::UnknownObject(_))
        ));
        // Idempotent.
        env.engine.delete_object(&id).unwrap();
    }
}

#[cfg(test)]
mod scatter_tests {
    use super::*;
    use crate::object::{FieldDef, FieldKind, ObjectType, TypeRegistry};
    use lambda_kv::{Db, Options};
    use lambda_vm::assemble;
    use std::sync::atomic::{AtomicU32, Ordering as AtomicOrdering};

    fn scatter_engine() -> (Engine, std::path::PathBuf) {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, AtomicOrdering::Relaxed);
        let dir = std::env::temp_dir().join(format!("lambda-scatter-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = Db::open(&dir, Options::small_for_tests()).unwrap();
        let types = Arc::new(TypeRegistry::new());
        let module = assemble(
            r#"
            fn broadcast(2) {
                ; args: list of target ids, payload
                load 0
                push.s "receive"
                load 1
                mklist 1
                host.invoke_many
                ret
            }
            fn receive(1) {
                push.s "inbox"
                load 0
                host.push
                ret
            }
            fn broadcast_picky(2) {
                load 0
                push.s "receive_picky"
                load 1
                mklist 1
                host.invoke_many
                ret
            }
            fn receive_picky(1) locals=2 {
                ; aborts on payload "poison"
                load 0
                push.s "poison"
                eq
                jz accept
                push.s "rejected"
                host.abort
            accept:
                push.s "inbox"
                load 0
                host.push
                ret
            }
            fn inbox_count(0) ro det {
                push.s "inbox"
                host.count
                ret
            }
            "#,
        )
        .unwrap();
        types.register(
            ObjectType::from_module(
                "Node",
                vec![FieldDef { name: "inbox".into(), kind: FieldKind::Collection }],
                module,
            )
            .unwrap(),
        );
        (Engine::new(db, types, EngineConfig::default()), dir)
    }

    fn oid(s: &str) -> ObjectId {
        ObjectId::from(s)
    }

    #[test]
    fn invoke_many_scatters_to_all_targets() {
        let (engine, dir) = scatter_engine();
        let src = oid("n/src");
        engine.create_object("Node", &src, &[]).unwrap();
        let targets: Vec<VmValue> = (0..10)
            .map(|i| {
                let id = oid(&format!("n/{i}"));
                engine.create_object("Node", &id, &[]).unwrap();
                VmValue::Bytes(id.0)
            })
            .collect();
        let results = engine
            .invoke(&src, "broadcast", vec![VmValue::List(targets), VmValue::str("hello")])
            .unwrap();
        assert_eq!(results.as_list().unwrap().len(), 10, "one result per target");
        for i in 0..10 {
            let n = engine.invoke(&oid(&format!("n/{i}")), "inbox_count", vec![]).unwrap();
            assert_eq!(n, VmValue::Int(1), "target {i} received the payload");
        }
        assert_eq!(engine.stats().nested_calls, 10);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn invoke_many_empty_target_list_is_noop() {
        let (engine, dir) = scatter_engine();
        let src = oid("n/src");
        engine.create_object("Node", &src, &[]).unwrap();
        let out = engine
            .invoke(&src, "broadcast", vec![VmValue::List(vec![]), VmValue::str("x")])
            .unwrap();
        assert_eq!(out.as_list().unwrap().len(), 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn scatter_branch_failure_fails_the_caller_without_partial_branch_writes() {
        // Each scatter branch is its own invocation (§3.1): a branch that
        // aborts discards its own writes, and the error propagates to the
        // caller, aborting the caller's remaining work.
        let (engine, dir) = scatter_engine();
        let src = oid("n/src");
        engine.create_object("Node", &src, &[]).unwrap();
        let targets: Vec<VmValue> = (0..3)
            .map(|i| {
                let id = oid(&format!("p/{i}"));
                engine.create_object("Node", &id, &[]).unwrap();
                VmValue::Bytes(id.0)
            })
            .collect();
        let err = engine
            .invoke(
                &src,
                "broadcast_picky",
                vec![VmValue::List(targets.clone()), VmValue::str("poison")],
            )
            .unwrap_err();
        assert!(matches!(err, InvokeError::Aborted(_)), "{err}");
        // Aborted branches wrote nothing.
        for t in &targets {
            let id = ObjectId::new(t.as_bytes().unwrap().to_vec());
            let n = engine.invoke(&id, "inbox_count", vec![]).unwrap();
            assert_eq!(n, VmValue::Int(0), "aborted branch must not deliver");
        }
        // A clean payload goes through the same path.
        engine
            .invoke(
                &src,
                "broadcast_picky",
                vec![VmValue::List(targets.clone()), VmValue::str("fine")],
            )
            .unwrap();
        for t in &targets {
            let id = ObjectId::new(t.as_bytes().unwrap().to_vec());
            let n = engine.invoke(&id, "inbox_count", vec![]).unwrap();
            assert_eq!(n, VmValue::Int(1));
        }
        std::fs::remove_dir_all(dir).ok();
    }
}
