//! Per-invocation write buffer with read-set tracking.
//!
//! Invocation linearizability (§3.1) requires that "data accesses and
//! modifications within a single function invocation are atomic" and that
//! "partial writes of one invocation are not visible to other function
//! invocations". The buffer delivers both: every write lands here first and
//! only reaches the store as one atomic [`WriteBatch`] at commit. Reads see
//! the buffer first (read-your-writes), then the underlying snapshot.
//!
//! The buffer also records the invocation's **read set** as
//! `(key, value-hash)` pairs — exactly the structure §4.2.2 prescribes for
//! the consistent result cache.

use std::collections::BTreeMap;

use lambda_kv::WriteBatch;

/// Stable hash of a possibly-absent value. Absence hashes differently from
/// every present value.
pub fn value_hash(v: Option<&[u8]>) -> u64 {
    match v {
        None => 0x5afe_0000_dead_0000,
        Some(bytes) => {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            // Length is mixed in so empty-value != absent and to harden
            // against concatenation ambiguity.
            for &b in (bytes.len() as u64).to_le_bytes().iter().chain(bytes) {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        }
    }
}

/// A buffered pending state for one invocation.
#[derive(Debug, Default)]
pub struct WriteBuffer {
    /// Pending writes: `Some` = put, `None` = delete.
    pending: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    /// Keys read from the *underlying* store (not buffer hits), with the
    /// hash of the observed value.
    reads: BTreeMap<Vec<u8>, u64>,
    /// Whether read tracking is enabled (only cacheable invocations pay).
    track_reads: bool,
}

impl WriteBuffer {
    /// New buffer; `track_reads` enables read-set recording.
    pub fn new(track_reads: bool) -> WriteBuffer {
        WriteBuffer { pending: BTreeMap::new(), reads: BTreeMap::new(), track_reads }
    }

    /// Look up `key` in the buffer only. `Some(Some(v))` = pending put,
    /// `Some(None)` = pending delete, `None` = not buffered.
    pub fn get(&self, key: &[u8]) -> Option<Option<Vec<u8>>> {
        self.pending.get(key).cloned()
    }

    /// Record a put.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) {
        self.pending.insert(key, Some(value));
    }

    /// Record a delete.
    pub fn delete(&mut self, key: Vec<u8>) {
        self.pending.insert(key, None);
    }

    /// Record that `key` was read from the underlying store and observed
    /// with `value`.
    pub fn note_read(&mut self, key: &[u8], value: Option<&[u8]>) {
        if self.track_reads && !self.pending.contains_key(key) {
            self.reads.entry(key.to_vec()).or_insert_with(|| value_hash(value));
        }
    }

    /// Number of pending writes.
    pub fn write_count(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is buffered.
    pub fn is_clean(&self) -> bool {
        self.pending.is_empty()
    }

    /// The recorded read set.
    pub fn read_set(&self) -> Vec<(Vec<u8>, u64)> {
        self.reads.iter().map(|(k, h)| (k.clone(), *h)).collect()
    }

    /// Keys with pending writes (for cache invalidation).
    pub fn written_keys(&self) -> Vec<Vec<u8>> {
        self.pending.keys().cloned().collect()
    }

    /// Drain the pending writes into an atomic batch, leaving the buffer
    /// clean (read tracking is preserved across nested-call commits).
    pub fn take_batch(&mut self) -> WriteBatch {
        let mut batch = WriteBatch::new();
        for (key, op) in std::mem::take(&mut self.pending) {
            match op {
                Some(value) => {
                    batch.put(key, value);
                }
                None => {
                    batch.delete(key);
                }
            }
        }
        batch
    }

    /// Discard everything (abort path).
    pub fn discard(&mut self) {
        self.pending.clear();
        self.reads.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_hash_distinguishes_cases() {
        assert_ne!(value_hash(None), value_hash(Some(b"")));
        assert_ne!(value_hash(Some(b"a")), value_hash(Some(b"b")));
        assert_eq!(value_hash(Some(b"same")), value_hash(Some(b"same")));
        // Length mixing: ("ab","c") vs ("a","bc") style collisions.
        assert_ne!(value_hash(Some(b"ab")), value_hash(Some(b"a\x00b")));
    }

    #[test]
    fn read_your_writes() {
        let mut b = WriteBuffer::new(false);
        assert_eq!(b.get(b"k"), None);
        b.put(b"k".to_vec(), b"v".to_vec());
        assert_eq!(b.get(b"k"), Some(Some(b"v".to_vec())));
        b.delete(b"k".to_vec());
        assert_eq!(b.get(b"k"), Some(None));
    }

    #[test]
    fn take_batch_contains_all_ops_and_clears() {
        let mut b = WriteBuffer::new(false);
        b.put(b"a".to_vec(), b"1".to_vec());
        b.put(b"b".to_vec(), b"2".to_vec());
        b.delete(b"c".to_vec());
        assert_eq!(b.write_count(), 3);
        let batch = b.take_batch();
        assert_eq!(batch.len(), 3);
        assert!(b.is_clean());
    }

    #[test]
    fn last_write_wins_within_buffer() {
        let mut b = WriteBuffer::new(false);
        b.put(b"k".to_vec(), b"v1".to_vec());
        b.put(b"k".to_vec(), b"v2".to_vec());
        let batch = b.take_batch();
        assert_eq!(batch.len(), 1, "coalesced");
    }

    #[test]
    fn read_tracking_only_when_enabled() {
        let mut off = WriteBuffer::new(false);
        off.note_read(b"k", Some(b"v"));
        assert!(off.read_set().is_empty());

        let mut on = WriteBuffer::new(true);
        on.note_read(b"k", Some(b"v"));
        assert_eq!(on.read_set().len(), 1);
        assert_eq!(on.read_set()[0].1, value_hash(Some(b"v")));
    }

    #[test]
    fn first_read_wins_in_read_set() {
        let mut b = WriteBuffer::new(true);
        b.note_read(b"k", Some(b"v1"));
        b.note_read(b"k", Some(b"v2"));
        assert_eq!(b.read_set()[0].1, value_hash(Some(b"v1")));
    }

    #[test]
    fn buffered_writes_are_not_recorded_as_reads() {
        let mut b = WriteBuffer::new(true);
        b.put(b"k".to_vec(), b"v".to_vec());
        b.note_read(b"k", Some(b"v"));
        assert!(b.read_set().is_empty(), "own writes are not external reads");
    }

    #[test]
    fn discard_clears_everything() {
        let mut b = WriteBuffer::new(true);
        b.put(b"k".to_vec(), b"v".to_vec());
        b.note_read(b"r", None);
        b.discard();
        assert!(b.is_clean());
        assert!(b.read_set().is_empty());
    }

    #[test]
    fn written_keys_lists_pending() {
        let mut b = WriteBuffer::new(false);
        b.put(b"b".to_vec(), b"1".to_vec());
        b.delete(b"a".to_vec());
        assert_eq!(b.written_keys(), vec![b"a".to_vec(), b"b".to_vec()]);
    }
}
