//! [`ObjectHost`]: the capability interface handed to an executing method.
//!
//! Scopes every storage operation to the current object's key prefix (the
//! LambdaObjects rule that "an object's functions can only modify data
//! associated with the object itself", §1), routes reads through the
//! invocation's write buffer, and forwards cross-object invocations to the
//! engine — which commits the buffered writes first, per §3.1.

use lambda_kv::{Db, WriteBatch};
use lambda_telemetry::InvocationContext;
use lambda_vm::{Host, HostError, VmValue};

use crate::buffer::WriteBuffer;
use crate::keys;
use crate::object::ObjectId;
use crate::scheduler::ObjectGuard;

/// The engine-side services a nested cross-object invocation needs.
///
/// Per §3.1 of the paper, the parts of an invocation before and after a
/// nested call are **two separate invocations**: the caller's writes commit
/// at the boundary, its object lock is *released* while the nested call
/// runs (which is what makes cyclic fan-outs — mutual followers, a user
/// following themselves — deadlock-free), and execution resumes as a fresh
/// invocation under a re-acquired lock at a new snapshot.
pub trait NestedInvoker: Sync {
    /// Atomically commit the caller's pending writes (called while the
    /// caller's lock is still held).
    ///
    /// # Errors
    /// Storage/replication failures, encoded as a [`HostError`].
    fn commit_source(
        &self,
        ctx: &InvocationContext,
        source: &ObjectId,
        batch: WriteBatch,
        written_keys: Vec<Vec<u8>>,
    ) -> Result<(), HostError>;

    /// Run the nested invocation (called with the caller's lock released).
    /// `ctx` is the caller's context: the nested invocation inherits the
    /// trace identity and the *remaining* deadline budget.
    ///
    /// # Errors
    /// Any nested failure, encoded as a [`HostError`].
    fn invoke_nested(
        &self,
        ctx: &InvocationContext,
        target: &ObjectId,
        method: &str,
        args: Vec<VmValue>,
        depth: usize,
    ) -> Result<VmValue, HostError>;

    /// Re-acquire `object`'s exclusive lock for the caller's resumption,
    /// and report the snapshot sequence the resumed invocation reads at.
    fn reacquire(&self, object: &ObjectId) -> (ObjectGuard, u64);
}

/// The [`Host`] implementation for one executing invocation.
pub struct ObjectHost<'a> {
    db: &'a Db,
    /// The invocation reads at this sequence (advanced by nested commits).
    snapshot_seq: u64,
    object: ObjectId,
    /// Pending writes + read set.
    pub buffer: WriteBuffer,
    read_only: bool,
    nested: Option<&'a dyn NestedInvoker>,
    /// Nesting depth of this invocation (0 = client-facing).
    depth: usize,
    /// The object lock held for this invocation; released across nested
    /// calls and re-acquired afterwards (§3.1 boundary semantics).
    pub guard: Option<ObjectGuard>,
    /// Collected log lines (surfaced in invocation reports).
    pub logs: Vec<String>,
    /// Number of nested invocations performed.
    pub nested_calls: u64,
    /// The invocation's context (trace identity + deadline); inherited by
    /// nested calls. Defaults to an unbounded background context.
    pub ctx: InvocationContext,
}

impl std::fmt::Debug for ObjectHost<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectHost")
            .field("object", &self.object)
            .field("read_only", &self.read_only)
            .field("snapshot_seq", &self.snapshot_seq)
            .finish()
    }
}

impl<'a> ObjectHost<'a> {
    /// Create a host for an invocation of `object`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        db: &'a Db,
        object: ObjectId,
        snapshot_seq: u64,
        read_only: bool,
        track_reads: bool,
        nested: Option<&'a dyn NestedInvoker>,
        depth: usize,
        guard: Option<ObjectGuard>,
    ) -> ObjectHost<'a> {
        ObjectHost {
            db,
            snapshot_seq,
            object,
            buffer: WriteBuffer::new(track_reads),
            read_only,
            nested,
            depth,
            guard,
            logs: Vec::new(),
            nested_calls: 0,
            ctx: InvocationContext::background(),
        }
    }

    /// Buffer-then-store read of a fully-qualified key.
    fn read_key(&mut self, full_key: &[u8]) -> Result<Option<Vec<u8>>, HostError> {
        if let Some(buffered) = self.buffer.get(full_key) {
            return Ok(buffered);
        }
        let value = self
            .db
            .get_at(full_key, self.snapshot_seq)
            .map_err(|e| HostError::Storage(e.to_string()))?;
        self.buffer.note_read(full_key, value.as_deref());
        Ok(value)
    }

    fn ensure_writable(&self) -> Result<(), HostError> {
        if self.read_only {
            Err(HostError::ReadOnlyViolation)
        } else {
            Ok(())
        }
    }

    fn collection_len(&mut self, field: &[u8]) -> Result<u64, HostError> {
        let ckey = keys::counter_key(&self.object, field);
        Ok(keys::decode_counter(self.read_key(&ckey)?.as_deref()))
    }
}

impl Host for ObjectHost<'_> {
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, HostError> {
        let full = keys::field_key(&self.object, key);
        self.read_key(&full)
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), HostError> {
        self.ensure_writable()?;
        let full = keys::field_key(&self.object, key);
        self.buffer.put(full, value.to_vec());
        Ok(())
    }

    fn delete(&mut self, key: &[u8]) -> Result<(), HostError> {
        self.ensure_writable()?;
        let full = keys::field_key(&self.object, key);
        self.buffer.delete(full);
        Ok(())
    }

    fn push(&mut self, field: &[u8], value: &[u8]) -> Result<(), HostError> {
        self.ensure_writable()?;
        let len = self.collection_len(field)?;
        self.buffer.put(keys::entry_key(&self.object, field, len), value.to_vec());
        self.buffer.put(keys::counter_key(&self.object, field), keys::encode_counter(len + 1));
        Ok(())
    }

    fn scan(
        &mut self,
        field: &[u8],
        limit: usize,
        newest_first: bool,
    ) -> Result<Vec<Vec<u8>>, HostError> {
        let len = self.collection_len(field)?;
        let take = (limit as u64).min(len);
        let mut out = Vec::with_capacity(take as usize);
        if newest_first {
            for i in (len - take..len).rev() {
                if let Some(v) = self.read_key(&keys::entry_key(&self.object, field, i))? {
                    out.push(v);
                }
            }
        } else {
            for i in 0..take {
                if let Some(v) = self.read_key(&keys::entry_key(&self.object, field, i))? {
                    out.push(v);
                }
            }
        }
        Ok(out)
    }

    fn count(&mut self, field: &[u8]) -> Result<u64, HostError> {
        self.collection_len(field)
    }

    fn invoke(
        &mut self,
        object: &[u8],
        method: &str,
        args: Vec<VmValue>,
    ) -> Result<VmValue, HostError> {
        self.ensure_writable()?;
        let Some(nested) = self.nested else {
            return Err(HostError::InvokeFailed("no nested invoker configured".into()));
        };
        self.nested_calls += 1;
        // Per §3.1: the writes so far commit before the nested call runs...
        let written = self.buffer.written_keys();
        let batch = self.buffer.take_batch();
        if !batch.is_empty() {
            nested.commit_source(&self.ctx, &self.object, batch, written)?;
        }
        // ...and the pre-call part is now a completed invocation: release
        // our object lock so the nested call (and everyone else) can make
        // progress even through follower cycles or self-invocations.
        let had_guard = self.guard.take().is_some();
        let target = ObjectId::new(object.to_vec());
        let result = nested.invoke_nested(&self.ctx, &target, method, args, self.depth + 1);
        if had_guard {
            // Resume as a fresh invocation: re-acquire and advance the
            // snapshot to see everything committed in the meantime.
            let (guard, seq) = nested.reacquire(&self.object);
            self.guard = Some(guard);
            self.snapshot_seq = seq;
        }
        result
    }

    fn invoke_many(
        &mut self,
        targets: Vec<Vec<u8>>,
        method: &str,
        args: Vec<VmValue>,
    ) -> Result<Vec<VmValue>, HostError> {
        self.ensure_writable()?;
        let Some(nested) = self.nested else {
            return Err(HostError::InvokeFailed("no nested invoker configured".into()));
        };
        if targets.is_empty() {
            return Ok(Vec::new());
        }
        self.nested_calls += targets.len() as u64;
        // Commit the pre-call part once, release the lock once, then run
        // the whole scatter in parallel — "updating many follower timelines
        // at once is done quickly by running the store_post calls in
        // parallel" (§3.2).
        let written = self.buffer.written_keys();
        let batch = self.buffer.take_batch();
        if !batch.is_empty() {
            nested.commit_source(&self.ctx, &self.object, batch, written)?;
        }
        let had_guard = self.guard.take().is_some();
        let depth = self.depth + 1;
        let ctx = self.ctx;
        // Bounded parallelism: scatter in waves so a celebrity fan-out
        // does not spawn thousands of threads at once.
        const FANOUT_WAVE: usize = 8;
        let mut results: Vec<Result<VmValue, HostError>> = Vec::with_capacity(targets.len());
        for wave in targets.chunks(FANOUT_WAVE) {
            let wave_results: Vec<Result<VmValue, HostError>> = std::thread::scope(|scope| {
                let handles: Vec<_> = wave
                    .iter()
                    .map(|target| {
                        let args = args.clone();
                        let target = ObjectId::new(target.clone());
                        scope
                            .spawn(move || nested.invoke_nested(&ctx, &target, method, args, depth))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|_| {
                            Err(HostError::InvokeFailed("fan-out thread panicked".into()))
                        })
                    })
                    .collect()
            });
            results.extend(wave_results);
        }
        if had_guard {
            let (guard, seq) = nested.reacquire(&self.object);
            self.guard = Some(guard);
            self.snapshot_seq = seq;
        }
        results.into_iter().collect()
    }

    fn self_id(&self) -> Vec<u8> {
        self.object.0.clone()
    }

    fn now_millis(&mut self) -> i64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as i64)
            .unwrap_or(0)
    }

    fn log(&mut self, msg: &str) {
        self.logs.push(msg.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_kv::Options;
    use std::path::PathBuf;

    fn tmpdb(name: &str) -> (Db, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("lambda-objhost-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (Db::open(&dir, Options::small_for_tests()).unwrap(), dir)
    }

    fn oid() -> ObjectId {
        ObjectId::from("user/1")
    }

    #[test]
    fn get_put_round_trip_through_buffer() {
        let (db, dir) = tmpdb("rt");
        let mut host = ObjectHost::new(&db, oid(), db.last_sequence(), false, false, None, 0, None);
        assert_eq!(host.get(b"name").unwrap(), None);
        host.put(b"name", b"ada").unwrap();
        assert_eq!(host.get(b"name").unwrap(), Some(b"ada".to_vec()), "read-your-writes");
        // Nothing visible in the store until commit.
        assert_eq!(db.get(&keys::field_key(&oid(), b"name")).unwrap(), None);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn keys_are_scoped_to_the_object() {
        let (db, dir) = tmpdb("scope");
        // Pre-populate another object's field.
        db.put(keys::field_key(&ObjectId::from("user/2"), b"name"), b"other".to_vec()).unwrap();
        let mut host = ObjectHost::new(&db, oid(), db.last_sequence(), false, false, None, 0, None);
        assert_eq!(host.get(b"name").unwrap(), None, "cannot see other objects");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn read_only_host_rejects_mutations() {
        let (db, dir) = tmpdb("ro");
        let mut host = ObjectHost::new(&db, oid(), db.last_sequence(), true, false, None, 0, None);
        assert_eq!(host.put(b"k", b"v"), Err(HostError::ReadOnlyViolation));
        assert_eq!(host.delete(b"k"), Err(HostError::ReadOnlyViolation));
        assert_eq!(host.push(b"f", b"v"), Err(HostError::ReadOnlyViolation));
        assert!(host.invoke(b"o", "m", vec![]).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn push_and_scan_orders() {
        let (db, dir) = tmpdb("coll");
        let mut host = ObjectHost::new(&db, oid(), db.last_sequence(), false, false, None, 0, None);
        for i in 0..5 {
            host.push(b"tl", format!("p{i}").as_bytes()).unwrap();
        }
        assert_eq!(host.count(b"tl").unwrap(), 5);
        assert_eq!(
            host.scan(b"tl", 2, true).unwrap(),
            vec![b"p4".to_vec(), b"p3".to_vec()],
            "newest first"
        );
        assert_eq!(
            host.scan(b"tl", 2, false).unwrap(),
            vec![b"p0".to_vec(), b"p1".to_vec()],
            "oldest first"
        );
        assert_eq!(host.scan(b"tl", 100, true).unwrap().len(), 5, "limit capped at len");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn collections_mix_committed_and_buffered() {
        let (db, dir) = tmpdb("mix");
        // Commit two entries directly.
        db.put(keys::entry_key(&oid(), b"tl", 0), b"c0".to_vec()).unwrap();
        db.put(keys::entry_key(&oid(), b"tl", 1), b"c1".to_vec()).unwrap();
        db.put(keys::counter_key(&oid(), b"tl"), keys::encode_counter(2)).unwrap();
        let mut host = ObjectHost::new(&db, oid(), db.last_sequence(), false, false, None, 0, None);
        host.push(b"tl", b"b2").unwrap();
        assert_eq!(host.count(b"tl").unwrap(), 3);
        assert_eq!(
            host.scan(b"tl", 3, true).unwrap(),
            vec![b"b2".to_vec(), b"c1".to_vec(), b"c0".to_vec()]
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn snapshot_isolation_from_concurrent_commits() {
        let (db, dir) = tmpdb("snap");
        db.put(keys::field_key(&oid(), b"k"), b"old".to_vec()).unwrap();
        let seq = db.last_sequence();
        let mut host = ObjectHost::new(&db, oid(), seq, false, false, None, 0, None);
        // Another commit lands after the host's snapshot.
        db.put(keys::field_key(&oid(), b"k"), b"new".to_vec()).unwrap();
        assert_eq!(host.get(b"k").unwrap(), Some(b"old".to_vec()));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn read_set_tracks_reads_and_skips_own_writes() {
        let (db, dir) = tmpdb("reads");
        let mut host = ObjectHost::new(&db, oid(), db.last_sequence(), true, true, None, 0, None);
        host.get(b"name").unwrap();
        host.count(b"tl").unwrap();
        let rs = host.buffer.read_set();
        assert_eq!(rs.len(), 2, "field read + counter read");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn invoke_without_engine_fails_cleanly() {
        let (db, dir) = tmpdb("noeng");
        let mut host = ObjectHost::new(&db, oid(), db.last_sequence(), false, false, None, 0, None);
        assert!(matches!(host.invoke(b"user/2", "m", vec![]), Err(HostError::InvokeFailed(_))));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn self_id_and_logging() {
        let (db, dir) = tmpdb("misc");
        let mut host = ObjectHost::new(&db, oid(), db.last_sequence(), false, false, None, 0, None);
        assert_eq!(host.self_id(), b"user/1".to_vec());
        host.log("hello");
        assert_eq!(host.logs, vec!["hello".to_string()]);
        assert!(host.now_millis() > 0);
        std::fs::remove_dir_all(dir).ok();
    }
}
