//! Per-object scheduling / concurrency control.
//!
//! §4.2: storage nodes "avoid write conflicts by not scheduling two
//! functions modifying data of the same object at the same time", combining
//! function scheduling with concurrency control — the application developer
//! "determine\[s\] the granularity of locks" by deciding what an object is.
//!
//! Mutating invocations take the object's lock exclusively; read-only
//! invocations share it. Alternative modes exist for the scheduler
//! ablation (ABL-SCHED in DESIGN.md): one global lock (coarse), or no
//! locking at all (unsafe, for measuring what the locks cost).

use std::collections::HashMap;
use std::sync::Arc;

use lambda_telemetry::{Counter, InvocationContext, Registry};
use parking_lot::{Mutex, RwLock};

use crate::error::InvokeError;
use crate::object::ObjectId;

/// Locking disciplines, selectable for ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// One reader-writer lock per object (the paper's design).
    #[default]
    PerObject,
    /// A single lock for the whole node (what a naive embedding would do).
    Global,
    /// No locking: invocation linearizability is **not** provided. Only for
    /// measuring lock overhead against.
    Unsafe,
}

/// Scheduler statistics — a thin view over the telemetry registry's
/// `sched_*` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Exclusive acquisitions.
    pub exclusive: u64,
    /// Shared acquisitions.
    pub shared: u64,
    /// Invocations shed at dequeue because their deadline had expired.
    pub shed: u64,
}

/// Grants and tracks object locks.
pub struct Scheduler {
    mode: SchedulerMode,
    locks: Mutex<HashMap<ObjectId, Arc<RwLock<()>>>>,
    global: Arc<RwLock<()>>,
    exclusive: Counter,
    shared: Counter,
    shed: Counter,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler").field("mode", &self.mode).finish()
    }
}

/// A held object lock; released on drop.
pub struct ObjectGuard {
    _lock: Option<GuardKind>,
}

impl std::fmt::Debug for ObjectGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectGuard").finish()
    }
}

enum GuardKind {
    Shared(#[allow(dead_code)] parking_lot::ArcRwLockReadGuard<parking_lot::RawRwLock, ()>),
    Exclusive(#[allow(dead_code)] parking_lot::ArcRwLockWriteGuard<parking_lot::RawRwLock, ()>),
}

impl Scheduler {
    /// A scheduler with the given discipline and private counters.
    pub fn new(mode: SchedulerMode) -> Scheduler {
        Scheduler {
            mode,
            locks: Mutex::new(HashMap::new()),
            global: Arc::new(RwLock::new(())),
            exclusive: Counter::new(),
            shared: Counter::new(),
            shed: Counter::new(),
        }
    }

    /// A scheduler whose counters live in `registry` (as `sched_exclusive`,
    /// `sched_shared`, `sched_shed`), so node stats and scheduler stats are
    /// views over the same cells.
    pub fn with_registry(mode: SchedulerMode, registry: &Registry) -> Scheduler {
        Scheduler {
            mode,
            locks: Mutex::new(HashMap::new()),
            global: Arc::new(RwLock::new(())),
            exclusive: registry.counter("sched_exclusive"),
            shared: registry.counter("sched_shared"),
            shed: registry.counter("sched_shed"),
        }
    }

    /// The active discipline.
    pub fn mode(&self) -> SchedulerMode {
        self.mode
    }

    fn lock_for(&self, object: &ObjectId) -> Arc<RwLock<()>> {
        match self.mode {
            SchedulerMode::Global => Arc::clone(&self.global),
            _ => {
                let mut locks = self.locks.lock();
                Arc::clone(locks.entry(object.clone()).or_default())
            }
        }
    }

    /// Acquire `object` for a mutating invocation (exclusive), blocking
    /// until granted. If `object` appears in `held`, the caller already
    /// owns it higher up a nested-invocation chain and no lock is taken
    /// (re-entrancy; see §3.1 — the outer parts are separate invocations).
    pub fn acquire_exclusive(&self, object: &ObjectId, held: &[ObjectId]) -> ObjectGuard {
        self.exclusive.incr();
        if self.mode == SchedulerMode::Unsafe || held.contains(object) {
            return ObjectGuard { _lock: None };
        }
        let lock = self.lock_for(object);
        ObjectGuard { _lock: Some(GuardKind::Exclusive(lock.write_arc())) }
    }

    /// Acquire `object` for a read-only invocation (shared).
    pub fn acquire_shared(&self, object: &ObjectId, held: &[ObjectId]) -> ObjectGuard {
        self.shared.incr();
        if self.mode == SchedulerMode::Unsafe || held.contains(object) {
            return ObjectGuard { _lock: None };
        }
        let lock = self.lock_for(object);
        ObjectGuard { _lock: Some(GuardKind::Shared(lock.read_arc())) }
    }

    /// Deadline-aware acquire: queue for `object`, then *re-check the
    /// deadline at dequeue time* — an invocation whose budget expired
    /// while it waited behind the lock is shed here, before any
    /// execute/commit work, and never reaches the engine.
    ///
    /// # Errors
    /// [`InvokeError::DeadlineExceeded`] when `ctx`'s deadline has passed
    /// (either before enqueueing or during the wait).
    pub fn acquire_ctx(
        &self,
        object: &ObjectId,
        held: &[ObjectId],
        exclusive: bool,
        ctx: &InvocationContext,
    ) -> Result<ObjectGuard, InvokeError> {
        // Already out of budget: shed without touching the lock table.
        if ctx.expired() {
            self.shed.incr();
            return Err(InvokeError::DeadlineExceeded);
        }
        let guard = if exclusive {
            self.acquire_exclusive(object, held)
        } else {
            self.acquire_shared(object, held)
        };
        // Dequeue-time check: the wait itself may have consumed the budget.
        if ctx.expired() {
            drop(guard);
            self.shed.incr();
            return Err(InvokeError::DeadlineExceeded);
        }
        Ok(guard)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            exclusive: self.exclusive.get(),
            shared: self.shared.get(),
            shed: self.shed.get(),
        }
    }

    /// Drop lock table entries no longer held by anyone (housekeeping for
    /// long-running nodes with many short-lived objects).
    pub fn gc(&self) {
        let mut locks = self.locks.lock();
        locks.retain(|_, l| Arc::strong_count(l) > 1 || l.is_locked());
    }

    /// Number of objects with materialized locks.
    pub fn tracked_objects(&self) -> usize {
        self.locks.lock().len()
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new(SchedulerMode::PerObject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn oid(s: &str) -> ObjectId {
        ObjectId::from(s)
    }

    #[test]
    fn exclusive_excludes_exclusive_same_object() {
        let sched = Arc::new(Scheduler::default());
        let running = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let sched = Arc::clone(&sched);
                let running = Arc::clone(&running);
                let max_seen = Arc::clone(&max_seen);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let _g = sched.acquire_exclusive(&oid("hot"), &[]);
                        let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_micros(20));
                        running.fetch_sub(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "never two writers at once");
    }

    #[test]
    fn different_objects_run_in_parallel() {
        let sched = Arc::new(Scheduler::default());
        let g1 = sched.acquire_exclusive(&oid("a"), &[]);
        // Must not block:
        let g2 = sched.acquire_exclusive(&oid("b"), &[]);
        drop((g1, g2));
    }

    #[test]
    fn readers_share() {
        let sched = Arc::new(Scheduler::default());
        let g1 = sched.acquire_shared(&oid("a"), &[]);
        let g2 = sched.acquire_shared(&oid("a"), &[]);
        drop((g1, g2));
        assert_eq!(sched.stats().shared, 2);
    }

    #[test]
    fn writer_blocks_reader() {
        let sched = Arc::new(Scheduler::default());
        let g = sched.acquire_exclusive(&oid("a"), &[]);
        let sched2 = Arc::clone(&sched);
        let t = std::thread::spawn(move || {
            let _g = sched2.acquire_shared(&oid("a"), &[]);
            // Reached only after the writer releases.
            true
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!t.is_finished(), "reader must wait for writer");
        drop(g);
        assert!(t.join().unwrap());
    }

    #[test]
    fn held_objects_reenter_without_deadlock() {
        let sched = Scheduler::default();
        let id = oid("self-follower");
        let g1 = sched.acquire_exclusive(&id, &[]);
        // A nested invocation on the same object in the same chain.
        let g2 = sched.acquire_exclusive(&id, std::slice::from_ref(&id));
        drop((g1, g2));
    }

    #[test]
    fn global_mode_serializes_everything() {
        let sched = Scheduler::new(SchedulerMode::Global);
        let g1 = sched.acquire_exclusive(&oid("a"), &[]);
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = Arc::clone(&done);
        let sched = Arc::new(sched);
        let sched2 = Arc::clone(&sched);
        let t = std::thread::spawn(move || {
            let _g = sched2.acquire_exclusive(&oid("b"), &[]);
            done2.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(done.load(Ordering::SeqCst), 0, "different object still blocked");
        drop(g1);
        t.join().unwrap();
    }

    #[test]
    fn unsafe_mode_never_blocks() {
        let sched = Scheduler::new(SchedulerMode::Unsafe);
        let g1 = sched.acquire_exclusive(&oid("a"), &[]);
        let g2 = sched.acquire_exclusive(&oid("a"), &[]);
        drop((g1, g2));
    }

    #[test]
    fn expired_context_is_shed_before_enqueue() {
        let sched = Scheduler::default();
        // A context whose budget is already zero.
        let ctx = InvocationContext::from_wire(1, 0, 0);
        let res = sched.acquire_ctx(&oid("a"), &[], true, &ctx);
        assert!(matches!(res, Err(InvokeError::DeadlineExceeded)));
        assert_eq!(sched.stats().shed, 1);
        // It never materialized a lock — nothing reached the lock table.
        assert_eq!(sched.tracked_objects(), 0);
    }

    #[test]
    fn budget_exhausted_while_queued_is_shed_at_dequeue() {
        let sched = Arc::new(Scheduler::default());
        let id = oid("slow");
        // A long-running invocation holds the object...
        let g = sched.acquire_exclusive(&id, &[]);
        let sched2 = Arc::clone(&sched);
        let id2 = id.clone();
        let t = std::thread::spawn(move || {
            // ...while a follower with a 20ms budget queues behind it.
            let ctx = InvocationContext::from_wire(2, 20_000_000, 0);
            sched2.acquire_ctx(&id2, &[], true, &ctx)
        });
        // Hold the lock well past the follower's budget.
        std::thread::sleep(Duration::from_millis(80));
        drop(g);
        let res = t.join().unwrap();
        assert!(matches!(res, Err(InvokeError::DeadlineExceeded)), "shed at dequeue: {res:?}");
        assert_eq!(sched.stats().shed, 1);
    }

    #[test]
    fn unexpired_context_acquires_normally() {
        let sched = Scheduler::default();
        let ctx = InvocationContext::client(Duration::from_secs(10));
        let g = sched.acquire_ctx(&oid("a"), &[], true, &ctx).unwrap();
        drop(g);
        let g = sched.acquire_ctx(&oid("a"), &[], false, &ctx).unwrap();
        drop(g);
        let s = sched.stats();
        assert_eq!((s.exclusive, s.shared, s.shed), (1, 1, 0));
    }

    #[test]
    fn background_context_never_sheds() {
        let sched = Scheduler::default();
        let ctx = InvocationContext::background();
        assert!(sched.acquire_ctx(&oid("a"), &[], true, &ctx).is_ok());
        assert_eq!(sched.stats().shed, 0);
    }

    #[test]
    fn registry_backed_counters_are_shared() {
        let reg = lambda_telemetry::Registry::new();
        let sched = Scheduler::with_registry(SchedulerMode::PerObject, &reg);
        let _g = sched.acquire_exclusive(&oid("a"), &[]);
        assert_eq!(reg.counter_value("sched_exclusive"), 1);
        assert_eq!(sched.stats().exclusive, 1);
    }

    #[test]
    fn gc_reclaims_unused_locks() {
        let sched = Scheduler::default();
        for i in 0..100 {
            let _g = sched.acquire_exclusive(&oid(&format!("tmp-{i}")), &[]);
        }
        assert_eq!(sched.tracked_objects(), 100);
        sched.gc();
        assert_eq!(sched.tracked_objects(), 0);
        // A held lock survives gc.
        let _g = sched.acquire_exclusive(&oid("live"), &[]);
        sched.gc();
        assert_eq!(sched.tracked_objects(), 1);
    }
}
