//! Per-object scheduling / concurrency control.
//!
//! §4.2: storage nodes "avoid write conflicts by not scheduling two
//! functions modifying data of the same object at the same time", combining
//! function scheduling with concurrency control — the application developer
//! "determine\[s\] the granularity of locks" by deciding what an object is.
//!
//! Mutating invocations take the object's lock exclusively; read-only
//! invocations share it. Alternative modes exist for the scheduler
//! ablation (ABL-SCHED in DESIGN.md): one global lock (coarse), or no
//! locking at all (unsafe, for measuring what the locks cost).
//!
//! The lock is a FIFO queue of waiters rather than a thread-parking
//! rwlock: a waiter may be a parked thread (the blocking `acquire_*`
//! calls) **or** a continuation ([`Scheduler::acquire_deferred`]) that the
//! releasing thread runs when the grant happens. Deferred waiters are what
//! let an RPC worker hand off a queued invocation and go serve other
//! requests instead of parking on a hot object.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crossbeam::channel;
use lambda_telemetry::{Counter, InvocationContext, Registry};
use parking_lot::Mutex;

use crate::error::InvokeError;
use crate::object::ObjectId;

/// Locking disciplines, selectable for ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// One reader-writer lock per object (the paper's design).
    #[default]
    PerObject,
    /// A single lock for the whole node (what a naive embedding would do).
    Global,
    /// No locking: invocation linearizability is **not** provided. Only for
    /// measuring lock overhead against.
    Unsafe,
}

/// Scheduler statistics — a thin view over the telemetry registry's
/// `sched_*` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Exclusive acquisitions.
    pub exclusive: u64,
    /// Shared acquisitions.
    pub shared: u64,
    /// Invocations shed at dequeue because their deadline had expired.
    pub shed: u64,
}

/// Completion for a deferred lock acquisition.
pub type GrantCallback = Box<dyn FnOnce(Result<ObjectGuard, InvokeError>) + Send>;

thread_local! {
    /// Nested grant-continuation depth on this thread (see [`run_grant`]).
    static GRANT_DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Longest chain of grant continuations run on one stack before the rest
/// of the chain is handed to a fresh thread.
///
/// A continuation that finishes its invocation synchronously (sync-WAL
/// replication) drops its guard inside its own frame, which grants the
/// next waiter inline — so draining an N-deep hot-object queue would
/// otherwise recurse N invocation frames on one worker stack and
/// overflow under sustained hotspot load.
const GRANT_INLINE_DEPTH: usize = 32;

/// Run a grant continuation, bounding how deep continuation chains grow
/// on this stack; past the limit the remainder of the chain moves to a
/// fresh thread (never back onto a frame that might be blocked waiting
/// to reacquire — that would deadlock the host's nested-invoke resume).
fn run_grant(grant: GrantCallback, result: Result<ObjectGuard, InvokeError>) {
    let depth = GRANT_DEPTH.with(std::cell::Cell::get);
    if depth >= GRANT_INLINE_DEPTH {
        let cell = std::sync::Arc::new(Mutex::new(Some((grant, result))));
        let theirs = std::sync::Arc::clone(&cell);
        let spawned =
            std::thread::Builder::new().name("lock-grant-drain".into()).spawn(move || {
                if let Some((grant, result)) = theirs.lock().take() {
                    grant(result);
                }
            });
        if spawned.is_err() {
            // Out of threads: running inline risks the deep stack, but
            // dropping the grant would leak the lock forever.
            if let Some((grant, result)) = cell.lock().take() {
                grant(result);
            }
        }
        return;
    }
    GRANT_DEPTH.with(|d| d.set(depth + 1));
    grant(result);
    GRANT_DEPTH.with(|d| d.set(depth));
}

struct Waiter {
    exclusive: bool,
    /// Deadline carried into the queue; checked again at grant time.
    ctx: Option<InvocationContext>,
    grant: GrantCallback,
}

#[derive(Default)]
struct LockState {
    readers: usize,
    writer: bool,
    queue: VecDeque<Waiter>,
}

/// One object's lock: mode bits plus the FIFO waiter queue.
struct ObjectLock {
    state: Mutex<LockState>,
    shed: Counter,
}

impl ObjectLock {
    fn new(shed: Counter) -> ObjectLock {
        ObjectLock { state: Mutex::new(LockState::default()), shed }
    }

    fn busy(&self) -> bool {
        let st = self.state.lock();
        st.writer || st.readers > 0 || !st.queue.is_empty()
    }

    /// Release one holder and hand the lock to the next waiters in FIFO
    /// order (one writer, or a batch of contiguous readers). Expired
    /// waiters are shed here — at dequeue — before any execute/commit
    /// work. Grant continuations run on the releasing thread, outside the
    /// lock's mutex.
    fn release(self: &Arc<Self>, exclusive: bool) {
        let mut grants: Vec<(GrantCallback, Result<ObjectGuard, InvokeError>)> = Vec::new();
        {
            let mut st = self.state.lock();
            if exclusive {
                debug_assert!(st.writer);
                st.writer = false;
            } else {
                debug_assert!(st.readers > 0);
                st.readers -= 1;
            }
            self.grant_locked(&mut st, &mut grants);
        }
        for (grant, result) in grants {
            run_grant(grant, result);
        }
    }

    fn grant_locked(
        self: &Arc<Self>,
        st: &mut LockState,
        grants: &mut Vec<(GrantCallback, Result<ObjectGuard, InvokeError>)>,
    ) {
        while let Some(front) = st.queue.front() {
            // Shed waiters whose budget died in the queue, regardless of
            // whether the lock is free for them.
            if front.ctx.as_ref().is_some_and(InvocationContext::expired) {
                let w = st.queue.pop_front().expect("front exists");
                self.shed.incr();
                grants.push((w.grant, Err(InvokeError::DeadlineExceeded)));
                continue;
            }
            if front.exclusive {
                if st.writer || st.readers > 0 {
                    break;
                }
                let w = st.queue.pop_front().expect("front exists");
                st.writer = true;
                let guard = ObjectGuard { lock: Some((Arc::clone(self), true)) };
                grants.push((w.grant, Ok(guard)));
                break;
            }
            // Shared: admit a batch of contiguous readers.
            if st.writer {
                break;
            }
            let w = st.queue.pop_front().expect("front exists");
            st.readers += 1;
            let guard = ObjectGuard { lock: Some((Arc::clone(self), false)) };
            grants.push((w.grant, Ok(guard)));
        }
    }
}

/// Grants and tracks object locks.
pub struct Scheduler {
    mode: SchedulerMode,
    locks: Mutex<HashMap<ObjectId, Arc<ObjectLock>>>,
    global: Arc<ObjectLock>,
    exclusive: Counter,
    shared: Counter,
    shed: Counter,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler").field("mode", &self.mode).finish()
    }
}

/// A held object lock; released on drop. Plain data (`Send`), so it can
/// travel with a deferred invocation across threads — from the granting
/// thread through commit and replication completion — and be dropped
/// wherever the reply finally happens.
pub struct ObjectGuard {
    lock: Option<(Arc<ObjectLock>, bool)>,
}

impl std::fmt::Debug for ObjectGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectGuard").finish()
    }
}

impl Drop for ObjectGuard {
    fn drop(&mut self) {
        if let Some((lock, exclusive)) = self.lock.take() {
            lock.release(exclusive);
        }
    }
}

impl Scheduler {
    /// A scheduler with the given discipline and private counters.
    pub fn new(mode: SchedulerMode) -> Scheduler {
        let shed = Counter::new();
        Scheduler {
            mode,
            locks: Mutex::new(HashMap::new()),
            global: Arc::new(ObjectLock::new(shed.clone())),
            exclusive: Counter::new(),
            shared: Counter::new(),
            shed,
        }
    }

    /// A scheduler whose counters live in `registry` (as `sched_exclusive`,
    /// `sched_shared`, `sched_shed`), so node stats and scheduler stats are
    /// views over the same cells.
    pub fn with_registry(mode: SchedulerMode, registry: &Registry) -> Scheduler {
        let shed = registry.counter("sched_shed");
        Scheduler {
            mode,
            locks: Mutex::new(HashMap::new()),
            global: Arc::new(ObjectLock::new(shed.clone())),
            exclusive: registry.counter("sched_exclusive"),
            shared: registry.counter("sched_shared"),
            shed,
        }
    }

    /// The active discipline.
    pub fn mode(&self) -> SchedulerMode {
        self.mode
    }

    fn lock_for(&self, object: &ObjectId) -> Arc<ObjectLock> {
        match self.mode {
            SchedulerMode::Global => Arc::clone(&self.global),
            _ => {
                let mut locks = self.locks.lock();
                Arc::clone(
                    locks
                        .entry(object.clone())
                        .or_insert_with(|| Arc::new(ObjectLock::new(self.shed.clone()))),
                )
            }
        }
    }

    /// Core acquire: immediate grant when the lock is free (FIFO — an
    /// empty queue), else enqueue. Returns the guard (and the unused grant
    /// callback) when immediate, or `None` after parking `grant` in the
    /// queue.
    fn acquire_with(
        &self,
        object: &ObjectId,
        exclusive: bool,
        ctx: Option<InvocationContext>,
        grant: GrantCallback,
    ) -> Option<(ObjectGuard, GrantCallback)> {
        let lock = self.lock_for(object);
        let mut st = lock.state.lock();
        let free = if exclusive {
            !st.writer && st.readers == 0 && st.queue.is_empty()
        } else {
            !st.writer && st.queue.is_empty()
        };
        if free {
            if exclusive {
                st.writer = true;
            } else {
                st.readers += 1;
            }
            drop(st);
            Some((ObjectGuard { lock: Some((lock, exclusive)) }, grant))
        } else {
            st.queue.push_back(Waiter { exclusive, ctx, grant });
            None
        }
    }

    fn acquire_blocking(
        &self,
        object: &ObjectId,
        exclusive: bool,
        ctx: Option<InvocationContext>,
    ) -> Result<ObjectGuard, InvokeError> {
        let (tx, rx) = channel::bounded(1);
        let grant: GrantCallback = Box::new(move |res| {
            let _ = tx.send(res);
        });
        match self.acquire_with(object, exclusive, ctx, grant) {
            Some((guard, _unused_grant)) => Ok(guard),
            None => rx.recv().expect("lock queue never drops waiters"),
        }
    }

    /// Acquire `object` for a mutating invocation (exclusive), blocking
    /// until granted. If `object` appears in `held`, the caller already
    /// owns it higher up a nested-invocation chain and no lock is taken
    /// (re-entrancy; see §3.1 — the outer parts are separate invocations).
    pub fn acquire_exclusive(&self, object: &ObjectId, held: &[ObjectId]) -> ObjectGuard {
        self.exclusive.incr();
        if self.mode == SchedulerMode::Unsafe || held.contains(object) {
            return ObjectGuard { lock: None };
        }
        self.acquire_blocking(object, true, None).expect("no deadline: cannot be shed")
    }

    /// Acquire `object` for a read-only invocation (shared).
    pub fn acquire_shared(&self, object: &ObjectId, held: &[ObjectId]) -> ObjectGuard {
        self.shared.incr();
        if self.mode == SchedulerMode::Unsafe || held.contains(object) {
            return ObjectGuard { lock: None };
        }
        self.acquire_blocking(object, false, None).expect("no deadline: cannot be shed")
    }

    /// Deadline-aware acquire: queue for `object`, then *re-check the
    /// deadline at dequeue time* — an invocation whose budget expired
    /// while it waited behind the lock is shed here, before any
    /// execute/commit work, and never reaches the engine.
    ///
    /// # Errors
    /// [`InvokeError::DeadlineExceeded`] when `ctx`'s deadline has passed
    /// (either before enqueueing or during the wait).
    pub fn acquire_ctx(
        &self,
        object: &ObjectId,
        held: &[ObjectId],
        exclusive: bool,
        ctx: &InvocationContext,
    ) -> Result<ObjectGuard, InvokeError> {
        // Already out of budget: shed without touching the lock table.
        if ctx.expired() {
            self.shed.incr();
            return Err(InvokeError::DeadlineExceeded);
        }
        if exclusive {
            self.exclusive.incr();
        } else {
            self.shared.incr();
        }
        if self.mode == SchedulerMode::Unsafe || held.contains(object) {
            return Ok(ObjectGuard { lock: None });
        }
        let guard = self.acquire_blocking(object, exclusive, Some(*ctx))?;
        // Grant-time race: the budget may have run out right as the lock
        // was handed over.
        if ctx.expired() {
            drop(guard);
            self.shed.incr();
            return Err(InvokeError::DeadlineExceeded);
        }
        Ok(guard)
    }

    /// Deferred deadline-aware acquire: like
    /// [`acquire_ctx`](Scheduler::acquire_ctx), but instead of parking this
    /// thread the continuation `cont` runs when the lock is granted — on
    /// *this* thread when the lock is free right now, else on whichever
    /// thread releases the lock. Waiters whose deadline expires in the
    /// queue are shed with [`InvokeError::DeadlineExceeded`] at grant time.
    pub fn acquire_deferred(
        &self,
        object: &ObjectId,
        held: &[ObjectId],
        exclusive: bool,
        ctx: &InvocationContext,
        cont: GrantCallback,
    ) {
        if ctx.expired() {
            self.shed.incr();
            cont(Err(InvokeError::DeadlineExceeded));
            return;
        }
        if exclusive {
            self.exclusive.incr();
        } else {
            self.shared.incr();
        }
        if self.mode == SchedulerMode::Unsafe || held.contains(object) {
            cont(Ok(ObjectGuard { lock: None }));
            return;
        }
        // `acquire_with` either grants immediately (we run the
        // continuation inline on this thread) or parks `cont` in the FIFO
        // queue for the releasing thread to run.
        if let Some((guard, cont)) = self.acquire_with(object, exclusive, Some(*ctx), cont) {
            run_grant(cont, Ok(guard));
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            exclusive: self.exclusive.get(),
            shared: self.shared.get(),
            shed: self.shed.get(),
        }
    }

    /// Drop lock table entries no longer held by anyone (housekeeping for
    /// long-running nodes with many short-lived objects).
    pub fn gc(&self) {
        let mut locks = self.locks.lock();
        locks.retain(|_, l| Arc::strong_count(l) > 1 || l.busy());
    }

    /// Number of objects with materialized locks.
    pub fn tracked_objects(&self) -> usize {
        self.locks.lock().len()
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new(SchedulerMode::PerObject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn oid(s: &str) -> ObjectId {
        ObjectId::from(s)
    }

    #[test]
    fn exclusive_excludes_exclusive_same_object() {
        let sched = Arc::new(Scheduler::default());
        let running = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let sched = Arc::clone(&sched);
                let running = Arc::clone(&running);
                let max_seen = Arc::clone(&max_seen);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let _g = sched.acquire_exclusive(&oid("hot"), &[]);
                        let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_micros(20));
                        running.fetch_sub(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "never two writers at once");
    }

    #[test]
    fn different_objects_run_in_parallel() {
        let sched = Arc::new(Scheduler::default());
        let g1 = sched.acquire_exclusive(&oid("a"), &[]);
        // Must not block:
        let g2 = sched.acquire_exclusive(&oid("b"), &[]);
        drop((g1, g2));
    }

    #[test]
    fn readers_share() {
        let sched = Arc::new(Scheduler::default());
        let g1 = sched.acquire_shared(&oid("a"), &[]);
        let g2 = sched.acquire_shared(&oid("a"), &[]);
        drop((g1, g2));
        assert_eq!(sched.stats().shared, 2);
    }

    #[test]
    fn writer_blocks_reader() {
        let sched = Arc::new(Scheduler::default());
        let g = sched.acquire_exclusive(&oid("a"), &[]);
        let sched2 = Arc::clone(&sched);
        let t = std::thread::spawn(move || {
            let _g = sched2.acquire_shared(&oid("a"), &[]);
            // Reached only after the writer releases.
            true
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!t.is_finished(), "reader must wait for writer");
        drop(g);
        assert!(t.join().unwrap());
    }

    #[test]
    fn held_objects_reenter_without_deadlock() {
        let sched = Scheduler::default();
        let id = oid("self-follower");
        let g1 = sched.acquire_exclusive(&id, &[]);
        // A nested invocation on the same object in the same chain.
        let g2 = sched.acquire_exclusive(&id, std::slice::from_ref(&id));
        drop((g1, g2));
    }

    #[test]
    fn global_mode_serializes_everything() {
        let sched = Scheduler::new(SchedulerMode::Global);
        let g1 = sched.acquire_exclusive(&oid("a"), &[]);
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = Arc::clone(&done);
        let sched = Arc::new(sched);
        let sched2 = Arc::clone(&sched);
        let t = std::thread::spawn(move || {
            let _g = sched2.acquire_exclusive(&oid("b"), &[]);
            done2.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(done.load(Ordering::SeqCst), 0, "different object still blocked");
        drop(g1);
        t.join().unwrap();
    }

    #[test]
    fn unsafe_mode_never_blocks() {
        let sched = Scheduler::new(SchedulerMode::Unsafe);
        let g1 = sched.acquire_exclusive(&oid("a"), &[]);
        let g2 = sched.acquire_exclusive(&oid("a"), &[]);
        drop((g1, g2));
    }

    #[test]
    fn expired_context_is_shed_before_enqueue() {
        let sched = Scheduler::default();
        // A context whose budget is already zero.
        let ctx = InvocationContext::from_wire(1, 0, 0);
        let res = sched.acquire_ctx(&oid("a"), &[], true, &ctx);
        assert!(matches!(res, Err(InvokeError::DeadlineExceeded)));
        assert_eq!(sched.stats().shed, 1);
        // It never materialized a lock — nothing reached the lock table.
        assert_eq!(sched.tracked_objects(), 0);
    }

    #[test]
    fn budget_exhausted_while_queued_is_shed_at_dequeue() {
        let sched = Arc::new(Scheduler::default());
        let id = oid("slow");
        // A long-running invocation holds the object...
        let g = sched.acquire_exclusive(&id, &[]);
        let sched2 = Arc::clone(&sched);
        let id2 = id.clone();
        let t = std::thread::spawn(move || {
            // ...while a follower with a 20ms budget queues behind it.
            let ctx = InvocationContext::from_wire(2, 20_000_000, 0);
            sched2.acquire_ctx(&id2, &[], true, &ctx)
        });
        // Hold the lock well past the follower's budget.
        std::thread::sleep(Duration::from_millis(80));
        drop(g);
        let res = t.join().unwrap();
        assert!(matches!(res, Err(InvokeError::DeadlineExceeded)), "shed at dequeue: {res:?}");
        assert_eq!(sched.stats().shed, 1);
    }

    #[test]
    fn unexpired_context_acquires_normally() {
        let sched = Scheduler::default();
        let ctx = InvocationContext::client(Duration::from_secs(10));
        let g = sched.acquire_ctx(&oid("a"), &[], true, &ctx).unwrap();
        drop(g);
        let g = sched.acquire_ctx(&oid("a"), &[], false, &ctx).unwrap();
        drop(g);
        let s = sched.stats();
        assert_eq!((s.exclusive, s.shared, s.shed), (1, 1, 0));
    }

    #[test]
    fn background_context_never_sheds() {
        let sched = Scheduler::default();
        let ctx = InvocationContext::background();
        assert!(sched.acquire_ctx(&oid("a"), &[], true, &ctx).is_ok());
        assert_eq!(sched.stats().shed, 0);
    }

    #[test]
    fn registry_backed_counters_are_shared() {
        let reg = lambda_telemetry::Registry::new();
        let sched = Scheduler::with_registry(SchedulerMode::PerObject, &reg);
        let _g = sched.acquire_exclusive(&oid("a"), &[]);
        assert_eq!(reg.counter_value("sched_exclusive"), 1);
        assert_eq!(sched.stats().exclusive, 1);
    }

    #[test]
    fn gc_reclaims_unused_locks() {
        let sched = Scheduler::default();
        for i in 0..100 {
            let _g = sched.acquire_exclusive(&oid(&format!("tmp-{i}")), &[]);
        }
        assert_eq!(sched.tracked_objects(), 100);
        sched.gc();
        assert_eq!(sched.tracked_objects(), 0);
        // A held lock survives gc.
        let _g = sched.acquire_exclusive(&oid("live"), &[]);
        sched.gc();
        assert_eq!(sched.tracked_objects(), 1);
    }

    #[test]
    fn deferred_acquire_runs_inline_when_free() {
        let sched = Scheduler::default();
        let ctx = InvocationContext::client(Duration::from_secs(5));
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        sched.acquire_deferred(
            &oid("a"),
            &[],
            true,
            &ctx,
            Box::new(move |res| {
                assert!(res.is_ok());
                ran2.fetch_add(1, Ordering::SeqCst);
            }),
        );
        assert_eq!(ran.load(Ordering::SeqCst), 1, "free lock grants inline");
    }

    #[test]
    fn deferred_acquire_granted_by_releasing_thread() {
        let sched = Arc::new(Scheduler::default());
        let id = oid("hot");
        let ctx = InvocationContext::client(Duration::from_secs(5));
        let g = sched.acquire_exclusive(&id, &[]);
        let (tx, rx) = channel::unbounded();
        sched.acquire_deferred(
            &id,
            &[],
            true,
            &ctx,
            Box::new(move |res| {
                tx.send(std::thread::current().id()).unwrap();
                drop(res);
            }),
        );
        assert!(rx.try_recv().is_err(), "must wait for the holder");
        let releaser = std::thread::spawn(move || {
            drop(g);
            std::thread::current().id()
        });
        let releaser_id = releaser.join().unwrap();
        let granted_on = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(granted_on, releaser_id, "continuation runs on the releasing thread");
    }

    #[test]
    fn deferred_waiter_expired_in_queue_is_shed_at_grant() {
        let sched = Arc::new(Scheduler::default());
        let id = oid("slow");
        let g = sched.acquire_exclusive(&id, &[]);
        let ctx = InvocationContext::from_wire(7, 20_000_000, 0); // 20ms budget
        let (tx, rx) = channel::unbounded();
        sched.acquire_deferred(
            &id,
            &[],
            true,
            &ctx,
            Box::new(move |res| tx.send(res.map(|_| ())).unwrap()),
        );
        std::thread::sleep(Duration::from_millis(80));
        drop(g);
        let res = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(matches!(res, Err(InvokeError::DeadlineExceeded)), "{res:?}");
        assert_eq!(sched.stats().shed, 1);
    }

    #[test]
    fn guard_is_send_across_threads() {
        let sched = Arc::new(Scheduler::default());
        let g = sched.acquire_exclusive(&oid("a"), &[]);
        // Move the guard to another thread and drop it there; a blocked
        // waiter must then be granted.
        let sched2 = Arc::clone(&sched);
        let t = std::thread::spawn(move || {
            let _g2 = sched2.acquire_exclusive(&oid("a"), &[]);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!t.is_finished());
        std::thread::spawn(move || drop(g)).join().unwrap();
        t.join().unwrap();
    }

    #[test]
    fn fifo_writer_not_starved_by_readers() {
        let sched = Arc::new(Scheduler::default());
        let id = oid("a");
        let r1 = sched.acquire_shared(&id, &[]);
        // Writer queues behind the reader...
        let sched2 = Arc::clone(&sched);
        let id2 = id.clone();
        let w = std::thread::spawn(move || {
            let _g = sched2.acquire_exclusive(&id2, &[]);
        });
        std::thread::sleep(Duration::from_millis(20));
        // ...so a late reader queues behind the writer (no barging).
        let sched3 = Arc::clone(&sched);
        let id3 = id.clone();
        let r2 = std::thread::spawn(move || {
            let _g = sched3.acquire_shared(&id3, &[]);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!w.is_finished(), "writer waits for reader");
        assert!(!r2.is_finished(), "late reader must not barge past the queued writer");
        drop(r1);
        w.join().unwrap();
        r2.join().unwrap();
    }
}
