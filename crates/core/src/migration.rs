//! Microshard migration: exporting, importing and moving whole objects.
//!
//! §4.2: "objects are microshards. Because their content is self-contained,
//! they can be migrated by themselves without causing disruption to
//! computation involving other objects." An export takes the object's
//! exclusive lock (so no mutating invocation is in flight), snapshots its
//! whole key prefix, and the import applies it as one atomic batch.

use serde::{Deserialize, Serialize};

use lambda_kv::WriteBatch;

use crate::engine::Engine;
use crate::error::{InvokeError, Result};
use crate::keys;
use crate::object::ObjectId;

/// A self-contained copy of one object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectSnapshot {
    /// The object id.
    pub id: ObjectId,
    /// `(key suffix, value)` pairs relative to the object prefix.
    pub entries: Vec<(Vec<u8>, Vec<u8>)>,
}

impl ObjectSnapshot {
    /// Total payload bytes (for transfer-cost accounting).
    pub fn payload_bytes(&self) -> usize {
        self.entries.iter().map(|(k, v)| k.len() + v.len()).sum()
    }
}

impl Engine {
    /// Export `id` as a consistent snapshot. Taken under the object's
    /// exclusive lock, so it reflects a committed prefix of invocations.
    ///
    /// # Errors
    /// [`InvokeError::UnknownObject`] when absent; storage failures.
    pub fn export_object(&self, id: &ObjectId) -> Result<ObjectSnapshot> {
        let _guard = self.scheduler().acquire_exclusive(id, &[]);
        if !self.object_exists(id) {
            return Err(InvokeError::UnknownObject(id.to_string()));
        }
        let prefix = keys::object_prefix(id);
        let mut entries = Vec::new();
        for (key, value) in self.db().scan_prefix(&prefix) {
            let (owner, suffix) = keys::split_key(&key)
                .ok_or_else(|| InvokeError::Storage("malformed object key".into()))?;
            debug_assert_eq!(&owner, id);
            entries.push((suffix, value));
        }
        Ok(ObjectSnapshot { id: id.clone(), entries })
    }

    /// Import a snapshot, atomically materializing the object here.
    ///
    /// # Errors
    /// [`InvokeError::AlreadyExists`] when an object with this id already
    /// lives here; storage failures.
    pub fn import_object(&self, snapshot: &ObjectSnapshot) -> Result<()> {
        let _guard = self.scheduler().acquire_exclusive(&snapshot.id, &[]);
        if self.object_exists(&snapshot.id) {
            return Err(InvokeError::AlreadyExists(snapshot.id.to_string()));
        }
        let mut batch = WriteBatch::new();
        for (suffix, value) in &snapshot.entries {
            batch.put(keys::join_key(&snapshot.id, suffix), value.clone());
        }
        self.db().write(batch)?;
        // Any cached results for a previous tenant of this id are invalid.
        self.cache().invalidate_object(&snapshot.id);
        self.forget_dedup_window(&snapshot.id);
        Ok(())
    }

    /// Export `id` and, while still holding its exclusive lock, hand the
    /// snapshot to `f`. State transfer uses this to enqueue the snapshot
    /// onto a sync stream *before* any later commit to the same object can
    /// run — so per-object snapshot/forward order in the stream matches
    /// commit order.
    ///
    /// # Errors
    /// Same as [`export_object`](Engine::export_object).
    pub fn export_object_with<T>(
        &self,
        id: &ObjectId,
        f: impl FnOnce(&ObjectSnapshot) -> T,
    ) -> Result<T> {
        let _guard = self.scheduler().acquire_exclusive(id, &[]);
        if !self.object_exists(id) {
            return Err(InvokeError::UnknownObject(id.to_string()));
        }
        let prefix = keys::object_prefix(id);
        let mut entries = Vec::new();
        for (key, value) in self.db().scan_prefix(&prefix) {
            let (owner, suffix) = keys::split_key(&key)
                .ok_or_else(|| InvokeError::Storage("malformed object key".into()))?;
            debug_assert_eq!(&owner, id);
            entries.push((suffix, value));
        }
        Ok(f(&ObjectSnapshot { id: id.clone(), entries }))
    }

    /// Import a snapshot, replacing any existing copy of the object in one
    /// atomic batch. The receiving half of shard state transfer, where a
    /// stale local copy (crash-restart rejoin) must be superseded rather
    /// than refused.
    ///
    /// # Errors
    /// Storage failures.
    pub fn install_object_replacing(&self, snapshot: &ObjectSnapshot) -> Result<()> {
        let _guard = self.scheduler().acquire_exclusive(&snapshot.id, &[]);
        let prefix = keys::object_prefix(&snapshot.id);
        let mut batch = WriteBatch::new();
        for (key, _) in self.db().scan_prefix(&prefix) {
            batch.delete(key);
        }
        for (suffix, value) in &snapshot.entries {
            batch.put(keys::join_key(&snapshot.id, suffix), value.clone());
        }
        self.db().write(batch)?;
        self.cache().invalidate_object(&snapshot.id);
        self.forget_dedup_window(&snapshot.id);
        Ok(())
    }

    /// Delete every local key of `id` without exporting it. Used when a
    /// syncing backup wipes stale shard residue before state transfer.
    ///
    /// # Errors
    /// Storage failures. Deleting an absent object is a no-op.
    pub fn purge_object(&self, id: &ObjectId) -> Result<()> {
        let _guard = self.scheduler().acquire_exclusive(id, &[]);
        let prefix = keys::object_prefix(id);
        let mut batch = WriteBatch::new();
        for (key, _) in self.db().scan_prefix(&prefix) {
            batch.delete(key);
        }
        self.db().write(batch)?;
        self.cache().invalidate_object(id);
        self.forget_dedup_window(id);
        Ok(())
    }

    /// Export + delete: the source half of a migration. The snapshot is
    /// taken and the object removed under one exclusive lock acquisition,
    /// so no invocation can slip in between (the migration cut-over).
    ///
    /// # Errors
    /// Same as [`export_object`](Engine::export_object).
    pub fn evict_object(&self, id: &ObjectId) -> Result<ObjectSnapshot> {
        let _guard = self.scheduler().acquire_exclusive(id, &[]);
        if !self.object_exists(id) {
            return Err(InvokeError::UnknownObject(id.to_string()));
        }
        let prefix = keys::object_prefix(id);
        let mut entries = Vec::new();
        let mut batch = WriteBatch::new();
        for (key, value) in self.db().scan_prefix(&prefix) {
            let (_, suffix) = keys::split_key(&key)
                .ok_or_else(|| InvokeError::Storage("malformed object key".into()))?;
            entries.push((suffix, value));
            batch.delete(key);
        }
        self.db().write(batch)?;
        self.cache().invalidate_object(id);
        Ok(ObjectSnapshot { id: id.clone(), entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::object::{FieldDef, FieldKind, ObjectType, TypeRegistry};
    use lambda_kv::{Db, Options};
    use lambda_vm::{assemble, VmValue};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn new_engine() -> (Engine, std::path::PathBuf) {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("lambda-migrate-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = Db::open(&dir, Options::small_for_tests()).unwrap();
        let types = Arc::new(TypeRegistry::new());
        let module = assemble(
            r#"
            fn add_post(1) {
                push.s "timeline"
                load 0
                host.push
                ret
            }
            fn read(1) ro det {
                push.s "timeline"
                load 0
                push.i 1
                host.scan
                ret
            }
            "#,
        )
        .unwrap();
        types.register(
            ObjectType::from_module(
                "User",
                vec![FieldDef { name: "timeline".into(), kind: FieldKind::Collection }],
                module,
            )
            .unwrap(),
        );
        (Engine::new(db, types, EngineConfig::default()), dir)
    }

    fn oid(s: &str) -> ObjectId {
        ObjectId::from(s)
    }

    #[test]
    fn export_import_round_trip_between_engines() {
        let (src, d1) = new_engine();
        let (dst, d2) = new_engine();
        let id = oid("user/alice");
        src.create_object("User", &id, &[]).unwrap();
        for i in 0..10 {
            src.invoke(&id, "add_post", vec![VmValue::str(format!("post-{i}"))]).unwrap();
        }
        let snapshot = src.export_object(&id).unwrap();
        assert!(snapshot.payload_bytes() > 0);
        dst.import_object(&snapshot).unwrap();
        // Full behaviour carried over: newest-first scan works on dst.
        let v = dst.invoke(&id, "read", vec![VmValue::Int(10)]).unwrap();
        match v {
            VmValue::List(items) => {
                assert_eq!(items.len(), 10);
                assert_eq!(items[0], VmValue::str("post-9"));
            }
            other => panic!("expected list, got {other}"),
        }
        // Version metadata preserved.
        assert_eq!(dst.object_version(&id), src.object_version(&id));
        std::fs::remove_dir_all(d1).ok();
        std::fs::remove_dir_all(d2).ok();
    }

    #[test]
    fn export_missing_object_fails() {
        let (engine, dir) = new_engine();
        assert!(matches!(engine.export_object(&oid("ghost")), Err(InvokeError::UnknownObject(_))));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn import_refuses_to_overwrite() {
        let (engine, dir) = new_engine();
        let id = oid("user/a");
        engine.create_object("User", &id, &[]).unwrap();
        let snap = engine.export_object(&id).unwrap();
        assert!(matches!(engine.import_object(&snap), Err(InvokeError::AlreadyExists(_))));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn install_replacing_supersedes_stale_copy() {
        let (src, d1) = new_engine();
        let (dst, d2) = new_engine();
        let id = oid("user/a");
        // A stale copy on dst (as after a crash-restart rejoin)...
        dst.create_object("User", &id, &[]).unwrap();
        dst.invoke(&id, "add_post", vec![VmValue::str("stale")]).unwrap();
        // ...must be replaced wholesale by the fresh snapshot.
        src.create_object("User", &id, &[]).unwrap();
        src.invoke(&id, "add_post", vec![VmValue::str("fresh")]).unwrap();
        let snap = src.export_object(&id).unwrap();
        dst.install_object_replacing(&snap).unwrap();
        let v = dst.invoke(&id, "read", vec![VmValue::Int(10)]).unwrap();
        match v {
            VmValue::List(items) => assert_eq!(items, vec![VmValue::str("fresh")]),
            other => panic!("expected list, got {other}"),
        }
        assert_eq!(dst.object_version(&id), src.object_version(&id));
        std::fs::remove_dir_all(d1).ok();
        std::fs::remove_dir_all(d2).ok();
    }

    #[test]
    fn export_with_runs_under_the_lock_and_purge_clears() {
        let (engine, dir) = new_engine();
        let id = oid("user/a");
        engine.create_object("User", &id, &[]).unwrap();
        engine.invoke(&id, "add_post", vec![VmValue::str("p")]).unwrap();
        let n = engine.export_object_with(&id, |snap| snap.entries.len()).unwrap();
        assert!(n >= 3);
        engine.purge_object(&id).unwrap();
        assert!(!engine.object_exists(&id));
        // Purging an absent object is a no-op, not an error.
        engine.purge_object(&id).unwrap();
        assert!(matches!(
            engine.export_object_with(&id, |_| ()),
            Err(InvokeError::UnknownObject(_))
        ));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn evict_removes_source_copy() {
        let (engine, dir) = new_engine();
        let id = oid("user/a");
        engine.create_object("User", &id, &[]).unwrap();
        engine.invoke(&id, "add_post", vec![VmValue::str("p")]).unwrap();
        let snap = engine.evict_object(&id).unwrap();
        assert!(!engine.object_exists(&id));
        assert!(snap.entries.len() >= 3, "meta + entry + counter + version");
        // Can re-import (a migration "bounce").
        engine.import_object(&snap).unwrap();
        assert!(engine.object_exists(&id));
        std::fs::remove_dir_all(dir).ok();
    }
}
