//! Object identifiers, field schemas and object types.
//!
//! §3 of the paper: "object types hold a set of functions... \[and\] a set of
//! fields, which are either a single opaque piece of data or \[a\] collection
//! of data entries indexed by a key. Objects can then be instantiated from
//! these types."

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use lambda_vm::{validate_module, Module, NativeRegistry, ValidateError};

/// Identifies an object. Arbitrary bytes; application-meaningful ids like
/// `user/alice` are encouraged because microshard pins use them directly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub Vec<u8>);

impl ObjectId {
    /// Construct from anything byte-like.
    pub fn new(id: impl Into<Vec<u8>>) -> ObjectId {
        ObjectId(id.into())
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", String::from_utf8_lossy(&self.0))
    }
}

impl From<&str> for ObjectId {
    fn from(s: &str) -> Self {
        ObjectId(s.as_bytes().to_vec())
    }
}

impl From<Vec<u8>> for ObjectId {
    fn from(v: Vec<u8>) -> Self {
        ObjectId(v)
    }
}

/// Kinds of fields an object type declares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldKind {
    /// One opaque value.
    Scalar,
    /// An append-ordered collection of entries.
    Collection,
}

/// A declared field.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldDef {
    /// Field name (used as part of the key layout).
    pub name: String,
    /// Scalar or collection.
    pub kind: FieldKind,
}

/// Where a method's code lives.
#[derive(Clone)]
pub enum MethodSet {
    /// Untrusted bytecode executed by the metered VM (the paper's primary
    /// path — WebAssembly in the original).
    Bytecode(Arc<Module>),
    /// Trusted native Rust (the paper's "containers/VMs on the same node"
    /// alternative, §4.2).
    Native(Arc<NativeRegistry>),
}

impl fmt::Debug for MethodSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MethodSet::Bytecode(m) => {
                write!(f, "Bytecode({} functions)", m.functions.len())
            }
            MethodSet::Native(r) => write!(f, "Native({} methods)", r.len()),
        }
    }
}

/// Metadata about one method, uniform across bytecode and native.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MethodMeta {
    /// May not mutate; can run on backups and concurrently.
    pub read_only: bool,
    /// Result depends only on object state + args; cacheable.
    pub deterministic: bool,
    /// Externally callable.
    pub public: bool,
}

/// A deployable object type: schema + methods.
#[derive(Debug, Clone)]
pub struct ObjectType {
    /// Type name, unique within a deployment.
    pub name: String,
    /// Declared fields.
    pub fields: Vec<FieldDef>,
    /// The method implementations.
    pub methods: MethodSet,
}

impl ObjectType {
    /// Create a bytecode-backed type, validating the module.
    ///
    /// # Errors
    /// Propagates [`ValidateError`] from module validation.
    pub fn from_module(
        name: impl Into<String>,
        fields: Vec<FieldDef>,
        module: Module,
    ) -> std::result::Result<ObjectType, ValidateError> {
        validate_module(&module)?;
        Ok(ObjectType { name: name.into(), fields, methods: MethodSet::Bytecode(Arc::new(module)) })
    }

    /// Create a native-backed type.
    pub fn from_native(
        name: impl Into<String>,
        fields: Vec<FieldDef>,
        registry: NativeRegistry,
    ) -> ObjectType {
        ObjectType { name: name.into(), fields, methods: MethodSet::Native(Arc::new(registry)) }
    }

    /// Look up a field definition.
    pub fn field(&self, name: &str) -> Option<&FieldDef> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Metadata for `method`, if it exists.
    pub fn method_meta(&self, method: &str) -> Option<MethodMeta> {
        match &self.methods {
            MethodSet::Bytecode(module) => module.function(method).map(|(_, f)| MethodMeta {
                read_only: f.read_only,
                deterministic: f.deterministic,
                public: f.public,
            }),
            MethodSet::Native(reg) => reg.method(method).map(|m| MethodMeta {
                read_only: m.read_only,
                deterministic: m.deterministic,
                public: m.public,
            }),
        }
    }

    /// Names of all methods.
    pub fn method_names(&self) -> Vec<String> {
        match &self.methods {
            MethodSet::Bytecode(module) => {
                module.functions.iter().map(|f| f.name.clone()).collect()
            }
            MethodSet::Native(reg) => reg.method_names().into_iter().map(str::to_string).collect(),
        }
    }
}

/// A registry of deployed object types.
#[derive(Debug, Default)]
pub struct TypeRegistry {
    types: parking_lot::RwLock<BTreeMap<String, Arc<ObjectType>>>,
}

impl TypeRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        TypeRegistry::default()
    }

    /// Deploy (or replace) a type.
    pub fn register(&self, ty: ObjectType) {
        self.types.write().insert(ty.name.clone(), Arc::new(ty));
    }

    /// Look up a type.
    pub fn get(&self, name: &str) -> Option<Arc<ObjectType>> {
        self.types.read().get(name).cloned()
    }

    /// Names of all deployed types.
    pub fn type_names(&self) -> Vec<String> {
        self.types.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_vm::assemble;

    fn user_fields() -> Vec<FieldDef> {
        vec![
            FieldDef { name: "name".into(), kind: FieldKind::Scalar },
            FieldDef { name: "timeline".into(), kind: FieldKind::Collection },
        ]
    }

    #[test]
    fn object_id_display_and_conversions() {
        let id = ObjectId::from("user/alice");
        assert_eq!(id.to_string(), "user/alice");
        assert_eq!(id.as_bytes(), b"user/alice");
        assert_eq!(ObjectId::new(b"x".to_vec()), ObjectId(b"x".to_vec()));
    }

    #[test]
    fn from_module_validates() {
        let module =
            assemble("fn get_name(0) ro det {\n push.s \"name\"\n host.get\n ret\n}").unwrap();
        let ty = ObjectType::from_module("User", user_fields(), module).unwrap();
        let meta = ty.method_meta("get_name").unwrap();
        assert!(meta.read_only && meta.deterministic && meta.public);
        assert!(ty.method_meta("missing").is_none());
        assert_eq!(ty.method_names(), vec!["get_name".to_string()]);
    }

    #[test]
    fn from_module_rejects_invalid() {
        // Hand-built module bypassing the assembler's validation.
        let mut module = Module::default();
        module.functions.push(lambda_vm::FunctionDef {
            name: "bad".into(),
            arity: 0,
            locals: 0,
            read_only: false,
            deterministic: false,
            public: true,
            code: vec![lambda_vm::Instr::Pop],
        });
        assert!(ObjectType::from_module("Broken", vec![], module).is_err());
    }

    #[test]
    fn native_type_metadata() {
        let mut reg = NativeRegistry::new();
        reg.register("touch", false, false, true, |_| Ok(lambda_vm::VmValue::Unit));
        reg.register("peek", true, true, false, |_| Ok(lambda_vm::VmValue::Unit));
        let ty = ObjectType::from_native("Thing", vec![], reg);
        assert_eq!(
            ty.method_meta("peek"),
            Some(MethodMeta { read_only: true, deterministic: true, public: false })
        );
        assert_eq!(ty.method_names(), vec!["peek".to_string(), "touch".to_string()]);
    }

    #[test]
    fn field_lookup() {
        let module = assemble("fn f(0) {\n unit\n ret\n}").unwrap();
        let ty = ObjectType::from_module("User", user_fields(), module).unwrap();
        assert_eq!(ty.field("timeline").unwrap().kind, FieldKind::Collection);
        assert_eq!(ty.field("name").unwrap().kind, FieldKind::Scalar);
        assert!(ty.field("nope").is_none());
    }

    #[test]
    fn registry_round_trip() {
        let reg = TypeRegistry::new();
        assert!(reg.get("User").is_none());
        let module = assemble("fn f(0) {\n unit\n ret\n}").unwrap();
        reg.register(ObjectType::from_module("User", vec![], module).unwrap());
        assert!(reg.get("User").is_some());
        assert_eq!(reg.type_names(), vec!["User".to_string()]);
    }
}
