//! Error type for the LambdaObjects layer.

use std::fmt;

use lambda_vm::{HostError, VmError};

/// Convenience alias.
pub type Result<T> = std::result::Result<T, InvokeError>;

/// Failures of object creation, invocation or migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvokeError {
    /// No object with this id exists on this node.
    UnknownObject(String),
    /// The referenced object type has not been registered.
    UnknownType(String),
    /// The object's type has no such method.
    UnknownMethod(String),
    /// The method exists but is not externally callable.
    NotPublic(String),
    /// An object with this id already exists.
    AlreadyExists(String),
    /// The function aborted voluntarily; no writes were applied.
    Aborted(String),
    /// The sandboxed execution failed (trap, fuel, memory, type error).
    Vm(String),
    /// The storage engine failed.
    Storage(String),
    /// A nested cross-object invocation failed.
    Nested(String),
    /// The nested-invocation depth limit was exceeded.
    DepthExceeded,
    /// This node is not responsible for the object (routing layer).
    WrongNode(String),
    /// The invocation's deadline budget ran out before it could execute;
    /// the work was shed without running the method body.
    DeadlineExceeded,
    /// The object's shard has lost every replica; until an operator (or a
    /// restarted former member) revives it, no node can serve the object.
    ShardUnavailable(String),
    /// Admission control refused the request because the node's run queue
    /// was over depth. Retryable: unlike [`DeadlineExceeded`]
    /// (`InvokeError::DeadlineExceeded`), the deadline budget has *not*
    /// burned — the node shed early precisely so the client can back off
    /// and try again (or try elsewhere) within the same budget.
    Overloaded(String),
    /// A follower (or deposed primary) refused a read because its read
    /// lease is missing, expired, or bound to a stale epoch. Retryable:
    /// the data is fine — the client should refresh placement and route
    /// the read to the shard primary.
    LeaseExpired(String),
    /// The object is in the handoff phase of a live migration: the source
    /// shard fences mutations while the destination takes ownership.
    /// Retryable without burning backoff budget — the client should
    /// refresh placement and follow the object to its new shard (or back
    /// to the source, if the migration aborted).
    ObjectMoved(String),
}

impl fmt::Display for InvokeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvokeError::UnknownObject(id) => write!(f, "unknown object {id:?}"),
            InvokeError::UnknownType(t) => write!(f, "unknown object type {t:?}"),
            InvokeError::UnknownMethod(m) => write!(f, "unknown method {m:?}"),
            InvokeError::NotPublic(m) => write!(f, "method {m:?} is not public"),
            InvokeError::AlreadyExists(id) => write!(f, "object {id:?} already exists"),
            InvokeError::Aborted(msg) => write!(f, "invocation aborted: {msg}"),
            InvokeError::Vm(msg) => write!(f, "execution failed: {msg}"),
            InvokeError::Storage(msg) => write!(f, "storage failure: {msg}"),
            InvokeError::Nested(msg) => write!(f, "nested invocation failed: {msg}"),
            InvokeError::DepthExceeded => write!(f, "invocation depth limit exceeded"),
            InvokeError::WrongNode(msg) => write!(f, "wrong node for object: {msg}"),
            InvokeError::DeadlineExceeded => write!(f, "invocation deadline exceeded"),
            InvokeError::ShardUnavailable(msg) => write!(f, "shard unavailable: {msg}"),
            InvokeError::Overloaded(msg) => write!(f, "node overloaded: {msg}"),
            InvokeError::LeaseExpired(msg) => write!(f, "read lease expired: {msg}"),
            InvokeError::ObjectMoved(msg) => write!(f, "object moved: {msg}"),
        }
    }
}

impl std::error::Error for InvokeError {}

impl From<lambda_kv::KvError> for InvokeError {
    fn from(e: lambda_kv::KvError) -> Self {
        InvokeError::Storage(e.to_string())
    }
}

impl From<VmError> for InvokeError {
    fn from(e: VmError) -> Self {
        match e {
            VmError::Host(HostError::Aborted(msg)) => InvokeError::Aborted(msg),
            VmError::Host(HostError::InvokeFailed(msg)) => InvokeError::Nested(msg),
            other => InvokeError::Vm(other.to_string()),
        }
    }
}

impl From<HostError> for InvokeError {
    fn from(e: HostError) -> Self {
        match e {
            HostError::Aborted(msg) => InvokeError::Aborted(msg),
            HostError::InvokeFailed(msg) => InvokeError::Nested(msg),
            other => InvokeError::Vm(other.to_string()),
        }
    }
}

/// Encode an [`InvokeError`] as a stable string for RPC transport; the
/// inverse of [`decode_error`].
pub fn encode_error(e: &InvokeError) -> String {
    match e {
        InvokeError::UnknownObject(s) => format!("unknown_object\x1f{s}"),
        InvokeError::UnknownType(s) => format!("unknown_type\x1f{s}"),
        InvokeError::UnknownMethod(s) => format!("unknown_method\x1f{s}"),
        InvokeError::NotPublic(s) => format!("not_public\x1f{s}"),
        InvokeError::AlreadyExists(s) => format!("already_exists\x1f{s}"),
        InvokeError::Aborted(s) => format!("aborted\x1f{s}"),
        InvokeError::Vm(s) => format!("vm\x1f{s}"),
        InvokeError::Storage(s) => format!("storage\x1f{s}"),
        InvokeError::Nested(s) => format!("nested\x1f{s}"),
        InvokeError::DepthExceeded => "depth_exceeded\x1f".to_string(),
        InvokeError::WrongNode(s) => format!("wrong_node\x1f{s}"),
        InvokeError::DeadlineExceeded => "deadline_exceeded\x1f".to_string(),
        InvokeError::ShardUnavailable(s) => format!("shard_unavailable\x1f{s}"),
        InvokeError::Overloaded(s) => format!("overloaded\x1f{s}"),
        InvokeError::LeaseExpired(s) => format!("lease_expired\x1f{s}"),
        InvokeError::ObjectMoved(s) => format!("object_moved\x1f{s}"),
    }
}

/// Map a commit-hook failure string back to a typed error: a hook that
/// needs a specific variant to reach the client (the migration handoff
/// fence's `ObjectMoved`) embeds one via [`encode_error`]; plain fence
/// strings stay [`InvokeError::Storage`].
pub fn decode_hook_error(msg: String) -> InvokeError {
    if msg.contains('\x1f') {
        decode_error(&msg)
    } else {
        InvokeError::Storage(msg)
    }
}

/// Decode an error produced by [`encode_error`]; unknown inputs map to
/// [`InvokeError::Nested`].
pub fn decode_error(s: &str) -> InvokeError {
    let (tag, rest) = s.split_once('\x1f').unwrap_or(("", s));
    let rest = rest.to_string();
    match tag {
        "unknown_object" => InvokeError::UnknownObject(rest),
        "unknown_type" => InvokeError::UnknownType(rest),
        "unknown_method" => InvokeError::UnknownMethod(rest),
        "not_public" => InvokeError::NotPublic(rest),
        "already_exists" => InvokeError::AlreadyExists(rest),
        "aborted" => InvokeError::Aborted(rest),
        "vm" => InvokeError::Vm(rest),
        "storage" => InvokeError::Storage(rest),
        "nested" => InvokeError::Nested(rest),
        "depth_exceeded" => InvokeError::DepthExceeded,
        "wrong_node" => InvokeError::WrongNode(rest),
        "deadline_exceeded" => InvokeError::DeadlineExceeded,
        "shard_unavailable" => InvokeError::ShardUnavailable(rest),
        "overloaded" => InvokeError::Overloaded(rest),
        "lease_expired" => InvokeError::LeaseExpired(rest),
        "object_moved" => InvokeError::ObjectMoved(rest),
        _ => InvokeError::Nested(s.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errors = vec![
            InvokeError::UnknownObject("o".into()),
            InvokeError::UnknownType("t".into()),
            InvokeError::UnknownMethod("m".into()),
            InvokeError::NotPublic("m".into()),
            InvokeError::AlreadyExists("o".into()),
            InvokeError::Aborted("reason".into()),
            InvokeError::Vm("trap".into()),
            InvokeError::Storage("disk".into()),
            InvokeError::Nested("remote".into()),
            InvokeError::DepthExceeded,
            InvokeError::WrongNode("moved".into()),
            InvokeError::DeadlineExceeded,
            InvokeError::ShardUnavailable("shard 3 lost".into()),
            InvokeError::Overloaded("run queue full".into()),
            InvokeError::LeaseExpired("epoch 4 lease lapsed".into()),
            InvokeError::ObjectMoved("handoff to shard 2".into()),
        ];
        for e in &errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let errors = vec![
            InvokeError::UnknownObject("o/1".into()),
            InvokeError::UnknownType("User".into()),
            InvokeError::UnknownMethod("post".into()),
            InvokeError::NotPublic("internal".into()),
            InvokeError::AlreadyExists("o/1".into()),
            InvokeError::Aborted("broke".into()),
            InvokeError::Vm("fuel exhausted".into()),
            InvokeError::Storage("io".into()),
            InvokeError::Nested("timeout".into()),
            InvokeError::DepthExceeded,
            InvokeError::WrongNode("shard 3".into()),
            InvokeError::DeadlineExceeded,
            InvokeError::ShardUnavailable("no replicas".into()),
            InvokeError::Overloaded("depth 128".into()),
            InvokeError::LeaseExpired("no lease for shard 2".into()),
            InvokeError::ObjectMoved("handoff to shard 2".into()),
        ];
        for e in errors {
            assert_eq!(decode_error(&encode_error(&e)), e, "{e}");
        }
    }

    #[test]
    fn vm_abort_maps_to_aborted() {
        let e: InvokeError = VmError::Host(HostError::Aborted("why".into())).into();
        assert_eq!(e, InvokeError::Aborted("why".into()));
        let e: InvokeError = VmError::FuelExhausted.into();
        assert!(matches!(e, InvokeError::Vm(_)));
    }

    #[test]
    fn unknown_decode_falls_back() {
        assert!(matches!(decode_error("garbage"), InvokeError::Nested(_)));
    }
}
