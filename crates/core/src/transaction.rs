//! Multi-invocation transactions — the paper's future-work extension.
//!
//! §3.1: "We envision that future versions of the LambdaObjects model will
//! support serializable transactions spanning multiple function calls...
//! Conveniently, embedding execution into the database itself allows using
//! proven transaction processing protocols from existing database
//! management systems." This module does exactly that: a transaction is a
//! sequence of method calls over a set of objects, executed with
//! **strict two-phase locking** (all object locks acquired up front in a
//! global order — deadlock-free), one shared write buffer (each call sees
//! the previous calls' uncommitted writes), and a single atomic commit.
//!
//! Scope: the transaction's objects must live on the same node (LambdaStore
//! restricts transactions to objects co-located at one primary; cross-shard
//! transactions would need two-phase commit on top, which the paper leaves
//! open as well).

use lambda_vm::{Host, HostError, VmValue};

use crate::buffer::WriteBuffer;
use crate::engine::Engine;
use crate::error::{InvokeError, Result};
use crate::keys;
use crate::object::{MethodSet, ObjectId};

/// One call inside a transaction.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TxCall {
    /// Target object.
    pub object: ObjectId,
    /// Method name (must be public; transactions are a client API).
    pub method: String,
    /// Arguments.
    pub args: Vec<VmValue>,
}

impl TxCall {
    /// Convenience constructor.
    pub fn new(object: impl Into<ObjectId>, method: impl Into<String>, args: Vec<VmValue>) -> Self {
        TxCall { object: object.into(), method: method.into(), args }
    }
}

/// The [`Host`] for one call within a transaction: reads and writes go
/// through the transaction-wide buffer, so later calls observe earlier
/// calls' effects; nothing reaches storage until the single commit.
struct TxHost<'a> {
    db: &'a lambda_kv::Db,
    snapshot_seq: u64,
    object: ObjectId,
    buffer: &'a mut WriteBuffer,
    read_only: bool,
    logs: Vec<String>,
}

impl TxHost<'_> {
    fn read_key(&mut self, full_key: &[u8]) -> std::result::Result<Option<Vec<u8>>, HostError> {
        if let Some(buffered) = self.buffer.get(full_key) {
            return Ok(buffered);
        }
        self.db.get_at(full_key, self.snapshot_seq).map_err(|e| HostError::Storage(e.to_string()))
    }

    fn ensure_writable(&self) -> std::result::Result<(), HostError> {
        if self.read_only {
            Err(HostError::ReadOnlyViolation)
        } else {
            Ok(())
        }
    }
}

impl Host for TxHost<'_> {
    fn get(&mut self, key: &[u8]) -> std::result::Result<Option<Vec<u8>>, HostError> {
        let full = keys::field_key(&self.object, key);
        self.read_key(&full)
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> std::result::Result<(), HostError> {
        self.ensure_writable()?;
        self.buffer.put(keys::field_key(&self.object, key), value.to_vec());
        Ok(())
    }

    fn delete(&mut self, key: &[u8]) -> std::result::Result<(), HostError> {
        self.ensure_writable()?;
        self.buffer.delete(keys::field_key(&self.object, key));
        Ok(())
    }

    fn push(&mut self, field: &[u8], value: &[u8]) -> std::result::Result<(), HostError> {
        self.ensure_writable()?;
        let ckey = keys::counter_key(&self.object, field);
        let len = keys::decode_counter(self.read_key(&ckey)?.as_deref());
        self.buffer.put(keys::entry_key(&self.object, field, len), value.to_vec());
        self.buffer.put(ckey, keys::encode_counter(len + 1));
        Ok(())
    }

    fn scan(
        &mut self,
        field: &[u8],
        limit: usize,
        newest_first: bool,
    ) -> std::result::Result<Vec<Vec<u8>>, HostError> {
        let ckey = keys::counter_key(&self.object, field);
        let len = keys::decode_counter(self.read_key(&ckey)?.as_deref());
        let take = (limit as u64).min(len);
        let mut out = Vec::with_capacity(take as usize);
        let indices: Vec<u64> =
            if newest_first { ((len - take)..len).rev().collect() } else { (0..take).collect() };
        for i in indices {
            if let Some(v) = self.read_key(&keys::entry_key(&self.object, field, i))? {
                out.push(v);
            }
        }
        Ok(out)
    }

    fn count(&mut self, field: &[u8]) -> std::result::Result<u64, HostError> {
        let ckey = keys::counter_key(&self.object, field);
        Ok(keys::decode_counter(self.read_key(&ckey)?.as_deref()))
    }

    fn invoke(
        &mut self,
        _object: &[u8],
        _method: &str,
        _args: Vec<VmValue>,
    ) -> std::result::Result<VmValue, HostError> {
        // Within a transaction every call is already in the atomic scope;
        // dynamic nested invocation would escape the declared lock set.
        Err(HostError::InvokeFailed(
            "nested invocations are not allowed inside a transaction; \
             list the call in the transaction instead"
                .into(),
        ))
    }

    fn self_id(&self) -> Vec<u8> {
        self.object.0.clone()
    }

    fn now_millis(&mut self) -> i64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as i64)
            .unwrap_or(0)
    }

    fn log(&mut self, msg: &str) {
        self.logs.push(msg.to_string());
    }
}

impl Engine {
    /// Execute `calls` as one serializable transaction: either every call
    /// commits (atomically, as one batch) or none do.
    ///
    /// Locking: the distinct objects are locked exclusively in sorted
    /// order before any call runs and released after commit/abort —
    /// strict 2PL with a global lock order, so transactions never
    /// deadlock against each other.
    ///
    /// # Errors
    /// The first failing call aborts the whole transaction
    /// ([`InvokeError::Aborted`] for voluntary aborts, [`InvokeError::Vm`]
    /// for traps, ...); every object must exist and every method must be
    /// public. Nested `host.invoke` inside a transaction fails the call.
    pub fn invoke_transaction(&self, calls: &[TxCall]) -> Result<Vec<VmValue>> {
        if calls.is_empty() {
            return Ok(Vec::new());
        }
        // Resolve types first (also validates object existence).
        let mut resolved = Vec::with_capacity(calls.len());
        for call in calls {
            let ty = self.object_type_of(&call.object)?;
            let meta = ty
                .method_meta(&call.method)
                .ok_or_else(|| InvokeError::UnknownMethod(call.method.clone()))?;
            if !meta.public {
                return Err(InvokeError::NotPublic(call.method.clone()));
            }
            resolved.push((ty, meta));
        }

        // Lock every distinct object in global (sorted) order.
        let mut objects: Vec<ObjectId> = calls.iter().map(|c| c.object.clone()).collect();
        objects.sort();
        objects.dedup();
        let _guards: Vec<_> =
            objects.iter().map(|o| self.scheduler().acquire_exclusive(o, &[])).collect();

        // One snapshot + one buffer for the whole transaction.
        let snapshot_seq = self.db().last_sequence();
        let mut buffer = WriteBuffer::new(false);
        let mut results = Vec::with_capacity(calls.len());
        for (call, (ty, meta)) in calls.iter().zip(&resolved) {
            let mut host = TxHost {
                db: self.db(),
                snapshot_seq,
                object: call.object.clone(),
                buffer: &mut buffer,
                read_only: meta.read_only,
                logs: Vec::new(),
            };
            let outcome = match &ty.methods {
                MethodSet::Bytecode(module) => self
                    .interpreter_ref()
                    .execute(module, &call.method, call.args.clone(), &mut host)
                    .map_err(InvokeError::from),
                MethodSet::Native(reg) => reg
                    .invoke(&call.method, call.args.clone(), &mut host)
                    .map_err(InvokeError::from),
            };
            match outcome {
                Ok(v) => results.push(v),
                Err(e) => {
                    buffer.discard();
                    return Err(e); // guards drop → locks release
                }
            }
        }

        // Single atomic commit covering every touched object.
        if !buffer.is_clean() {
            let written = buffer.written_keys();
            let mut batch = buffer.take_batch();
            for object in &objects {
                let touched =
                    written.iter().any(|k| keys::split_key(k).is_some_and(|(o, _)| &o == object));
                if touched {
                    let vkey = keys::version_key(object);
                    let version = self.object_version(object) + 1;
                    batch.put(vkey, version.to_le_bytes().to_vec());
                }
            }
            self.commit_transaction_batch(&objects, batch, &written)?;
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::object::{FieldDef, FieldKind, ObjectType, TypeRegistry};
    use lambda_kv::{Db, Options};
    use lambda_vm::assemble;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn new_engine() -> (Arc<Engine>, std::path::PathBuf) {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("lambda-tx-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = Db::open(&dir, Options::small_for_tests()).unwrap();
        let types = Arc::new(TypeRegistry::new());
        let module = assemble(
            r#"
            fn add(1) locals=2 {
                push.s "balance"
                host.get
                btoi
                load 0
                add
                store 1
                push.s "balance"
                load 1
                itob
                host.put
                pop
                load 1
                ret
            }
            fn sub_checked(1) locals=2 {
                push.s "balance"
                host.get
                btoi
                store 1
                load 1
                load 0
                lt
                jz ok
                push.s "insufficient"
                host.abort
            ok:
                push.s "balance"
                load 1
                load 0
                sub
                itob
                host.put
                pop
                unit
                ret
            }
            fn balance(0) ro det {
                push.s "balance"
                host.get
                btoi
                ret
            }
            fn sneaky_invoke(1) {
                load 0
                push.s "balance"
                unit
                host.invoke
                ret
            }
            "#,
        )
        .unwrap();
        types.register(
            ObjectType::from_module(
                "Account",
                vec![FieldDef { name: "balance".into(), kind: FieldKind::Scalar }],
                module,
            )
            .unwrap(),
        );
        (Arc::new(Engine::new(db, types, EngineConfig::default())), dir)
    }

    fn oid(s: &str) -> ObjectId {
        ObjectId::from(s)
    }

    #[test]
    fn transaction_commits_across_objects_atomically() {
        let (engine, dir) = new_engine();
        engine.create_object("Account", &oid("a"), &[]).unwrap();
        engine.create_object("Account", &oid("b"), &[]).unwrap();
        engine.invoke(&oid("a"), "add", vec![VmValue::Int(100)]).unwrap();

        let results = engine
            .invoke_transaction(&[
                TxCall::new(oid("a"), "sub_checked", vec![VmValue::Int(30)]),
                TxCall::new(oid("b"), "add", vec![VmValue::Int(30)]),
            ])
            .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(engine.invoke(&oid("a"), "balance", vec![]).unwrap(), VmValue::Int(70));
        assert_eq!(engine.invoke(&oid("b"), "balance", vec![]).unwrap(), VmValue::Int(30));
        // Both objects' versions bumped exactly once for the transaction.
        assert_eq!(engine.object_version(&oid("b")), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn failing_call_aborts_everything() {
        let (engine, dir) = new_engine();
        engine.create_object("Account", &oid("a"), &[]).unwrap();
        engine.create_object("Account", &oid("b"), &[]).unwrap();
        engine.invoke(&oid("a"), "add", vec![VmValue::Int(10)]).unwrap();

        // Second call overdraws: the first call's write must roll back too.
        let err = engine
            .invoke_transaction(&[
                TxCall::new(oid("b"), "add", vec![VmValue::Int(500)]),
                TxCall::new(oid("a"), "sub_checked", vec![VmValue::Int(999)]),
            ])
            .unwrap_err();
        assert!(matches!(err, InvokeError::Aborted(_)), "{err}");
        assert_eq!(engine.invoke(&oid("a"), "balance", vec![]).unwrap(), VmValue::Int(10));
        assert_eq!(engine.invoke(&oid("b"), "balance", vec![]).unwrap(), VmValue::Int(0));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn later_calls_see_earlier_uncommitted_writes() {
        let (engine, dir) = new_engine();
        engine.create_object("Account", &oid("a"), &[]).unwrap();
        let results = engine
            .invoke_transaction(&[
                TxCall::new(oid("a"), "add", vec![VmValue::Int(5)]),
                TxCall::new(oid("a"), "add", vec![VmValue::Int(7)]),
                TxCall::new(oid("a"), "balance", vec![]),
            ])
            .unwrap();
        assert_eq!(results[2], VmValue::Int(12), "read-your-writes inside the tx");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn nested_invoke_is_rejected_inside_transactions() {
        let (engine, dir) = new_engine();
        engine.create_object("Account", &oid("a"), &[]).unwrap();
        engine.create_object("Account", &oid("b"), &[]).unwrap();
        let err = engine
            .invoke_transaction(&[TxCall::new(oid("a"), "sneaky_invoke", vec![VmValue::str("b")])])
            .unwrap_err();
        assert!(matches!(err, InvokeError::Nested(_)), "{err}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn unknown_object_or_method_fails_before_any_execution() {
        let (engine, dir) = new_engine();
        engine.create_object("Account", &oid("a"), &[]).unwrap();
        assert!(matches!(
            engine.invoke_transaction(&[
                TxCall::new(oid("a"), "add", vec![VmValue::Int(1)]),
                TxCall::new(oid("ghost"), "add", vec![VmValue::Int(1)]),
            ]),
            Err(InvokeError::UnknownObject(_))
        ));
        // The first call must not have executed.
        assert_eq!(engine.invoke(&oid("a"), "balance", vec![]).unwrap(), VmValue::Int(0));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn concurrent_transfers_conserve_money_without_deadlock() {
        let (engine, dir) = new_engine();
        const N: usize = 6;
        for i in 0..N {
            let id = oid(&format!("acct{i}"));
            engine.create_object("Account", &id, &[]).unwrap();
            engine.invoke(&id, "add", vec![VmValue::Int(100)]).unwrap();
        }
        // Transfers in both directions between the same pairs — the
        // classic deadlock shape, prevented by sorted lock acquisition.
        std::thread::scope(|scope| {
            for t in 0..N {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    for k in 0..20 {
                        let from = oid(&format!("acct{t}"));
                        let to = oid(&format!("acct{}", (t + 1 + k % (N - 1)) % N));
                        let _ = engine.invoke_transaction(&[
                            TxCall::new(from, "sub_checked", vec![VmValue::Int(3)]),
                            TxCall::new(to, "add", vec![VmValue::Int(3)]),
                        ]);
                    }
                });
            }
        });
        let total: i64 = (0..N)
            .map(|i| {
                engine
                    .invoke(&oid(&format!("acct{i}")), "balance", vec![])
                    .unwrap()
                    .as_int()
                    .unwrap()
            })
            .sum();
        assert_eq!(total, (N as i64) * 100, "serializable transfers conserve money");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn empty_transaction_is_a_noop() {
        let (engine, dir) = new_engine();
        assert_eq!(engine.invoke_transaction(&[]).unwrap(), Vec::<VmValue>::new());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn read_only_calls_in_transaction_cannot_write() {
        let (engine, dir) = new_engine();
        engine.create_object("Account", &oid("a"), &[]).unwrap();
        // balance is ro: executing it inside a tx is fine and writes nothing.
        let results =
            engine.invoke_transaction(&[TxCall::new(oid("a"), "balance", vec![])]).unwrap();
        assert_eq!(results[0], VmValue::Int(0));
        assert_eq!(engine.object_version(&oid("a")), 0, "no version bump for pure reads");
        std::fs::remove_dir_all(dir).ok();
    }
}
