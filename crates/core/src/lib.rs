//! # lambda-objects
//!
//! The LambdaObjects data and execution model — the primary contribution of
//! *LambdaObjects: Re-Aggregating Storage and Execution for Cloud
//! Computing* (HotStorage '22).
//!
//! Data is encapsulated into **objects**, instantiated from **object
//! types** that declare fields (scalars or collections) and methods
//! (sandboxed bytecode or trusted native code). Methods execute *at the
//! data* through an [`Engine`] embedded in the storage node, which
//! provides:
//!
//! * **Invocation linearizability** (§3.1): each invocation runs against a
//!   snapshot plus a private [write buffer](buffer::WriteBuffer); its write
//!   set commits as one atomic batch; a per-object
//!   [scheduler](scheduler::Scheduler) never runs two mutating invocations
//!   of one object concurrently; once an invocation returns, every later
//!   invocation observes its effects.
//! * **Nested cross-object calls** (§3.1): invoking another object commits
//!   the caller's writes first — the caller's pre- and post-call parts are
//!   two separate invocations.
//! * **Consistent result caching** (§4.2.2): deterministic read-only
//!   methods record `(output, args hash, read set)`; entries are
//!   invalidated eagerly on overlapping commits and re-validated lazily by
//!   value hash.
//! * **Microshards** (§4.2): every object owns a dedicated key prefix and
//!   can be [exported / imported / evicted](migration) wholesale without
//!   touching other objects.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use lambda_kv::{Db, Options};
//! use lambda_objects::{Engine, EngineConfig, FieldDef, FieldKind, ObjectId, ObjectType, TypeRegistry};
//! use lambda_vm::{assemble, VmValue};
//! use std::sync::Arc;
//!
//! let dir = std::env::temp_dir().join(format!("lambda-objects-doc-{}", std::process::id()));
//! # std::fs::remove_dir_all(&dir).ok();
//! let db = Db::open(&dir, Options::default())?;
//! let types = Arc::new(TypeRegistry::new());
//! types.register(ObjectType::from_module(
//!     "Greeter",
//!     vec![FieldDef { name: "name".into(), kind: FieldKind::Scalar }],
//!     assemble(
//!         r#"
//!         fn greet(0) ro det {
//!             push.s "hello "
//!             push.s "name"
//!             host.get
//!             concat
//!             ret
//!         }
//!         "#,
//!     )?,
//! )?);
//! let engine = Engine::new(db, types, EngineConfig::default());
//! let id = ObjectId::from("greeter/1");
//! engine.create_object("Greeter", &id, &[("name", b"world")])?;
//! assert_eq!(engine.invoke(&id, "greet", vec![])?, VmValue::str("hello world"));
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

pub mod buffer;
pub mod cache;
pub mod engine;
pub mod error;
pub mod host;
pub mod keys;
pub mod migration;
pub mod object;
pub mod scheduler;
pub mod transaction;

pub use buffer::{value_hash, WriteBuffer};
pub use cache::{args_hash, CacheStats, ConsistentCache};
pub use engine::{
    CommitCallback, CommitHook, Engine, EngineConfig, EngineStats, InvokeCompletion, InvokeRouter,
    ReadSet, TrackedCompletion, WriteSetOps, DEDUP_WINDOW,
};
pub use error::{decode_error, encode_error, InvokeError, Result};
pub use host::{NestedInvoker, ObjectHost};
pub use migration::ObjectSnapshot;
pub use object::{FieldDef, FieldKind, MethodMeta, MethodSet, ObjectId, ObjectType, TypeRegistry};
pub use scheduler::{GrantCallback, ObjectGuard, Scheduler, SchedulerMode, SchedulerStats};
pub use transaction::TxCall;

// Telemetry substrate re-exports: the context and registry types are part
// of the engine's public API surface (invoke_ctx, with_registry).
pub use lambda_telemetry::{
    Counter, Gauge, InvocationContext, Origin, Registry, SpanRecord, Stage,
};
