//! The consistent result cache for deterministic read-only methods.
//!
//! §4.2.2: "storage nodes merely record the output of a function, a hash of
//! its input, and its read set in the form \[of\] keys and value hashes.
//! Nodes then only re-execute such functions if the input or reads have
//! changed." Because the cache lives inside the storage node, it always has
//! access to the newest committed state, which is what makes it
//! *consistent* — the disaggregated baseline cannot have this property.
//!
//! Two invalidation mechanisms cooperate:
//! * **eager**: commits report their written keys; entries whose read set
//!   contains such a key are dropped immediately;
//! * **lazy**: on a hit, the entry's read set is re-validated against
//!   current value hashes (defense in depth — e.g. after a migration
//!   import that bypassed the commit path).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use lambda_vm::VmValue;

use crate::buffer::value_hash;
use crate::object::ObjectId;

/// Cache lookup/maintenance statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Valid hits served.
    pub hits: u64,
    /// Misses (absent entries).
    pub misses: u64,
    /// Entries dropped by eager invalidation.
    pub invalidations: u64,
    /// Hits rejected by lazy validation.
    pub stale_hits: u64,
    /// Entries evicted by capacity.
    pub evictions: u64,
}

/// A recorded read set: each key the cached execution read, paired with
/// the hash of the value it observed.
pub type ReadSet = Vec<(Vec<u8>, u64)>;

/// Key of a cache entry: object, method, and a hash of the arguments.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct EntryKey {
    object: ObjectId,
    method: String,
    args_hash: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    result: VmValue,
    read_set: ReadSet,
    /// Insertion stamp matching this entry's ticket in the eviction queue.
    /// A replace keeps the stamp (and the FIFO position); an entry that was
    /// invalidated and later re-inserted gets a fresh stamp, so the old
    /// queue ticket no longer matches and cannot evict the live entry.
    seq: u64,
}

/// Hash the argument list of an invocation.
pub fn args_hash(args: &[VmValue]) -> u64 {
    let mut bytes = Vec::new();
    for a in args {
        bytes.extend_from_slice(&a.encode());
    }
    value_hash(Some(&bytes))
}

#[derive(Default)]
struct CacheInner {
    entries: HashMap<EntryKey, Entry>,
    /// Reverse index: storage key → cache entries reading it.
    by_key: HashMap<Vec<u8>, HashSet<EntryKey>>,
    /// FIFO order for capacity eviction; tickets are `(key, seq)` and only
    /// count while the stamp still matches the live entry.
    order: VecDeque<(EntryKey, u64)>,
    next_seq: u64,
}

/// The consistent function-result cache of one storage node.
pub struct ConsistentCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    stale_hits: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for ConsistentCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConsistentCache")
            .field("len", &self.inner.lock().entries.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl ConsistentCache {
    /// A cache bounded to `capacity` entries. Capacity 0 is a fully
    /// disabled cache: lookups miss for free, inserts are dropped, and no
    /// statistics accumulate.
    pub fn new(capacity: usize) -> ConsistentCache {
        ConsistentCache {
            inner: Mutex::new(CacheInner::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            stale_hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up a cached result.
    ///
    /// Entries are trusted as-is: every commit path (invocation commits,
    /// replication applies, migrations, deletions) eagerly invalidates
    /// overlapping entries, so a resident entry is valid by construction —
    /// this is what makes a hit O(1) instead of re-reading the read set.
    /// [`lookup_validated`](Self::lookup_validated) re-checks the read set
    /// anyway, for callers that bypass the commit paths.
    pub fn lookup(&self, object: &ObjectId, method: &str, args: &[VmValue]) -> Option<VmValue> {
        self.lookup_with_read_set(object, method, args).map(|(v, _)| v)
    }

    /// Like [`lookup`](Self::lookup), but also returns the entry's recorded
    /// read set — the server uses this to hand read sets to client-edge
    /// caches without re-executing the method.
    pub fn lookup_with_read_set(
        &self,
        object: &ObjectId,
        method: &str,
        args: &[VmValue],
    ) -> Option<(VmValue, ReadSet)> {
        if self.capacity == 0 {
            return None;
        }
        let key = EntryKey {
            object: object.clone(),
            method: method.to_string(),
            args_hash: args_hash(args),
        };
        let entry = {
            let inner = self.inner.lock();
            inner.entries.get(&key).cloned()
        };
        match entry {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((entry.result, entry.read_set))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Like [`lookup`](Self::lookup), but re-validates the entry's read set
    /// with `current_hash` (a callback returning the hash of the *current*
    /// committed value of a key). Defence in depth for embedders whose
    /// write paths do not invalidate eagerly.
    pub fn lookup_validated(
        &self,
        object: &ObjectId,
        method: &str,
        args: &[VmValue],
        mut current_hash: impl FnMut(&[u8]) -> u64,
    ) -> Option<VmValue> {
        if self.capacity == 0 {
            return None;
        }
        let key = EntryKey {
            object: object.clone(),
            method: method.to_string(),
            args_hash: args_hash(args),
        };
        let entry = {
            let inner = self.inner.lock();
            inner.entries.get(&key).cloned()
        };
        let Some(entry) = entry else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        for (k, recorded) in &entry.read_set {
            if current_hash(k) != *recorded {
                self.stale_hits.fetch_add(1, Ordering::Relaxed);
                self.remove(&key);
                return None;
            }
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(entry.result)
    }

    /// Record a result with its read set.
    pub fn insert(
        &self,
        object: &ObjectId,
        method: &str,
        args: &[VmValue],
        result: VmValue,
        read_set: ReadSet,
    ) {
        if self.capacity == 0 {
            return;
        }
        let key = EntryKey {
            object: object.clone(),
            method: method.to_string(),
            args_hash: args_hash(args),
        };
        let mut inner = self.inner.lock();
        // Drain queue tickets whose entries were invalidated (or replaced
        // under a newer stamp) out-of-band; they are not live and must not
        // linger (unbounded growth) nor count toward anything.
        while inner
            .order
            .front()
            .is_some_and(|(k, s)| inner.entries.get(k).map(|e| e.seq) != Some(*s))
        {
            inner.order.pop_front();
        }
        // A replace: detach the old version's read set from the reverse
        // index first, so a key only the old version read no longer
        // invalidates the new entry.
        let replacing = inner.entries.remove(&key);
        if let Some(old) = &replacing {
            for (k, _) in &old.read_set {
                if let Some(set) = inner.by_key.get_mut(k) {
                    set.remove(&key);
                    if set.is_empty() {
                        inner.by_key.remove(k);
                    }
                }
            }
        }
        // Capacity eviction (FIFO) — only when the insert actually grows
        // the map; replacing in place never needs a victim. Tickets with a
        // mismatched stamp are stale duplicates (their entry was
        // invalidated and re-inserted since) and are skipped, not counted:
        // honoring them would evict the *live* re-inserted entry early.
        if replacing.is_none() {
            while inner.entries.len() >= self.capacity {
                let Some((victim, stamp)) = inner.order.pop_front() else {
                    break;
                };
                if inner.entries.get(&victim).is_some_and(|e| e.seq == stamp) {
                    if let Some(old) = inner.entries.remove(&victim) {
                        for (k, _) in &old.read_set {
                            if let Some(set) = inner.by_key.get_mut(k) {
                                set.remove(&victim);
                                if set.is_empty() {
                                    inner.by_key.remove(k);
                                }
                            }
                        }
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        for (k, _) in &read_set {
            inner.by_key.entry(k.clone()).or_default().insert(key.clone());
        }
        // A replace keeps the old stamp and queue position; a fresh insert
        // takes a new stamp and joins the queue tail.
        let seq = match &replacing {
            Some(old) => old.seq,
            None => {
                inner.next_seq += 1;
                inner.next_seq
            }
        };
        inner.entries.insert(key.clone(), Entry { result, read_set, seq });
        if replacing.is_none() {
            inner.order.push_back((key, seq));
        }
    }

    /// Eagerly invalidate every entry whose read set touches any of
    /// `written_keys` (called on each commit).
    pub fn invalidate_keys<'a>(&self, written_keys: impl IntoIterator<Item = &'a [u8]>) {
        let mut inner = self.inner.lock();
        let mut victims: HashSet<EntryKey> = HashSet::new();
        for k in written_keys {
            if let Some(set) = inner.by_key.remove(k) {
                victims.extend(set);
            }
        }
        for victim in victims {
            if let Some(old) = inner.entries.remove(&victim) {
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                for (k, _) in &old.read_set {
                    if let Some(set) = inner.by_key.get_mut(k) {
                        set.remove(&victim);
                        if set.is_empty() {
                            inner.by_key.remove(k);
                        }
                    }
                }
            }
        }
    }

    /// Drop every entry of `object` (migration/deletion).
    pub fn invalidate_object(&self, object: &ObjectId) {
        let mut inner = self.inner.lock();
        let victims: Vec<EntryKey> =
            inner.entries.keys().filter(|k| &k.object == object).cloned().collect();
        for victim in victims {
            if let Some(old) = inner.entries.remove(&victim) {
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                for (k, _) in &old.read_set {
                    if let Some(set) = inner.by_key.get_mut(k) {
                        set.remove(&victim);
                        if set.is_empty() {
                            inner.by_key.remove(k);
                        }
                    }
                }
            }
        }
    }

    fn remove(&self, key: &EntryKey) {
        let mut inner = self.inner.lock();
        if let Some(old) = inner.entries.remove(key) {
            for (k, _) in &old.read_set {
                if let Some(set) = inner.by_key.get_mut(k) {
                    set.remove(key);
                    if set.is_empty() {
                        inner.by_key.remove(k);
                    }
                }
            }
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Length of the FIFO eviction queue, including any stale keys not yet
    /// drained (test visibility only).
    #[cfg(test)]
    fn order_len(&self) -> usize {
        self.inner.lock().order.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            stale_hits: self.stale_hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid() -> ObjectId {
        ObjectId::from("user/1")
    }

    fn read_set(pairs: &[(&[u8], Option<&[u8]>)]) -> ReadSet {
        pairs.iter().map(|(k, v)| (k.to_vec(), value_hash(*v))).collect()
    }

    #[test]
    fn hit_after_insert() {
        let cache = ConsistentCache::new(16);
        let rs = read_set(&[(b"k1", Some(b"v1"))]);
        cache.insert(&oid(), "get", &[], VmValue::Int(7), rs);
        let hit = cache.lookup_validated(&oid(), "get", &[], |_| value_hash(Some(b"v1")));
        assert_eq!(hit, Some(VmValue::Int(7)));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn miss_on_absent_or_different_args() {
        let cache = ConsistentCache::new(16);
        cache.insert(&oid(), "get", &[VmValue::Int(1)], VmValue::Unit, vec![]);
        assert!(cache.lookup(&oid(), "get", &[VmValue::Int(2)]).is_none());
        assert!(cache.lookup(&oid(), "other", &[VmValue::Int(1)]).is_none());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn lazy_validation_rejects_changed_reads() {
        let cache = ConsistentCache::new(16);
        let rs = read_set(&[(b"k1", Some(b"old"))]);
        cache.insert(&oid(), "get", &[], VmValue::Int(1), rs);
        // Value changed underneath.
        let hit = cache.lookup_validated(&oid(), "get", &[], |_| value_hash(Some(b"new")));
        assert_eq!(hit, None);
        assert_eq!(cache.stats().stale_hits, 1);
        assert!(cache.is_empty(), "stale entry dropped");
    }

    #[test]
    fn eager_invalidation_on_written_key() {
        let cache = ConsistentCache::new(16);
        cache.insert(&oid(), "a", &[], VmValue::Int(1), read_set(&[(b"k1", None)]));
        cache.insert(&oid(), "b", &[], VmValue::Int(2), read_set(&[(b"k2", None)]));
        cache.invalidate_keys([&b"k1"[..]]);
        assert!(cache.lookup(&oid(), "a", &[]).is_none());
        assert_eq!(
            cache.lookup(&oid(), "b", &[]),
            Some(VmValue::Int(2)),
            "unrelated entry survives"
        );
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn invalidate_object_drops_all_its_entries() {
        let cache = ConsistentCache::new(16);
        let other = ObjectId::from("user/2");
        cache.insert(&oid(), "a", &[], VmValue::Int(1), vec![]);
        cache.insert(&oid(), "b", &[], VmValue::Int(2), vec![]);
        cache.insert(&other, "a", &[], VmValue::Int(3), vec![]);
        cache.invalidate_object(&oid());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(&other, "a", &[]), Some(VmValue::Int(3)));
    }

    #[test]
    fn capacity_eviction_fifo() {
        let cache = ConsistentCache::new(2);
        cache.insert(&oid(), "m1", &[], VmValue::Int(1), vec![]);
        cache.insert(&oid(), "m2", &[], VmValue::Int(2), vec![]);
        cache.insert(&oid(), "m3", &[], VmValue::Int(3), vec![]);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&oid(), "m1", &[]).is_none(), "oldest evicted");
        assert!(cache.lookup(&oid(), "m3", &[]).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn replace_detaches_the_old_read_set() {
        let cache = ConsistentCache::new(16);
        cache.insert(&oid(), "get", &[], VmValue::Int(1), read_set(&[(b"k_old", None)]));
        // Re-execution of the same method now reads a different key.
        cache.insert(&oid(), "get", &[], VmValue::Int(2), read_set(&[(b"k_new", None)]));
        // A write to the key only the *old* version read must not drop the
        // new entry (the stale reverse-index link used to leak here).
        cache.invalidate_keys([&b"k_old"[..]]);
        assert_eq!(cache.lookup(&oid(), "get", &[]), Some(VmValue::Int(2)));
        assert_eq!(cache.stats().invalidations, 0);
        // The new read set is indexed: writing k_new drops the entry.
        cache.invalidate_keys([&b"k_new"[..]]);
        assert!(cache.lookup(&oid(), "get", &[]).is_none());
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn replace_at_capacity_does_not_evict() {
        let cache = ConsistentCache::new(2);
        cache.insert(&oid(), "m1", &[], VmValue::Int(1), vec![]);
        cache.insert(&oid(), "m2", &[], VmValue::Int(2), vec![]);
        // Replacing m2 does not grow the map, so m1 must survive.
        cache.insert(&oid(), "m2", &[], VmValue::Int(22), vec![]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(&oid(), "m1", &[]), Some(VmValue::Int(1)));
        assert_eq!(cache.lookup(&oid(), "m2", &[]), Some(VmValue::Int(22)));
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn invalidated_entries_do_not_linger_in_the_eviction_queue() {
        let cache = ConsistentCache::new(16);
        for m in ["a", "b", "c"] {
            cache.insert(&oid(), m, &[], VmValue::Int(1), read_set(&[(b"k", None)]));
        }
        cache.invalidate_keys([&b"k"[..]]);
        assert!(cache.is_empty());
        // The next insert drains the stale queue front instead of letting
        // it grow without bound across invalidation churn.
        cache.insert(&oid(), "d", &[], VmValue::Int(2), vec![]);
        assert_eq!(cache.order_len(), 1);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn args_hash_is_order_sensitive() {
        let a = [VmValue::Int(1), VmValue::Int(2)];
        let b = [VmValue::Int(2), VmValue::Int(1)];
        assert_ne!(args_hash(&a), args_hash(&b));
        assert_eq!(args_hash(&a), args_hash(&a.clone()));
    }

    #[test]
    fn capacity_zero_is_a_disabled_cache() {
        let cache = ConsistentCache::new(0);
        cache.insert(&oid(), "get", &[], VmValue::Int(1), read_set(&[(b"k", None)]));
        assert!(cache.lookup(&oid(), "get", &[]).is_none());
        assert!(cache.lookup_validated(&oid(), "get", &[], |_| 0).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.order_len(), 0, "no insert bookkeeping when disabled");
        cache.invalidate_keys([&b"k"[..]]);
        cache.invalidate_object(&oid());
        assert_eq!(cache.stats(), CacheStats::default(), "stats stay zero when disabled");
    }

    #[test]
    fn reinserted_entry_is_not_evicted_by_its_stale_queue_ticket() {
        let cache = ConsistentCache::new(2);
        cache.insert(&oid(), "a", &[], VmValue::Int(1), read_set(&[(b"k", None)]));
        cache.insert(&oid(), "b", &[], VmValue::Int(2), vec![]);
        // Invalidate "a", then re-insert it: the queue now holds a stale
        // ticket for "a" in front of the live one.
        cache.invalidate_keys([&b"k"[..]]);
        cache.insert(&oid(), "a", &[], VmValue::Int(11), vec![]);
        // Filling the cache must evict the true FIFO victim ("b"), not
        // honor the stale front ticket and evict the re-inserted "a".
        cache.insert(&oid(), "c", &[], VmValue::Int(3), vec![]);
        assert_eq!(cache.lookup(&oid(), "a", &[]), Some(VmValue::Int(11)), "live entry survives");
        assert!(cache.lookup(&oid(), "b", &[]).is_none(), "true oldest evicted");
        assert_eq!(cache.lookup(&oid(), "c", &[]), Some(VmValue::Int(3)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn lookup_with_read_set_returns_the_recorded_reads() {
        let cache = ConsistentCache::new(4);
        let rs = read_set(&[(b"k1", Some(b"v1"))]);
        cache.insert(&oid(), "get", &[], VmValue::Int(9), rs.clone());
        let (v, got) = cache.lookup_with_read_set(&oid(), "get", &[]).unwrap();
        assert_eq!(v, VmValue::Int(9));
        assert_eq!(got, rs);
    }

    #[test]
    fn empty_read_set_entries_never_go_stale() {
        let cache = ConsistentCache::new(4);
        cache.insert(&oid(), "constant", &[], VmValue::Int(42), vec![]);
        for _ in 0..3 {
            assert_eq!(cache.lookup(&oid(), "constant", &[]), Some(VmValue::Int(42)));
        }
    }
}
