//! Key layout: how objects map onto the flat key-value store.
//!
//! Every object owns a dedicated key prefix, which is what makes objects
//! **microshards** (§4.2): the prefix range is self-contained, so an object
//! can be exported, migrated and deleted without touching any other
//! object's data.
//!
//! ```text
//! o <id-len:u16-be> <id> m            → object meta (type name)
//! o <id-len:u16-be> <id> v            → commit version (u64 LE)
//! o <id-len:u16-be> <id> d <inv:u64-be> → dedup record (version ‖ result)
//! o <id-len:u16-be> <id> f <field>    → scalar field value
//! o <id-len:u16-be> <id> n <field>    → collection length (u64 LE)
//! o <id-len:u16-be> <id> c <field> \0 <index:u64-be> → collection entry
//! ```
//!
//! The id is length-prefixed (not delimited) so ids may contain any byte
//! and no object's prefix can be a prefix of another object's.

use crate::object::ObjectId;

/// Key-space tag for object data.
const TAG: u8 = b'o';

fn object_prefix_into(id: &ObjectId, out: &mut Vec<u8>) {
    out.push(TAG);
    let len = id.0.len();
    assert!(len <= u16::MAX as usize, "object id too long");
    out.extend_from_slice(&(len as u16).to_be_bytes());
    out.extend_from_slice(&id.0);
}

/// The prefix owning every key of `id`.
pub fn object_prefix(id: &ObjectId) -> Vec<u8> {
    let mut out = Vec::with_capacity(id.0.len() + 3);
    object_prefix_into(id, &mut out);
    out
}

/// Meta key: stores the object's type name.
pub fn meta_key(id: &ObjectId) -> Vec<u8> {
    let mut out = object_prefix(id);
    out.push(b'm');
    out
}

/// Version key: bumped on every committed mutating invocation.
pub fn version_key(id: &ObjectId) -> Vec<u8> {
    let mut out = object_prefix(id);
    out.push(b'v');
    out
}

/// Dedup record key for one remembered invocation id. Living inside the
/// object's prefix means the record rides the same write batch, the same
/// replication stream and the same migration snapshot as the data it
/// protects — failover to a backup preserves exactly-once for free.
pub fn dedup_key(id: &ObjectId, invocation_id: u64) -> Vec<u8> {
    let mut out = object_prefix(id);
    out.push(b'd');
    out.extend_from_slice(&invocation_id.to_be_bytes());
    out
}

/// The prefix under which all of `id`'s dedup records live.
pub fn dedup_prefix(id: &ObjectId) -> Vec<u8> {
    let mut out = object_prefix(id);
    out.push(b'd');
    out
}

/// Scalar field key.
pub fn field_key(id: &ObjectId, field: &[u8]) -> Vec<u8> {
    let mut out = object_prefix(id);
    out.push(b'f');
    out.extend_from_slice(field);
    out
}

/// Collection length counter key.
pub fn counter_key(id: &ObjectId, field: &[u8]) -> Vec<u8> {
    let mut out = object_prefix(id);
    out.push(b'n');
    out.extend_from_slice(field);
    out
}

/// Collection entry key for `index`.
pub fn entry_key(id: &ObjectId, field: &[u8], index: u64) -> Vec<u8> {
    let mut out = object_prefix(id);
    out.push(b'c');
    out.extend_from_slice(field);
    out.push(0);
    out.extend_from_slice(&index.to_be_bytes());
    out
}

/// Split a full key back into `(object id, suffix)`; `None` for keys
/// outside the object keyspace. Used by migration import/export.
pub fn split_key(key: &[u8]) -> Option<(ObjectId, Vec<u8>)> {
    if key.first() != Some(&TAG) || key.len() < 3 {
        return None;
    }
    let len = u16::from_be_bytes([key[1], key[2]]) as usize;
    let id_end = 3 + len;
    if key.len() < id_end {
        return None;
    }
    Some((ObjectId(key[3..id_end].to_vec()), key[id_end..].to_vec()))
}

/// Rebuild a full key from an object id and a suffix produced by
/// [`split_key`].
pub fn join_key(id: &ObjectId, suffix: &[u8]) -> Vec<u8> {
    let mut out = object_prefix(id);
    out.extend_from_slice(suffix);
    out
}

/// Encode a collection counter value.
pub fn encode_counter(v: u64) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

/// Decode a collection counter value (0 when absent/malformed).
pub fn decode_counter(v: Option<&[u8]>) -> u64 {
    v.and_then(|b| b.try_into().ok()).map(u64::from_le_bytes).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> ObjectId {
        ObjectId::from(s)
    }

    #[test]
    fn prefixes_are_disjoint_for_prefix_ids() {
        // "user/1" vs "user/10": with naive separators these collide.
        let p1 = object_prefix(&id("user/1"));
        let p2 = object_prefix(&id("user/10"));
        assert!(!p2.starts_with(&p1), "length prefix must prevent nesting");
    }

    #[test]
    fn all_keys_share_the_object_prefix() {
        let oid = id("user/alice");
        let prefix = object_prefix(&oid);
        for key in [
            meta_key(&oid),
            version_key(&oid),
            field_key(&oid, b"name"),
            counter_key(&oid, b"timeline"),
            entry_key(&oid, b"timeline", 7),
            dedup_key(&oid, 42),
        ] {
            assert!(key.starts_with(&prefix));
        }
    }

    #[test]
    fn dedup_keys_sort_by_invocation_id_under_their_prefix() {
        let oid = id("u");
        let prefix = dedup_prefix(&oid);
        let k1 = dedup_key(&oid, 1);
        let k2 = dedup_key(&oid, 2);
        let k300 = dedup_key(&oid, 300);
        assert!(k1.starts_with(&prefix) && k300.starts_with(&prefix));
        assert!(k1 < k2 && k2 < k300, "big-endian id keeps numeric order");
        // Dedup records never collide with fields or collections.
        assert_ne!(dedup_key(&oid, 0x66_00_00_00_00_00_00_00), field_key(&oid, b"x"));
    }

    #[test]
    fn split_join_round_trip() {
        let oid = id("user/bob");
        for key in [meta_key(&oid), field_key(&oid, b"name"), entry_key(&oid, b"tl", 123)] {
            let (got_id, suffix) = split_key(&key).unwrap();
            assert_eq!(got_id, oid);
            assert_eq!(join_key(&got_id, &suffix), key);
        }
    }

    #[test]
    fn split_rejects_foreign_keys() {
        assert!(split_key(b"x-something").is_none());
        assert!(split_key(b"o").is_none());
        // Truncated id.
        let mut k = object_prefix(&id("abcdef"));
        k.truncate(5);
        assert!(split_key(&k).is_none());
    }

    #[test]
    fn entry_keys_sort_by_index() {
        let oid = id("u");
        let k1 = entry_key(&oid, b"tl", 1);
        let k2 = entry_key(&oid, b"tl", 2);
        let k10 = entry_key(&oid, b"tl", 10);
        assert!(k1 < k2);
        assert!(k2 < k10, "big-endian index keeps numeric order");
    }

    #[test]
    fn field_namespaces_do_not_collide() {
        let oid = id("u");
        // A scalar field named "x" vs a collection named "x".
        assert_ne!(field_key(&oid, b"x"), counter_key(&oid, b"x"));
        assert_ne!(field_key(&oid, b"x"), entry_key(&oid, b"x", 0));
    }

    #[test]
    fn counter_codec() {
        assert_eq!(decode_counter(Some(&encode_counter(42))), 42);
        assert_eq!(decode_counter(None), 0);
        assert_eq!(decode_counter(Some(b"bad")), 0);
    }

    #[test]
    fn binary_ids_are_safe() {
        let oid = ObjectId::new(vec![0x00, 0xff, b'o', 0x00]);
        let key = field_key(&oid, b"f");
        let (got, _) = split_key(&key).unwrap();
        assert_eq!(got, oid);
    }
}
