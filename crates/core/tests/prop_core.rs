//! Property-based tests of the LambdaObjects core: key-layout bijectivity,
//! write-buffer semantics against a model, and cache consistency under
//! random interleavings of reads and invalidating writes.

use std::collections::BTreeMap;

use proptest::prelude::*;

use lambda_objects::{keys, value_hash, ConsistentCache, ObjectId, WriteBuffer};
use lambda_vm::VmValue;

fn object_id_strategy() -> impl Strategy<Value = ObjectId> {
    proptest::collection::vec(any::<u8>(), 0..40).prop_map(ObjectId::new)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn key_layout_is_bijective(
        id in object_id_strategy(),
        field in proptest::collection::vec(any::<u8>(), 0..24),
        index in any::<u64>(),
    ) {
        for key in [
            keys::meta_key(&id),
            keys::version_key(&id),
            keys::field_key(&id, &field),
            keys::counter_key(&id, &field),
            keys::entry_key(&id, &field, index),
        ] {
            let (got, suffix) = keys::split_key(&key).expect("own keys split");
            prop_assert_eq!(&got, &id);
            prop_assert_eq!(keys::join_key(&got, &suffix), key);
        }
    }

    #[test]
    fn distinct_objects_have_disjoint_prefixes(
        a in object_id_strategy(),
        b in object_id_strategy(),
    ) {
        prop_assume!(a != b);
        let pa = keys::object_prefix(&a);
        let pb = keys::object_prefix(&b);
        prop_assert!(!pa.starts_with(&pb) && !pb.starts_with(&pa),
            "prefixes must never nest");
    }

    #[test]
    fn write_buffer_matches_model(
        ops in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..8),
             proptest::option::of(proptest::collection::vec(any::<u8>(), 0..16))),
            0..40
        ),
    ) {
        let mut buffer = WriteBuffer::new(false);
        let mut model: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for (key, value) in &ops {
            match value {
                Some(v) => {
                    buffer.put(key.clone(), v.clone());
                    model.insert(key.clone(), Some(v.clone()));
                }
                None => {
                    buffer.delete(key.clone());
                    model.insert(key.clone(), None);
                }
            }
        }
        // Buffered view matches the model.
        for (key, expected) in &model {
            prop_assert_eq!(buffer.get(key), Some(expected.clone()));
        }
        // The committed batch has exactly one op per distinct key.
        let batch = buffer.take_batch();
        prop_assert_eq!(batch.len(), model.len());
        prop_assert!(buffer.is_clean());
    }

    #[test]
    fn value_hash_collision_resistant_on_structure(
        a in proptest::collection::vec(any::<u8>(), 0..32),
        b in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        if a != b {
            // FNV is not cryptographic, but must separate simple cases —
            // most importantly presence/absence and prefix extensions.
            prop_assert_ne!(value_hash(Some(&a)), value_hash(None));
        } else {
            prop_assert_eq!(value_hash(Some(&a)), value_hash(Some(&b)));
        }
    }

    #[test]
    fn cache_never_serves_stale_after_invalidation(
        // Sequence of (key index written, new value) interleaved with reads.
        writes in proptest::collection::vec((0usize..4, any::<u64>()), 1..20),
    ) {
        let cache = ConsistentCache::new(64);
        let object = ObjectId::from("obj/prop");
        // World state: 4 storage keys.
        let mut world = [0u64; 4];
        let keyname = |i: usize| format!("k{i}").into_bytes();

        // Seed: cache one entry per key, recording its read set.
        for (i, w) in world.iter().enumerate() {
            let read_set = vec![(keyname(i), value_hash(Some(&w.to_le_bytes())))];
            cache.insert(&object, "m", &[VmValue::Int(i as i64)], VmValue::Int(*w as i64), read_set);
        }

        for (idx, new_value) in writes {
            // A commit to key idx: world changes, cache is eagerly invalidated.
            world[idx] = new_value;
            cache.invalidate_keys([keyname(idx).as_slice()]);

            // Every subsequent lookup must reflect the *current* world:
            // either a miss, or a value equal to the world's.
            for i in 0..4 {
                let current = world;
                let hit = cache.lookup_validated(&object, "m", &[VmValue::Int(i as i64)], |k| {
                    let j: usize = String::from_utf8_lossy(k)[1..].parse().unwrap();
                    value_hash(Some(&current[j].to_le_bytes()))
                });
                if let Some(v) = hit {
                    prop_assert_eq!(v, VmValue::Int(world[i] as i64),
                        "cache served a stale value for key {}", i);
                }
            }
            // Re-populate the invalidated entry like a re-execution would.
            let read_set = vec![(keyname(idx), value_hash(Some(&world[idx].to_le_bytes())))];
            cache.insert(&object, "m", &[VmValue::Int(idx as i64)], VmValue::Int(world[idx] as i64), read_set);
        }
    }

    #[test]
    fn counter_codec_round_trips(v in any::<u64>()) {
        prop_assert_eq!(keys::decode_counter(Some(&keys::encode_counter(v))), v);
    }
}
