//! Model-based property test of the whole invocation engine: a random
//! sequence of object lifecycle + invocation + migration operations must
//! behave exactly like a trivial in-memory model — including across an
//! engine restart (WAL recovery) at an arbitrary point.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use lambda_kv::{Db, Options};
use lambda_objects::{
    Engine, EngineConfig, FieldDef, FieldKind, InvokeError, ObjectId, ObjectType, TypeRegistry,
};
use lambda_vm::{assemble, VmValue};

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Delete(u8),
    Add(u8, i8),
    ReadBalance(u8),
    Push(u8, u8),
    CountLog(u8),
    EvictAndReimport(u8),
    Restart,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..6).prop_map(Op::Create),
        1 => (0u8..6).prop_map(Op::Delete),
        6 => (0u8..6, any::<i8>()).prop_map(|(o, v)| Op::Add(o, v)),
        4 => (0u8..6).prop_map(Op::ReadBalance),
        3 => (0u8..6, any::<u8>()).prop_map(|(o, v)| Op::Push(o, v)),
        2 => (0u8..6).prop_map(Op::CountLog),
        1 => (0u8..6).prop_map(Op::EvictAndReimport),
        1 => Just(Op::Restart),
    ]
}

fn account_type() -> ObjectType {
    let module = assemble(
        r#"
        fn add(1) locals=2 {
            push.s "balance"
            host.get
            btoi
            load 0
            add
            store 1
            push.s "balance"
            load 1
            itob
            host.put
            pop
            load 1
            ret
        }
        fn balance(0) ro det {
            push.s "balance"
            host.get
            btoi
            ret
        }
        fn log_push(1) {
            push.s "log"
            load 0
            host.push
            ret
        }
        fn log_count(0) ro det {
            push.s "log"
            host.count
            ret
        }
        "#,
    )
    .unwrap();
    ObjectType::from_module(
        "Account",
        vec![
            FieldDef { name: "balance".into(), kind: FieldKind::Scalar },
            FieldDef { name: "log".into(), kind: FieldKind::Collection },
        ],
        module,
    )
    .unwrap()
}

fn new_engine(dir: &std::path::Path) -> Engine {
    let db = Db::open(dir, Options::small_for_tests()).unwrap();
    let types = Arc::new(TypeRegistry::new());
    types.register(account_type());
    Engine::new(db, types, EngineConfig::default())
}

#[derive(Debug, Default, Clone)]
struct ModelObject {
    balance: i64,
    log: Vec<u8>,
}

fn oid(i: u8) -> ObjectId {
    ObjectId::new(format!("acct/{i}").into_bytes())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn engine_matches_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        static DIR_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = DIR_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("lambda-prop-engine-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut engine = new_engine(&dir);
        let mut model: HashMap<u8, ModelObject> = HashMap::new();

        for op in ops {
            match op {
                Op::Create(o) => {
                    let result = engine.create_object("Account", &oid(o), &[]);
                    if let std::collections::hash_map::Entry::Vacant(slot) = model.entry(o) {
                        prop_assert!(result.is_ok());
                        slot.insert(ModelObject::default());
                    } else {
                        prop_assert!(matches!(result, Err(InvokeError::AlreadyExists(_))));
                    }
                }
                Op::Delete(o) => {
                    engine.delete_object(&oid(o)).unwrap();
                    model.remove(&o);
                }
                Op::Add(o, v) => {
                    let result = engine.invoke(&oid(o), "add", vec![VmValue::Int(v as i64)]);
                    match model.get_mut(&o) {
                        Some(m) => {
                            m.balance += v as i64;
                            prop_assert_eq!(result.unwrap(), VmValue::Int(m.balance));
                        }
                        None => {
                            prop_assert!(matches!(result, Err(InvokeError::UnknownObject(_))));
                        }
                    }
                }
                Op::ReadBalance(o) => {
                    let result = engine.invoke(&oid(o), "balance", vec![]);
                    match model.get(&o) {
                        Some(m) => prop_assert_eq!(result.unwrap(), VmValue::Int(m.balance)),
                        None => {
                            prop_assert!(matches!(result, Err(InvokeError::UnknownObject(_))))
                        }
                    }
                }
                Op::Push(o, v) => {
                    let result =
                        engine.invoke(&oid(o), "log_push", vec![VmValue::Bytes(vec![v])]);
                    match model.get_mut(&o) {
                        Some(m) => {
                            prop_assert!(result.is_ok());
                            m.log.push(v);
                        }
                        None => {
                            prop_assert!(matches!(result, Err(InvokeError::UnknownObject(_))))
                        }
                    }
                }
                Op::CountLog(o) => {
                    let result = engine.invoke(&oid(o), "log_count", vec![]);
                    match model.get(&o) {
                        Some(m) => {
                            prop_assert_eq!(result.unwrap(), VmValue::Int(m.log.len() as i64))
                        }
                        None => {
                            prop_assert!(matches!(result, Err(InvokeError::UnknownObject(_))))
                        }
                    }
                }
                Op::EvictAndReimport(o) => {
                    // A migration "bounce" must be a perfect no-op.
                    match engine.evict_object(&oid(o)) {
                        Ok(snapshot) => {
                            prop_assert!(model.contains_key(&o));
                            prop_assert!(!engine.object_exists(&oid(o)));
                            engine.import_object(&snapshot).unwrap();
                        }
                        Err(InvokeError::UnknownObject(_)) => {
                            prop_assert!(!model.contains_key(&o));
                        }
                        Err(other) => prop_assert!(false, "unexpected: {other}"),
                    }
                }
                Op::Restart => {
                    drop(engine);
                    engine = new_engine(&dir);
                }
            }
        }

        // Final full-state audit.
        for (o, m) in &model {
            prop_assert_eq!(
                engine.invoke(&oid(*o), "balance", vec![]).unwrap(),
                VmValue::Int(m.balance)
            );
            prop_assert_eq!(
                engine.invoke(&oid(*o), "log_count", vec![]).unwrap(),
                VmValue::Int(m.log.len() as i64)
            );
        }
        let live = engine.list_objects();
        prop_assert_eq!(live.len(), model.len(), "object census matches");
        drop(engine);
        std::fs::remove_dir_all(&dir).ok();
    }
}
