//! Model-based property test of the per-object dedup window: under an
//! arbitrary interleaving of fresh invocations and redeliveries of past
//! invocation ids, the engine must behave exactly like a model that
//! remembers the last [`DEDUP_WINDOW`] executed invocations — a
//! redelivery inside the window returns the recorded result without
//! re-executing; a redelivery of an evicted id re-executes (that is the
//! documented boundary of the window, not a bug).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use proptest::prelude::*;

use lambda_kv::{Db, Options};
use lambda_objects::{
    Engine, EngineConfig, FieldDef, FieldKind, InvocationContext, ObjectId, ObjectType,
    TypeRegistry, DEDUP_WINDOW,
};
use lambda_vm::{assemble, VmValue};

#[derive(Debug, Clone)]
enum Op {
    /// A brand-new invocation adding `amount` to the balance.
    Fresh(i8),
    /// Redeliver a previously-sent invocation, picked by index into the
    /// send history (modulo its length).
    Redeliver(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<i8>().prop_map(Op::Fresh),
        2 => any::<u8>().prop_map(Op::Redeliver),
    ]
}

fn account_type() -> ObjectType {
    let module = assemble(
        r#"
        fn add(1) locals=2 {
            push.s "balance"
            host.get
            btoi
            load 0
            add
            store 1
            push.s "balance"
            load 1
            itob
            host.put
            pop
            load 1
            ret
        }
        "#,
    )
    .unwrap();
    ObjectType::from_module(
        "Account",
        vec![FieldDef { name: "balance".into(), kind: FieldKind::Scalar }],
        module,
    )
    .unwrap()
}

/// The model: balance, per-id recorded results, and the recency window of
/// remembered invocation ids (newest at the back).
#[derive(Debug, Default)]
struct Model {
    balance: i64,
    recorded: HashMap<u64, i64>,
    window: VecDeque<u64>,
}

impl Model {
    fn execute(&mut self, id: u64, amount: i64) -> i64 {
        self.balance += amount;
        self.recorded.insert(id, self.balance);
        self.window.retain(|&w| w != id);
        self.window.push_back(id);
        if self.window.len() > DEDUP_WINDOW {
            let evicted = self.window.pop_front().unwrap();
            self.recorded.remove(&evicted);
        }
        self.balance
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn dedup_window_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        static DIR_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = DIR_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("lambda-prop-dedup-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let db = Db::open(&dir, Options::small_for_tests()).unwrap();
        let types = Arc::new(TypeRegistry::new());
        types.register(account_type());
        let engine = Engine::new(db, types, EngineConfig::default());
        let oid = ObjectId::from("acct/dedup");
        engine.create_object("Account", &oid, &[]).unwrap();

        let mut model = Model::default();
        // The send history: (invocation id, amount), redeliveries pick
        // from here. Ids start at 1 (0 means dedup-off).
        let mut sent: Vec<(u64, i64)> = Vec::new();

        let invoke = |id: u64, amount: i64, attempt: u32| {
            let mut ctx = InvocationContext::background();
            ctx.invocation_id = id;
            ctx.attempt = attempt;
            engine
                .invoke_ctx(&ctx, &oid, "add", vec![VmValue::Int(amount)], true, 0)
                .unwrap()
        };

        for op in ops {
            match op {
                Op::Fresh(amount) => {
                    let id = sent.len() as u64 + 1;
                    let amount = amount as i64;
                    sent.push((id, amount));
                    let got = invoke(id, amount, 0);
                    let want = model.execute(id, amount);
                    prop_assert_eq!(got, VmValue::Int(want));
                }
                Op::Redeliver(pick) => {
                    if sent.is_empty() {
                        continue;
                    }
                    let (id, amount) = sent[pick as usize % sent.len()];
                    let got = invoke(id, amount, 1);
                    match model.recorded.get(&id) {
                        // In the window: the recorded result comes back and
                        // the state must not change.
                        Some(&result) => {
                            prop_assert_eq!(got, VmValue::Int(result));
                        }
                        // Evicted (or superseded): the engine re-executes,
                        // exactly like the model.
                        None => {
                            let want = model.execute(id, amount);
                            prop_assert_eq!(got, VmValue::Int(want));
                        }
                    }
                }
            }
        }

        // Final audit: the balance only counts deduplicated executions,
        // and the engine's window is exactly the model's.
        let balance = engine.invoke(&oid, "add", vec![VmValue::Int(0)]).unwrap();
        prop_assert_eq!(balance, VmValue::Int(model.balance));
        drop(engine);
        std::fs::remove_dir_all(&dir).ok();
    }
}
