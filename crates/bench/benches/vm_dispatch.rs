//! Criterion micro-benchmarks of the VM dispatch rewrite (MICRO):
//! pre-decoded threaded interpreter vs the reference match-decode loop, on
//! the three instruction mixes that dominate ReTwis programs — pure
//! decode/arithmetic, local-field shuffling with key building, and
//! host-call-dense bodies.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lambda_vm::host::MemoryHost;
use lambda_vm::{assemble, Interpreter, Limits, Module, VmValue};

/// Tight counted sum loop: almost every adjacent pair is fusable
/// (`load;load`, `add;store`, `push.i;store`, `lt;jz`), so this isolates
/// raw dispatch + decode cost.
fn decode_heavy() -> Module {
    assemble(
        r#"
        fn spin(1) locals=3 {
            push.i 0
            store 1
            push.i 0
            store 2
        head:
            load 2
            load 0
            lt
            jz done
            load 1
            load 2
            add
            store 1
            load 2
            push.i 1
            add
            store 2
            jmp head
        done:
            load 1
            ret
        }
        "#,
    )
    .expect("decode_heavy assembles")
}

/// Local-field traffic: key building (`concat`, `itob`, `len`) plus dense
/// load/store shuffling — the shape of ReTwis functions preparing keys
/// before touching storage.
fn field_access_heavy() -> Module {
    assemble(
        r#"
        fn fields(1) locals=6 {
            push.s "user:"
            store 1
            push.i 0
            store 5
        head:
            load 5
            load 0
            lt
            jz done
            load 1
            load 5
            itob
            concat
            store 2
            load 2
            len
            store 3
            load 3
            store 4
            load 5
            push.i 1
            add
            store 5
            jmp head
        done:
            load 4
            ret
        }
        "#,
    )
    .expect("field_access_heavy assembles")
}

/// Host-call-dense loop: get + scan + put per iteration, so per-call
/// overhead (base fuel, argument accounting) dominates over dispatch.
fn host_call_heavy() -> Module {
    assemble(
        r#"
        fn hosty(1) locals=2 {
            push.i 0
            store 1
        head:
            load 1
            load 0
            lt
            jz done
            push.s "field"
            host.get
            pop
            push.s "tl"
            push.i 5
            push.i 1
            host.scan
            pop
            push.s "field"
            push.s "value"
            host.put
            pop
            load 1
            push.i 1
            add
            store 1
            jmp head
        done:
            unit
            ret
        }
        "#,
    )
    .expect("host_call_heavy assembles")
}

fn seeded_host() -> MemoryHost {
    let mut host = MemoryHost::default();
    host.fields.insert(b"field".to_vec(), b"value".to_vec());
    for i in 0..5u8 {
        host.collections.entry(b"tl".to_vec()).or_default().push(vec![i; 8]);
    }
    host
}

fn bench_dispatch_mixes(c: &mut Criterion) {
    let cases: [(&str, Module, &str, i64); 3] = [
        ("decode_heavy", decode_heavy(), "spin", 2_000),
        ("field_access_heavy", field_access_heavy(), "fields", 1_000),
        ("host_call_heavy", host_call_heavy(), "hosty", 200),
    ];
    let mut group = c.benchmark_group("vm_dispatch");
    for (name, module, entry, iters) in &cases {
        group.throughput(Throughput::Elements(*iters as u64));
        let threaded = Interpreter::new(Limits::default());
        let reference = Interpreter::reference(Limits::default());
        let mut host = seeded_host();
        group.bench_function(&format!("{name}/threaded"), |b| {
            b.iter(|| {
                threaded.execute(module, entry, vec![VmValue::Int(*iters)], &mut host).unwrap()
            })
        });
        group.bench_function(&format!("{name}/reference"), |b| {
            b.iter(|| {
                reference.execute(module, entry, vec![VmValue::Int(*iters)], &mut host).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch_mixes);
criterion_main!(benches);
