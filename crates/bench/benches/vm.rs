//! Criterion micro-benchmarks of the function runtime (MICRO):
//! sandbox dispatch overhead vs trusted native execution — the cost the
//! paper accepts for isolation (§4.2: WebAssembly executes "at almost
//! native speed"; this quantifies our substitute's gap).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lambda_vm::host::MemoryHost;
use lambda_vm::{assemble, Interpreter, Limits, NativeRegistry, VmValue};

fn bench_dispatch(c: &mut Criterion) {
    let module = assemble(
        r#"
        fn add(2) {
            load 0
            load 1
            add
            ret
        }
        "#,
    )
    .unwrap();
    let interp = Interpreter::new(Limits::default());
    let mut host = MemoryHost::default();
    let mut group = c.benchmark_group("vm");
    group.throughput(Throughput::Elements(1));
    group.bench_function("call_add_bytecode", |b| {
        b.iter(|| {
            interp
                .execute(&module, "add", vec![VmValue::Int(2), VmValue::Int(40)], &mut host)
                .unwrap()
        })
    });

    let mut reg = NativeRegistry::new();
    reg.register("add", true, true, true, |ctx| {
        Ok(VmValue::Int(ctx.int_arg(0)? + ctx.int_arg(1)?))
    });
    group.bench_function("call_add_native", |b| {
        b.iter(|| reg.invoke("add", vec![VmValue::Int(2), VmValue::Int(40)], &mut host).unwrap())
    });
    group.finish();
}

fn bench_compute(c: &mut Criterion) {
    let module = assemble(
        r#"
        fn fib(1) {
            load 0
            push.i 2
            lt
            jz recurse
            load 0
            ret
        recurse:
            load 0
            push.i 1
            sub
            call fib
            load 0
            push.i 2
            sub
            call fib
            add
            ret
        }
        "#,
    )
    .unwrap();
    let interp = Interpreter::new(Limits::default());
    let mut host = MemoryHost::default();
    let mut group = c.benchmark_group("vm");
    group.bench_function("fib15_bytecode", |b| {
        b.iter(|| {
            let out = interp.execute(&module, "fib", vec![VmValue::Int(15)], &mut host).unwrap();
            assert_eq!(out, VmValue::Int(610));
        })
    });
    fn fib(n: i64) -> i64 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }
    group.bench_function("fib15_native", |b| {
        b.iter(|| assert_eq!(fib(std::hint::black_box(15)), 610))
    });
    group.finish();
}

fn bench_host_calls(c: &mut Criterion) {
    let module = assemble(
        r#"
        fn touch(0) {
            push.s "key"
            push.s "value-value-value"
            host.put
            pop
            push.s "key"
            host.get
            ret
        }
        "#,
    )
    .unwrap();
    let interp = Interpreter::new(Limits::default());
    let mut host = MemoryHost::default();
    let mut group = c.benchmark_group("vm");
    group.throughput(Throughput::Elements(2));
    group.bench_function("host_put_get", |b| {
        b.iter(|| interp.execute(&module, "touch", vec![], &mut host).unwrap())
    });
    group.finish();
}

fn bench_assemble_validate(c: &mut Criterion) {
    let source = lambda_retwis::user_module(); // force-link retwis
    drop(source);
    let src = r#"
        fn create_post(1) locals=5 {
            host.self
            push.s "|"
            concat
            load 0
            concat
            store 4
            push.s "timeline"
            load 4
            host.push
            pop
            unit
            ret
        }
        fn get_timeline(1) ro det {
            push.s "timeline"
            load 0
            push.i 1
            host.scan
            ret
        }
    "#;
    let mut group = c.benchmark_group("vm");
    group.bench_function("assemble_and_validate", |b| b.iter(|| assemble(src).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_dispatch, bench_compute, bench_host_calls, bench_assemble_validate);
criterion_main!(benches);
