//! Criterion micro-benchmarks of the wire codec and Paxos commit path
//! (MICRO): the marshalling and consensus costs underneath the cluster.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lambda_net::{wire, LatencyModel, Network, NodeId};
use lambda_paxos::{PaxosConfig, PaxosNode};
use lambda_store::{StoreRequest, StoreResponse};
use lambda_vm::VmValue;

fn bench_codec(c: &mut Criterion) {
    let request = StoreRequest::Invoke {
        object: b"user/004217".to_vec(),
        method: "create_post".into(),
        args: vec![VmValue::str("a fairly typical post payload, ~64 bytes of text here!")],
        read_only: false,
        internal: false,
        collect_read_set: false,
    };
    let encoded = wire::to_bytes(&request).unwrap();
    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_invoke", |b| b.iter(|| wire::to_bytes(&request).unwrap()));
    group.bench_function("decode_invoke", |b| {
        b.iter(|| wire::from_bytes::<StoreRequest>(&encoded).unwrap())
    });

    let response = StoreResponse::Value(VmValue::List(
        (0..10).map(|i| VmValue::str(format!("user/{i:06}|post body text"))).collect(),
    ));
    let encoded_resp = wire::to_bytes(&response).unwrap();
    group.throughput(Throughput::Bytes(encoded_resp.len() as u64));
    group.bench_function("decode_timeline_response", |b| {
        b.iter(|| wire::from_bytes::<StoreResponse>(&encoded_resp).unwrap())
    });
    group.finish();
}

fn bench_paxos_commit(c: &mut Criterion) {
    let net = Network::new(LatencyModel::instant(), 99);
    let members = vec![NodeId(1), NodeId(2), NodeId(3)];
    let nodes: Vec<_> = members
        .iter()
        .map(|&id| {
            PaxosNode::start(
                &net,
                id,
                members.clone(),
                Arc::new(|_, _| {}),
                PaxosConfig {
                    rpc_timeout: Duration::from_millis(200),
                    max_retries: 8,
                    retry_backoff: Duration::from_millis(1),
                    workers: 4,
                },
            )
        })
        .collect();
    let mut group = c.benchmark_group("paxos");
    group.throughput(Throughput::Elements(1));
    group.sample_size(20);
    group.bench_function("commit_3node", |b| {
        b.iter(|| nodes[0].propose(b"command".to_vec()).unwrap())
    });
    group.finish();
    net.shutdown();
}

criterion_group!(benches, bench_codec, bench_paxos_commit);
criterion_main!(benches);
