//! Criterion micro-benchmarks of the storage engine (MICRO in DESIGN.md):
//! the raw put/get/scan costs underneath every invocation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use lambda_kv::{Db, Options, WriteBatch};

fn fresh_db(name: &str) -> (Db, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("lambda-bench-kv-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (Db::open(&dir, Options::default()).unwrap(), dir)
}

fn bench_put(c: &mut Criterion) {
    let (db, dir) = fresh_db("put");
    let mut group = c.benchmark_group("kv");
    group.throughput(Throughput::Elements(1));
    let mut i = 0u64;
    group.bench_function("put_128B", |b| {
        b.iter(|| {
            i += 1;
            db.put(format!("key-{i:012}").into_bytes(), vec![0xabu8; 128]).unwrap();
        })
    });
    group.finish();
    drop(db);
    std::fs::remove_dir_all(dir).ok();
}

fn bench_batch(c: &mut Criterion) {
    let (db, dir) = fresh_db("batch");
    let mut group = c.benchmark_group("kv");
    group.throughput(Throughput::Elements(16));
    let mut i = 0u64;
    group.bench_function("batch16_128B", |b| {
        b.iter_batched(
            || {
                let mut batch = WriteBatch::new();
                for k in 0..16 {
                    i += 1;
                    batch.put(format!("key-{i:012}-{k}").into_bytes(), vec![0x5au8; 128]);
                }
                batch
            },
            |batch| db.write(batch).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
    drop(db);
    std::fs::remove_dir_all(dir).ok();
}

fn bench_get(c: &mut Criterion) {
    let (db, dir) = fresh_db("get");
    for i in 0..10_000u64 {
        db.put(format!("key-{i:012}").into_bytes(), vec![0x11u8; 128]).unwrap();
    }
    db.compact_all().unwrap();
    let mut group = c.benchmark_group("kv");
    group.throughput(Throughput::Elements(1));
    let mut i = 0u64;
    group.bench_function("get_hit_sstable", |b| {
        b.iter(|| {
            i = (i + 7919) % 10_000;
            db.get(format!("key-{i:012}").as_bytes()).unwrap().expect("present")
        })
    });
    group.bench_function("get_miss_bloom", |b| {
        b.iter(|| {
            i += 1;
            db.get(format!("absent-{i:012}").as_bytes()).unwrap()
        })
    });
    group.finish();
    drop(db);
    std::fs::remove_dir_all(dir).ok();
}

fn bench_scan(c: &mut Criterion) {
    let (db, dir) = fresh_db("scan");
    for i in 0..10_000u64 {
        db.put(format!("user/{:04}/k{i:08}", i % 100).into_bytes(), vec![1u8; 64]).unwrap();
    }
    db.compact_all().unwrap();
    let mut group = c.benchmark_group("kv");
    group.throughput(Throughput::Elements(100));
    group.bench_function("scan_prefix_100", |b| {
        b.iter(|| {
            let n = db.scan_prefix(b"user/0042/").count();
            assert_eq!(n, 100);
        })
    });
    group.finish();
    drop(db);
    std::fs::remove_dir_all(dir).ok();
}

criterion_group!(benches, bench_put, bench_batch, bench_get, bench_scan);
criterion_main!(benches);
