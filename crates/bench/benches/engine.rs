//! Criterion micro-benchmarks of the invocation engine (MICRO):
//! the full invocation path (lock → snapshot → execute → atomic commit)
//! and the consistent-cache hit path (§4.2.2).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lambda_kv::{Db, Options};
use lambda_objects::{Engine, EngineConfig, ObjectId, TypeRegistry};
use lambda_retwis::{account_id, user_type, user_type_native, USER_TYPE};
use lambda_vm::VmValue;

fn engine_with(ty: lambda_objects::ObjectType, name: &str) -> (Engine, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("lambda-bench-eng-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Db::open(&dir, Options::default()).unwrap();
    let types = Arc::new(TypeRegistry::new());
    types.register(ty);
    (Engine::new(db, types, EngineConfig::default()), dir)
}

fn bench_invoke_paths(c: &mut Criterion) {
    let (engine, dir) = engine_with(user_type(), "bytecode");
    let id = ObjectId::new(account_id(0));
    engine.create_object(USER_TYPE, &id, &[("name", b"bench")]).unwrap();
    engine.invoke(&id, "create_post", vec![VmValue::str("seed")]).unwrap();

    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(1));
    group.bench_function("mutating_invocation", |b| {
        b.iter(|| engine.invoke(&id, "create_post", vec![VmValue::str("p")]).unwrap())
    });
    group.bench_function("read_only_cache_hit", |b| {
        // Identical args: after the first call every iteration hits the
        // consistent cache.
        b.iter(|| engine.invoke(&id, "get_timeline", vec![VmValue::Int(10)]).unwrap())
    });
    let (uncached, dir2) = {
        let dir =
            std::env::temp_dir().join(format!("lambda-bench-eng-{}-uncached", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = Db::open(&dir, Options::default()).unwrap();
        let types = Arc::new(TypeRegistry::new());
        types.register(user_type());
        (Engine::new(db, types, EngineConfig { cache_capacity: 0, ..EngineConfig::default() }), dir)
    };
    uncached.create_object(USER_TYPE, &id, &[("name", b"bench")]).unwrap();
    for i in 0..10 {
        uncached.invoke(&id, "create_post", vec![VmValue::str(format!("p{i}"))]).unwrap();
    }
    group.bench_function("read_only_uncached", |b| {
        b.iter(|| uncached.invoke(&id, "get_timeline", vec![VmValue::Int(10)]).unwrap())
    });
    group.finish();
    drop(engine);
    drop(uncached);
    std::fs::remove_dir_all(dir).ok();
    std::fs::remove_dir_all(dir2).ok();
}

fn bench_native_vs_bytecode(c: &mut Criterion) {
    let (bytecode, d1) = engine_with(user_type(), "ntv-bc");
    let (native, d2) = engine_with(user_type_native(), "ntv-nat");
    let id = ObjectId::new(account_id(1));
    for engine in [&bytecode, &native] {
        engine.create_object(USER_TYPE, &id, &[("name", b"x")]).unwrap();
        engine.invoke(&id, "create_post", vec![VmValue::str("seed")]).unwrap();
    }
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(1));
    group.bench_function("post_bytecode", |b| {
        b.iter(|| bytecode.invoke(&id, "create_post", vec![VmValue::str("p")]).unwrap())
    });
    group.bench_function("post_native", |b| {
        b.iter(|| native.invoke(&id, "create_post", vec![VmValue::str("p")]).unwrap())
    });
    group.finish();
    drop(bytecode);
    drop(native);
    std::fs::remove_dir_all(d1).ok();
    std::fs::remove_dir_all(d2).ok();
}

fn bench_nested_call(c: &mut Criterion) {
    let (engine, dir) = engine_with(user_type(), "nested");
    let author = ObjectId::new(account_id(2));
    let follower = ObjectId::new(account_id(3));
    engine.create_object(USER_TYPE, &author, &[("name", b"a")]).unwrap();
    engine.create_object(USER_TYPE, &follower, &[("name", b"f")]).unwrap();
    engine.invoke(&author, "follow", vec![VmValue::Bytes(follower.0.clone())]).unwrap();
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(1));
    group.bench_function("post_with_one_follower", |b| {
        // One nested store_post: commit boundary + lock release/reacquire.
        b.iter(|| engine.invoke(&author, "create_post", vec![VmValue::str("p")]).unwrap())
    });
    group.finish();
    drop(engine);
    std::fs::remove_dir_all(dir).ok();
}

criterion_group!(benches, bench_invoke_paths, bench_native_vs_bytecode, bench_nested_call);
criterion_main!(benches);
