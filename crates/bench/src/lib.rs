//! # lambda-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! LambdaObjects paper (see DESIGN.md's per-experiment index):
//!
//! | binary | artifact |
//! |---|---|
//! | `fig1_fig2` | Figure 1 (normalized ReTwis throughput) + Figure 2 (median/p99 latency) |
//! | `table1` | Table 1 (architecture comparison with measured proxies) |
//! | `ablation_cache` | §4.2.2 consistent-caching ablation |
//! | `ablation_scheduler` | §4.2 per-object scheduling ablation |
//! | `ablation_replication` | §4.2.1 replication-factor ablation |
//! | `ablation_fanout` | §3.2 fan-out cost sweep |
//!
//! Criterion micro-benchmarks live under `benches/`.
//!
//! All binaries accept environment variables to scale the run:
//! `RETWIS_ACCOUNTS`, `RETWIS_CLIENTS`, `RETWIS_FOLLOWS`,
//! `RETWIS_SECONDS`, `BENCH_PAPER_SCALE=1` (switches to the paper's
//! 10,000-account / 100-client configuration).

use std::sync::Arc;
use std::time::Duration;

use lambda_retwis::{run, setup, Op, OpMix, RetwisBackend, RunResult, WorkloadConfig};
use lambda_store::ClusterConfig;

/// Read an environment knob.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Read a float environment knob.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The workload configuration used by the figure/table harnesses.
///
/// Defaults are scaled down from the paper (2,000 accounts, 48 clients,
/// 4 s per workload) so a full run completes in minutes inside the
/// simulator; `BENCH_PAPER_SCALE=1` restores the paper's parameters.
pub fn workload_config() -> WorkloadConfig {
    let paper = env_usize("BENCH_PAPER_SCALE", 0) == 1;
    let accounts = env_usize("RETWIS_ACCOUNTS", if paper { 10_000 } else { 1_000 });
    let clients = env_usize("RETWIS_CLIENTS", if paper { 100 } else { 16 });
    let follows = env_usize("RETWIS_FOLLOWS", if paper { 10 } else { 5 });
    let seconds = env_f64("RETWIS_SECONDS", if paper { 10.0 } else { 4.0 });
    // The paper does not specify follower skew; Retwis-style setups use a
    // mildly skewed graph. θ=0.5 keeps hot accounts realistic without the
    // degenerate celebrity fan-outs θ≈1 produces at small account counts.
    let theta = env_f64("RETWIS_THETA", 0.3);
    WorkloadConfig {
        accounts,
        clients,
        follows_per_account: follows,
        duration: Duration::from_secs_f64(seconds),
        zipf_theta: theta,
        ..WorkloadConfig::default()
    }
}

/// Cluster configuration for the harnesses: simulated one-way link latency
/// comes from `BENCH_RTT_US` (microseconds, default 500 — an overlay-network
/// datacenter hop; the effect under study is round-trips, §4.1).
pub fn cluster_config() -> ClusterConfig {
    let base_us = env_usize("BENCH_RTT_US", 500) as u64;
    ClusterConfig {
        latency: lambda_net::LatencyModel {
            base: std::time::Duration::from_micros(base_us),
            jitter: std::time::Duration::from_micros(base_us / 3),
            per_byte: std::time::Duration::from_nanos(1),
            drop_probability: 0.0,
        },
        ..ClusterConfig::default()
    }
}

/// Results of running the three single-op workloads on one backend.
#[derive(Debug, Clone)]
pub struct ArchResults {
    /// Architecture label.
    pub label: String,
    /// One result per [`Op::ALL`] entry.
    pub per_op: Vec<(Op, RunResult)>,
}

/// Deploy, set up the social graph, and run the three single-op
/// workloads of §5 on `backend`.
///
/// # Panics
/// Panics on backend failures (benchmarks should fail loudly).
pub fn run_retwis_suite<B: RetwisBackend + 'static>(
    backend: Arc<B>,
    config: &WorkloadConfig,
) -> ArchResults {
    backend.deploy().expect("deploy type");
    eprintln!(
        "[{}] setting up {} accounts x {} follows...",
        backend.label(),
        config.accounts,
        config.follows_per_account
    );
    setup(&backend, config).expect("workload setup");
    let mut per_op = Vec::new();
    for op in Op::ALL {
        let cfg = WorkloadConfig { mix: OpMix::only(op), ..config.clone() };
        eprintln!("[{}] running {} for {:?}...", backend.label(), op.name(), cfg.duration);
        let result = run(&backend, &cfg);
        eprintln!("[{}] {}: {}", backend.label(), op.name(), result.summary());
        per_op.push((op, result));
    }
    ArchResults { label: backend.label().to_string(), per_op }
}

/// Format a duration in milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Print the Figure 1 table: absolute and normalized throughput.
pub fn print_figure1(aggregated: &ArchResults, disaggregated: &ArchResults) {
    println!("\n=== Figure 1: ReTwis throughput (jobs/sec; normalized to aggregated) ===");
    println!(
        "{:<14} {:>14} {:>16} {:>12} {:>14}",
        "Workload", "Aggregated", "Disaggregated", "Agg (norm)", "Disagg (norm)"
    );
    for ((op, agg), (_, dis)) in aggregated.per_op.iter().zip(&disaggregated.per_op) {
        let a = agg.throughput();
        let d = dis.throughput();
        let base = a.max(1e-9);
        println!("{:<14} {:>14.0} {:>16.0} {:>12.2} {:>14.2}", op.name(), a, d, a / base, d / base);
    }
    println!(
        "\npaper shape: aggregated >= 2.6x disaggregated on every workload\n\
         (paper absolute numbers: Post 1309 vs 492, GetTimeline 30799 vs 9106,\n\
         Follow 55600 vs 11355 jobs/sec on CloudLab hardware)"
    );
}

/// Print the Figure 2 table: median and p99 latency.
pub fn print_figure2(aggregated: &ArchResults, disaggregated: &ArchResults) {
    println!("\n=== Figure 2: ReTwis latency (ms; big bars = median, small bars = p99) ===");
    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>14}",
        "Workload", "Agg p50", "Agg p99", "Disagg p50", "Disagg p99"
    );
    for ((op, agg), (_, dis)) in aggregated.per_op.iter().zip(&disaggregated.per_op) {
        println!(
            "{:<14} {:>12} {:>12} {:>14} {:>14}",
            op.name(),
            ms(agg.latency.median()),
            ms(agg.latency.percentile(99.0)),
            ms(dis.latency.median()),
            ms(dis.latency.percentile(99.0)),
        );
    }
    println!(
        "\npaper shape: aggregated median <= 0.5x disaggregated median on every\n\
         workload; disaggregated shows visibly higher latency variance"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_defaults() {
        assert_eq!(env_usize("DEFINITELY_UNSET_VAR_123", 7), 7);
        assert_eq!(env_f64("DEFINITELY_UNSET_VAR_123", 2.5), 2.5);
    }

    #[test]
    fn workload_config_is_sane() {
        let c = workload_config();
        assert!(c.accounts >= 10);
        assert!(c.clients >= 1);
        assert!(!c.duration.is_zero());
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(Duration::from_millis(2)), "2.00");
        assert_eq!(ms(Duration::from_micros(1500)), "1.50");
    }
}
