//! Ablation ABL-SCHED: per-object scheduling (§4.2) vs one global lock
//! vs no locking at all — measured on a full replica set, where the cost
//! of holding a lock is the synchronous backup replication performed
//! under it.
//!
//! The paper's design point: "because functions only directly access data
//! within the same object, nodes can avoid write conflicts by not
//! scheduling two functions modifying data of the same object at the same
//! time" — per-object locks let independent objects' commits (and their
//! replication round-trips) overlap, serializing only where semantically
//! required.
//!
//! Two workloads: *spread* (clients hit distinct objects — per-object
//! locking pipelines the replication waits, a global lock serializes them)
//! and *hot* (every client hits one object — all safe modes serialize).
//! `Unsafe` removes locking entirely: it may go faster, but the run checks
//! the commit count and reports the lost updates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lambda_bench::{cluster_config, env_usize};
use lambda_objects::{ObjectId, SchedulerMode};
use lambda_retwis::{account_id, AggregatedBackend, RetwisBackend};
use lambda_store::AggregatedCluster;

fn run_case(mode: SchedulerMode, clients: usize, window: Duration, hot: bool) -> (f64, u64, u64) {
    let mut config = cluster_config();
    config.engine.scheduler = mode;
    let cluster = AggregatedCluster::build(config).expect("cluster");
    let backend = Arc::new(AggregatedBackend { client: cluster.client() });
    backend.deploy().unwrap();
    let objects = if hot { 1 } else { clients };
    for i in 0..objects {
        backend.create_account(i, "user").unwrap();
    }

    let stop = Instant::now() + window;
    let ops = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..clients {
            let backend = Arc::clone(&backend);
            let ops = Arc::clone(&ops);
            scope.spawn(move || {
                let target = if hot { 0 } else { t };
                let mut i = 0;
                while Instant::now() < stop {
                    backend.post(target, &format!("p{t}/{i}")).unwrap();
                    ops.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
    });
    let total = ops.load(Ordering::Relaxed);
    // Linearizability check: the hot object's commit version must equal
    // the number of acknowledged posts (each post = 1 commit on it).
    let committed = if hot {
        let id = ObjectId::new(account_id(0));

        backend.client.invoke(&id, "post_count", vec![], true).unwrap().as_int().unwrap() as u64
    } else {
        total
    };
    cluster.shutdown();
    (total as f64 / window.as_secs_f64(), total, committed)
}

fn main() {
    let clients = env_usize("SCHED_CLIENTS", 12);
    let window = Duration::from_secs_f64(lambda_bench::env_f64("SCHED_SECONDS", 3.0));
    println!(
        "ablation_scheduler: Post workload on a 3-way replica set, {clients} clients, {window:?}\n"
    );
    println!(
        "{:<12} {:>18} {:>18} {:<30}",
        "mode", "spread (ops/s)", "hot object (ops/s)", "hot-object integrity"
    );
    for (name, mode) in [
        ("per-object", SchedulerMode::PerObject),
        ("global", SchedulerMode::Global),
        ("unsafe", SchedulerMode::Unsafe),
    ] {
        let (spread_tput, _, _) = run_case(mode, clients, window, false);
        let (hot_tput, acked, committed) = run_case(mode, clients, window, true);
        let integrity = if committed == acked {
            format!("{committed}/{acked} posts kept")
        } else {
            format!("{committed}/{acked} posts kept (LOST UPDATES)")
        };
        if mode != SchedulerMode::Unsafe {
            assert_eq!(committed, acked, "{name}: safe mode lost updates");
        }
        println!("{:<12} {:>18.0} {:>18.0} {:<30}", name, spread_tput, hot_tput, integrity);
    }
    println!(
        "\nshape: on spread workloads per-object locking pipelines each commit's\n\
         replication round-trip across objects, while the global lock\n\
         serializes the whole node at one commit per round-trip; on a single\n\
         hot object all safe modes serialize (the application chose the lock\n\
         granularity, §4.2); unsafe mode trades lost updates for speed."
    );
}
