//! Regenerates **Figure 1** (normalized ReTwis throughput) and **Figure 2**
//! (median + p99 latency) of the LambdaObjects paper.
//!
//! Setup mirrors §5: three storage machines forming one replica set (no
//! sharding), one compute machine for the disaggregated variant, clients
//! contacting the executing node directly, 10,000 accounts (scaled down by
//! default — set `BENCH_PAPER_SCALE=1` for the full size), up to 100
//! concurrent closed-loop clients. The aggregated variant enforces
//! invocation linearizability; the disaggregated variant provides no
//! consistency guarantees.

use std::sync::Arc;

use lambda_bench::{
    cluster_config, print_figure1, print_figure2, run_retwis_suite, workload_config,
};
use lambda_retwis::{AggregatedBackend, EndpointBackend};
use lambda_store::{ids, AggregatedCluster, DisaggregatedCluster};

fn main() {
    let config = workload_config();
    println!(
        "fig1_fig2: accounts={} clients={} follows={} window={:?}",
        config.accounts, config.clients, config.follows_per_account, config.duration
    );

    // --- Aggregated (LambdaStore) -----------------------------------------
    println!("\nbuilding aggregated cluster (3 storage nodes, 1 replica set)...");
    let aggregated_cluster =
        AggregatedCluster::build(cluster_config()).expect("aggregated cluster");
    let backend = Arc::new(AggregatedBackend { client: aggregated_cluster.client() });
    let aggregated = run_retwis_suite(backend, &config);
    aggregated_cluster.shutdown();

    // --- Disaggregated baseline -------------------------------------------
    println!("\nbuilding disaggregated cluster (3 storage + 1 compute node)...");
    let disaggregated_cluster =
        DisaggregatedCluster::build(cluster_config()).expect("disaggregated cluster");
    let backend = Arc::new(EndpointBackend {
        client: disaggregated_cluster.client(),
        endpoint: ids::COMPUTE,
        name: "disaggregated",
    });
    let disaggregated = run_retwis_suite(backend, &config);
    let storage_rpcs = disaggregated_cluster
        .compute
        .executor()
        .storage_rpcs
        .load(std::sync::atomic::Ordering::Relaxed);
    disaggregated_cluster.shutdown();

    print_figure1(&aggregated, &disaggregated);
    print_figure2(&aggregated, &disaggregated);

    // Extra diagnostics: the mechanism behind the gap.
    println!("\ndiagnostics: disaggregated compute issued {storage_rpcs} storage round-trips");
    for ((op, agg), (_, dis)) in aggregated.per_op.iter().zip(&disaggregated.per_op) {
        let speedup = agg.throughput() / dis.throughput().max(1e-9);
        println!("  {:<12} aggregated/disaggregated throughput ratio: {speedup:.2}x", op.name());
    }
}
