//! Per-stage latency breakdown of the aggregated critical path, plus the
//! telemetry overhead check.
//!
//! Runs the ReTwis Post workload on the aggregated architecture twice:
//!
//! * `on` — span/histogram recording enabled (the default). After the run
//!   the executing node's registry yields p50/p95/p99 for each stage of
//!   §3.1's critical path: queue (per-object lock wait), execute (method
//!   body), commit (kv write), replicate (backup fan-out).
//! * `off` — recording disabled via `Registry::set_enabled(false)`
//!   (counters still run; histogram samples and spans are skipped).
//!
//! The throughput delta between the two modes is the cost of tracing on
//! the hot path; the target is < 2%. A single pair of runs is dominated
//! by simulator noise (±5% is routine), so the modes are run in
//! `BENCH_ROUNDS` alternating rounds (default 3) and compared by median
//! throughput.
//!
//! Emits `BENCH_trace_breakdown.json` (override with `BENCH_JSON_PATH`).

use std::sync::Arc;
use std::time::Duration;

use lambda_bench::{cluster_config, env_f64, env_usize};
use lambda_objects::Stage;
use lambda_retwis::{run, setup, AggregatedBackend, Op, OpMix, RunResult, WorkloadConfig};
use lambda_store::AggregatedCluster;

struct StageRow {
    stage: Stage,
    count: u64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

fn run_mode(enabled: bool, base: &WorkloadConfig) -> (RunResult, Vec<StageRow>) {
    let cluster = AggregatedCluster::build(cluster_config()).expect("cluster");
    for node in &cluster.core.storage {
        node.registry().set_enabled(enabled);
    }
    let backend = Arc::new(AggregatedBackend { client: cluster.client() });
    backend
        .client
        .deploy_type(
            lambda_retwis::USER_TYPE,
            lambda_retwis::user_fields(),
            &lambda_retwis::user_module(),
        )
        .expect("deploy");
    setup(&backend, base).expect("setup");
    let result = run(&backend, base);

    // Writes all execute at the shard primary, so the node with the most
    // Execute samples holds the representative distributions.
    let primary = cluster
        .core
        .storage
        .iter()
        .max_by_key(|n| n.registry().stage_stats(Stage::Execute).count)
        .expect("storage nodes");
    let stages = Stage::ALL
        .iter()
        .map(|&stage| {
            let s = primary.registry().stage_stats(stage);
            StageRow {
                stage,
                count: s.count,
                p50_us: s.p50_nanos as f64 / 1e3,
                p95_us: s.p95_nanos as f64 / 1e3,
                p99_us: s.p99_nanos as f64 / 1e3,
            }
        })
        .collect();
    cluster.shutdown();
    (result, stages)
}

fn write_json(path: &str, on: &RunResult, off: &RunResult, stages: &[StageRow], overhead: f64) {
    let mut out = String::from(
        "{\n  \"experiment\": \"TRACE-BREAKDOWN\",\n  \"workload\": \"Post\",\n  \"stages\": [\n",
    );
    for (i, r) in stages.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"stage\": \"{}\", \"count\": {}, \"p50_us\": {:.1}, \
             \"p95_us\": {:.1}, \"p99_us\": {:.1}}}{}\n",
            r.stage.name(),
            r.count,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            if i + 1 == stages.len() { "" } else { "," },
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"ops_per_sec_on\": {:.1},\n  \"ops_per_sec_off\": {:.1},\n  \
         \"overhead_pct\": {:.2}\n}}\n",
        on.throughput(),
        off.throughput(),
        overhead,
    ));
    std::fs::write(path, out).expect("write json");
}

fn main() {
    let base = WorkloadConfig {
        accounts: env_usize("RETWIS_ACCOUNTS", 500),
        clients: env_usize("RETWIS_CLIENTS", 16),
        follows_per_account: env_usize("RETWIS_FOLLOWS", 5),
        duration: Duration::from_secs_f64(env_f64("RETWIS_SECONDS", 2.0)),
        mix: OpMix::only(Op::Post),
        ..WorkloadConfig::default()
    };
    let json_path =
        std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| "BENCH_trace_breakdown.json".into());
    println!(
        "trace_breakdown: Post workload, accounts={} clients={} window={:?}\n",
        base.accounts, base.clients, base.duration
    );

    // Alternate off/on each round so drift (page cache, CPU frequency,
    // background load) hits both modes equally; compare medians.
    let rounds = env_usize("BENCH_ROUNDS", 3);
    let mut offs = Vec::new();
    let mut ons = Vec::new();
    let mut stages = Vec::new();
    for round in 0..rounds {
        let (off, _) = run_mode(false, &base);
        let (on, st) = run_mode(true, &base);
        println!(
            "round {}: on = {:.0} ops/s, off = {:.0} ops/s",
            round + 1,
            on.throughput(),
            off.throughput()
        );
        offs.push(off);
        ons.push(on);
        stages = st; // the last round's distributions are reported
    }
    let median = |rs: &mut Vec<RunResult>| -> RunResult {
        rs.sort_by(|a, b| a.throughput().total_cmp(&b.throughput()));
        rs[rs.len() / 2].clone()
    };
    let result_off = median(&mut offs);
    let result_on = median(&mut ons);

    println!("\nper-stage latency at the primary (telemetry on):");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12}",
        "stage", "samples", "p50 (us)", "p95 (us)", "p99 (us)"
    );
    for r in &stages {
        println!(
            "{:>10} {:>10} {:>12.1} {:>12.1} {:>12.1}",
            r.stage.name(),
            r.count,
            r.p50_us,
            r.p95_us,
            r.p99_us
        );
    }

    let on = result_on.throughput();
    let off = result_off.throughput();
    let overhead = if off > 0.0 { (off - on) / off * 100.0 } else { 0.0 };
    println!("\nmedian throughput: on = {on:.0} ops/s, off = {off:.0} ops/s");
    println!("telemetry overhead: {overhead:.2}% (target < 2%; negative = noise)");

    write_json(&json_path, &result_on, &result_off, &stages, overhead);
    println!("\nwrote {json_path}");
    println!(
        "\nshape: commit and replicate dominate a Post (durable write +\n\
         backup round-trip); queue is near zero without contention; the\n\
         on/off delta stays inside run-to-run noise."
    );
}
