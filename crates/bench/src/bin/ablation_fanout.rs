//! Ablation ABL-FANOUT: the cost of Post's follower fan-out (§3.2, §5).
//!
//! A Post job is "the initial function call and one [store_post call] for
//! each follower, which results in lower throughput compared to the other
//! workloads". This sweep measures Post latency against follower count for
//! both architectures. Expectation: both grow linearly in the fan-out, but
//! the disaggregated slope is much steeper — every `store_post` there pays
//! its own meta-fetch plus per-access storage round-trips, while the
//! aggregated variant pays at most one intra-cluster hop per remote
//! follower (and none for co-located ones).

use std::time::Instant;

use lambda_bench::{cluster_config, env_usize, ms};
use lambda_objects::ObjectId;
use lambda_retwis::{account_id, AggregatedBackend, EndpointBackend, RetwisBackend};
use lambda_store::{ids, AggregatedCluster, DisaggregatedCluster};
use lambda_vm::VmValue;

fn measure_post_latency<B: RetwisBackend>(
    backend: &B,
    author: usize,
    posts: usize,
) -> std::time::Duration {
    // Warm up once, then take the median of `posts` runs.
    backend.post(author, "warmup").expect("post");
    let mut samples: Vec<std::time::Duration> = (0..posts)
        .map(|i| {
            let t = Instant::now();
            backend.post(author, &format!("sweep {i}")).expect("post");
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Median latency of the *parallel-scatter* fan-out variant.
fn measure_post_par_latency(
    client: &lambda_store::StoreClient,
    author: usize,
    posts: usize,
) -> std::time::Duration {
    let id = ObjectId::new(account_id(author));
    let mut samples: Vec<std::time::Duration> = (0..posts)
        .map(|i| {
            let t = Instant::now();
            client
                .invoke(&id, "create_post_par", vec![VmValue::str(format!("par {i}"))], false)
                .expect("post_par");
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    let posts = env_usize("FANOUT_POSTS", 30);
    let fanouts = [0usize, 1, 2, 4, 8, 16, 32, 64];
    println!("ablation_fanout: median Post latency vs follower count ({posts} posts/cell)\n");

    // Aggregated.
    let agg_cluster = AggregatedCluster::build(cluster_config()).unwrap();
    let agg = AggregatedBackend { client: agg_cluster.client() };
    agg.deploy().unwrap();

    // Disaggregated.
    let dis_cluster = DisaggregatedCluster::build(cluster_config()).unwrap();
    let dis = EndpointBackend {
        client: dis_cluster.client(),
        endpoint: ids::COMPUTE,
        name: "disaggregated",
    };
    dis.deploy().unwrap();

    // One author per fan-out level, with exactly that many followers.
    println!(
        "{:<12} {:>14} {:>14} {:>16} {:>10}",
        "followers", "agg-seq (ms)", "agg-par (ms)", "disagg-seq (ms)", "ratio"
    );
    let mut next_account = 0usize;
    for &fanout in &fanouts {
        let author = next_account;
        next_account += 1;
        for backend in [&agg as &dyn RetwisBackend, &dis as &dyn RetwisBackend] {
            backend.create_account(author, &format!("author{fanout}")).unwrap();
            for f in 0..fanout {
                let follower = next_account + f;
                backend.create_account(follower, &format!("f{fanout}/{f}")).unwrap();
                backend.follow(author, follower).unwrap();
            }
        }
        next_account += fanout;

        let agg_lat = measure_post_latency(&agg, author, posts);
        let agg_par_lat = measure_post_par_latency(&agg.client, author, posts);
        let dis_lat = measure_post_latency(&dis, author, posts);
        println!(
            "{:<12} {:>14} {:>14} {:>16} {:>9.1}x",
            fanout,
            ms(agg_lat),
            ms(agg_par_lat),
            ms(dis_lat),
            dis_lat.as_secs_f64() / agg_lat.as_secs_f64().max(1e-9),
        );
    }

    // Sanity: the fan-out really delivered posts.
    let check = ObjectId::new(account_id(1));
    let tl = agg.client.invoke(&check, "get_timeline", vec![VmValue::Int(5)], true).unwrap();
    assert!(!tl.as_list().unwrap().is_empty(), "follower timeline populated");

    agg_cluster.shutdown();
    dis_cluster.shutdown();
    println!(
        "\nshape: fan-out cost grows linearly with follower count in both\n\
         systems; the disaggregated slope is steeper (per-follower meta fetch +\n\
         per-access round-trips). The parallel scatter (\"running the store_post\n\
         calls in parallel\", §3.2) flattens the aggregated curve on multi-core\n\
         hosts; on a single-core host its thread overhead can invert that."
    );
}
