//! Ablation ABL-CACHE: the consistent result cache of §4.2.2.
//!
//! Runs `get_timeline` against a single LambdaObjects engine with the cache
//! enabled vs disabled, across write-interference rates (a write to the
//! object invalidates its cached timelines). Shape expectation: the cache
//! wins big on read-dominated workloads and degrades gracefully toward the
//! no-cache line as the write rate grows — while never serving stale data
//! (verified inline).

use std::sync::Arc;
use std::time::Instant;

use lambda_bench::env_usize;
use lambda_kv::{Db, Options};
use lambda_objects::{Engine, EngineConfig, ObjectId, TypeRegistry};
use lambda_retwis::{account_id, user_type};
use lambda_vm::VmValue;

fn build_engine(cache_capacity: usize, dir: &std::path::Path) -> Engine {
    let _ = std::fs::remove_dir_all(dir);
    let db = Db::open(dir, Options::default()).expect("open db");
    let types = Arc::new(TypeRegistry::new());
    types.register(user_type());
    Engine::new(db, types, EngineConfig { cache_capacity, ..EngineConfig::default() })
}

const TIMELINE_LIMIT: i64 = 100;

fn run_case(engine: &Engine, reads: usize, writes_per_100_reads: usize) -> (f64, u64, u64) {
    let id = ObjectId::new(account_id(0));
    let started = Instant::now();
    let mut expected_len = engine
        .invoke(&id, "get_timeline", vec![VmValue::Int(TIMELINE_LIMIT)])
        .unwrap()
        .as_list()
        .unwrap()
        .len();
    for i in 0..reads {
        if writes_per_100_reads > 0 && i % 100 < writes_per_100_reads {
            engine
                .invoke(&id, "create_post", vec![VmValue::str(format!("interfere {i}"))])
                .unwrap();
            expected_len += 1;
        }
        let tl = engine.invoke(&id, "get_timeline", vec![VmValue::Int(TIMELINE_LIMIT)]).unwrap();
        let got = tl.as_list().unwrap().len();
        assert_eq!(
            got,
            expected_len.min(TIMELINE_LIMIT as usize),
            "STALE READ: cache served an outdated timeline"
        );
    }
    let elapsed = started.elapsed();
    let stats = engine.stats();
    (reads as f64 / elapsed.as_secs_f64(), stats.cache_hits, stats.cache.invalidations)
}

/// Give the account a realistic timeline so an uncached `get_timeline`
/// re-execution actually costs something (100 point reads through the VM).
fn seed(engine: &Engine) {
    let id = ObjectId::new(account_id(0));
    engine.create_object("User", &id, &[("name", b"u0")]).unwrap();
    for i in 0..TIMELINE_LIMIT {
        engine.invoke(&id, "create_post", vec![VmValue::str(format!("seed {i}"))]).unwrap();
    }
}

fn main() {
    let reads = env_usize("CACHE_READS", 20_000);
    let base = std::env::temp_dir().join(format!("lambda-ablcache-{}", std::process::id()));
    println!("ablation_cache: {reads} timeline reads per cell, write rates swept\n");
    println!(
        "{:<22} {:>14} {:>14} {:>12} {:>14}",
        "writes/100 reads", "cache ops/s", "nocache ops/s", "cache hits", "invalidations"
    );
    for &write_rate in &[0usize, 1, 5, 20, 50] {
        // Cached engine.
        let dir = base.join(format!("cache-{write_rate}"));
        let engine = build_engine(4096, &dir);
        seed(&engine);
        let (cached_tput, hits, invalidations) = run_case(&engine, reads, write_rate);
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);

        // Uncached engine.
        let dir = base.join(format!("nocache-{write_rate}"));
        let engine = build_engine(0, &dir);
        seed(&engine);
        let (plain_tput, _, _) = run_case(&engine, reads, write_rate);
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);

        println!(
            "{:<22} {:>14.0} {:>14.0} {:>12} {:>14}",
            write_rate, cached_tput, plain_tput, hits, invalidations
        );
    }
    let _ = std::fs::remove_dir_all(&base);
    println!(
        "\nshape: caching multiplies read-only throughput at low write rates;\n\
         the gap narrows as writes invalidate entries; zero stale reads observed."
    );
}
