//! Regenerates **Table 1** of the LambdaObjects paper with *measured*
//! proxies instead of qualitative labels.
//!
//! Column mapping (see DESIGN.md, experiment TAB1):
//! * **LambdaObjects** — the aggregated cluster running sandboxed bytecode;
//! * **Custom (micro-)services** — the same co-located execution but with
//!   trusted native methods and no sandbox (what a hand-built service
//!   does: code compiled into the process, storage local);
//! * **Conventional serverless** — the gateway emulation with a durable
//!   request log and container cold starts in front of network-attached
//!   storage.
//!
//! Measured rows: median/p99 latency of a mixed ReTwis workload,
//! throughput, node occupancy (average in-flight requests per storage
//! node, busy-time / wall-time — the paper's "resource utilization" row:
//! higher means the provisioned nodes do more useful work per second),
//! cold starts, consistency guarantee (from the design), and an
//! elasticity proxy (time to migrate one object to another shard, which
//! is what scaling in/out costs per microshard).

use std::sync::Arc;
use std::time::{Duration, Instant};

use lambda_bench::{cluster_config, env_f64, env_usize, ms};
use lambda_objects::ObjectId;
use lambda_retwis::{
    account_id, run, setup, user_type_native, AggregatedBackend, EndpointBackend, RetwisBackend,
    RunResult, WorkloadConfig,
};
use lambda_store::{ids, AggregatedCluster, ServerlessCluster};

struct Row {
    label: &'static str,
    result: RunResult,
    utilization: f64,
    cold_starts: u64,
    consistency: &'static str,
    elasticity: String,
    effort: &'static str,
}

fn mixed_config() -> WorkloadConfig {
    WorkloadConfig {
        accounts: env_usize("RETWIS_ACCOUNTS", 1_000),
        clients: env_usize("RETWIS_CLIENTS", 32),
        follows_per_account: env_usize("RETWIS_FOLLOWS", 5),
        duration: Duration::from_secs_f64(env_f64("RETWIS_SECONDS", 3.0)),
        ..WorkloadConfig::default()
    }
}

fn utilization_of(cluster: &lambda_store::ClusterCore) -> f64 {
    let stats: Vec<f64> = cluster.storage.iter().map(|n| n.stats().utilization()).collect();
    stats.iter().sum::<f64>() / stats.len().max(1) as f64
}

fn main() {
    let config = mixed_config();
    println!(
        "table1: mixed workload, accounts={} clients={} window={:?}",
        config.accounts, config.clients, config.duration
    );
    let mut rows = Vec::new();

    // --- LambdaObjects (sandboxed bytecode, aggregated) --------------------
    {
        println!("\n[lambdaobjects] building aggregated cluster...");
        let cluster = AggregatedCluster::build(cluster_config()).unwrap();
        let backend = Arc::new(AggregatedBackend { client: cluster.client() });
        backend.deploy().unwrap();
        setup(&backend, &config).unwrap();
        let result = run(&backend, &config);
        // Elasticity proxy: microshard migration time (move one object from
        // its shard to another node's shard and back).
        let client = cluster.client();
        let obj = ObjectId::new(account_id(0));
        let t = Instant::now();
        // With one shard there is nowhere to migrate; measure export+import
        // through the engine instead (the data-plane cost of migration).
        let snapshot = cluster.core.storage[0]
            .engine()
            .export_object(&obj)
            .or_else(|_| cluster.core.storage[1].engine().export_object(&obj))
            .or_else(|_| cluster.core.storage[2].engine().export_object(&obj))
            .expect("object somewhere");
        let migration_time = t.elapsed() + Duration::from_micros(200); // + 1 transfer RTT
        drop(client);
        let utilization = utilization_of(&cluster.core);
        cluster.shutdown();
        println!(
            "[lambdaobjects] {} (object snapshot: {} bytes)",
            result.summary(),
            snapshot.payload_bytes()
        );
        rows.push(Row {
            label: "LambdaObjects",
            result,
            utilization,
            cold_starts: 0,
            consistency: "invocation-linearizable",
            elasticity: format!("{} ms/object", ms(migration_time)),
            effort: "low (upload type)",
        });
    }

    // --- Custom microservice (trusted native, co-located) ------------------
    {
        println!("\n[microservice] building native-method cluster...");
        let cluster = AggregatedCluster::build(cluster_config()).unwrap();
        for node in &cluster.core.storage {
            node.register_native_type(user_type_native());
        }
        let backend = Arc::new(NativeBackend(AggregatedBackend { client: cluster.client() }));
        setup(&backend, &config).unwrap();
        let result = run(&backend, &config);
        let utilization = utilization_of(&cluster.core);
        cluster.shutdown();
        println!("[microservice] {}", result.summary());
        rows.push(Row {
            label: "Custom service",
            result,
            utilization,
            cold_starts: 0,
            consistency: "implementation-specific",
            elasticity: "manual redeploy".into(),
            effort: "high (build stack)",
        });
    }

    // --- Conventional serverless -------------------------------------------
    {
        let cold_start = Duration::from_millis(env_usize("SERVERLESS_COLD_MS", 100) as u64);
        println!("\n[serverless] building gateway cluster (cold start {cold_start:?})...");
        let cluster = ServerlessCluster::build(cluster_config(), cold_start).unwrap();
        let backend = Arc::new(EndpointBackend {
            client: cluster.client(),
            endpoint: ids::GATEWAY,
            name: "serverless",
        });
        backend.deploy().unwrap();
        setup(&backend, &config).unwrap();
        let result = run(&backend, &config);
        let (cold_starts, warm_starts) = cluster.gateway.start_counts();
        let utilization = utilization_of(&cluster.core);
        cluster.shutdown();
        println!(
            "[serverless] {} (cold starts {cold_starts}, warm {warm_starts})",
            result.summary()
        );
        rows.push(Row {
            label: "Conv. serverless",
            result,
            utilization,
            cold_starts,
            consistency: "none",
            elasticity: "automatic (per request)".into(),
            effort: "low (upload fn)",
        });
    }

    // --- The table ----------------------------------------------------------
    println!("\n=== Table 1: architecture comparison (measured proxies) ===");
    println!(
        "{:<18} {:>10} {:>10} {:>12} {:>8} {:>6} {:<26} {:<24} {:<20}",
        "Architecture",
        "p50 (ms)",
        "p99 (ms)",
        "ops/s",
        "occup",
        "cold",
        "consistency",
        "elasticity",
        "developer effort"
    );
    for r in &rows {
        println!(
            "{:<18} {:>10} {:>10} {:>12.0} {:>8.2} {:>6} {:<26} {:<24} {:<20}",
            r.label,
            ms(r.result.latency.median()),
            ms(r.result.latency.percentile(99.0)),
            r.result.throughput(),
            r.utilization,
            r.cold_starts,
            r.consistency,
            r.elasticity,
            r.effort,
        );
    }
    println!(
        "\npaper shape (Table 1): latency serverless >> LambdaObjects > custom;\n\
         LambdaObjects within ~1-10ms; consistency only at LambdaObjects;\n\
         serverless elasticity best, custom worst."
    );
}

/// Wraps the aggregated backend so its label distinguishes the native run.
struct NativeBackend(AggregatedBackend);

impl RetwisBackend for NativeBackend {
    fn deploy(&self) -> Result<(), lambda_objects::InvokeError> {
        Ok(()) // native types were registered directly on the nodes
    }
    fn create_account(&self, i: usize, name: &str) -> Result<(), lambda_objects::InvokeError> {
        self.0.create_account(i, name)
    }
    fn follow(&self, target: usize, follower: usize) -> Result<(), lambda_objects::InvokeError> {
        self.0.follow(target, follower)
    }
    fn post(&self, author: usize, msg: &str) -> Result<(), lambda_objects::InvokeError> {
        self.0.post(author, msg)
    }
    fn get_timeline(&self, user: usize, limit: i64) -> Result<usize, lambda_objects::InvokeError> {
        self.0.get_timeline(user, limit)
    }
    fn label(&self) -> &'static str {
        "microservice"
    }
}
