//! OPENLOOP: open-loop throughput-vs-tail-latency sweep across the three
//! architectures.
//!
//! Unlike the closed-loop drivers (`fig1_fig2`, `ablation_groupcommit`),
//! which bound the offered load by the number of outstanding requests,
//! this harness models independent clients: a single generator thread
//! issues Post requests at Poisson arrival instants regardless of how
//! many are still in flight. Each request is an async state machine
//! ([`lambda_store::StoreClient::invoke_async`]) — thousands of
//! concurrent requests need no client threads, which is the point of the
//! deferred-reply pipeline under test.
//!
//! For each `mode x offered-rate` cell it reports achieved throughput,
//! p50/p95/p99 of successful requests, terminal error counts, the peak
//! number of in-flight requests, and the storage-node admission-shed
//! delta. The knee per mode is the highest offered rate the architecture
//! still serves at >= 95% goodput.
//!
//! Knobs (env): `OPENLOOP_RATES` (comma-separated offered rates/s),
//! `OPENLOOP_SECONDS` (window per rate), `OPENLOOP_MODES`
//! (subset of `aggregated,disaggregated,serverless`, each optionally
//! suffixed with a request mix: `aggregated:read90` is 90% GetTimeline /
//! 10% Post with leased follower reads and the client-edge result cache;
//! `aggregated:read90-primary` is the same mix with reads pinned to the
//! primary and no edge cache — the pre-lease read path, for the
//! read-scaling comparison), `OPENLOOP_ENDPOINTS` (client RPC endpoints
//! to spread completions over), `OPENLOOP_MAX_INFLIGHT` (generator
//! safety cap), `OPENLOOP_EDGE_CACHE` (edge-cache entries per client in
//! read mixes, default 4096), `OPENLOOP_SYNC_WAL` (default 1: durability
//! config matching ABL-GROUPCOMMIT's baseline), `SERVERLESS_COLD_MS`,
//! plus the usual `RETWIS_ACCOUNTS` / `RETWIS_FOLLOWS` / `BENCH_RTT_US`.
//!
//! Emits `BENCH_openloop.json` (override with `BENCH_JSON_PATH`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use lambda_bench::{cluster_config, env_f64, env_usize};
use lambda_net::NodeId;
use lambda_objects::{InvokeError, ObjectId};
use lambda_retwis::{
    account_id, setup, AggregatedBackend, EndpointBackend, RetwisBackend, WorkloadConfig,
};
use lambda_store::{
    ids, AggregatedCluster, ClusterCore, DisaggregatedCluster, ServerlessCluster, StoreClient,
};
use lambda_vm::VmValue;

/// One architecture under test.
enum Cluster {
    Agg(AggregatedCluster),
    Dis(DisaggregatedCluster),
    Srv(ServerlessCluster),
}

impl Cluster {
    fn label(&self) -> &'static str {
        match self {
            Cluster::Agg(_) => "aggregated",
            Cluster::Dis(_) => "disaggregated",
            Cluster::Srv(_) => "serverless",
        }
    }

    fn core(&self) -> &ClusterCore {
        match self {
            Cluster::Agg(c) => &c.core,
            Cluster::Dis(c) => &c.core,
            Cluster::Srv(c) => &c.core,
        }
    }

    /// Fixed executing endpoint, for the architectures where clients do
    /// not talk to storage directly.
    fn endpoint(&self) -> Option<NodeId> {
        match self {
            Cluster::Agg(_) => None,
            Cluster::Dis(_) => Some(ids::COMPUTE),
            Cluster::Srv(_) => Some(ids::GATEWAY),
        }
    }

    fn shutdown(&self) {
        match self {
            Cluster::Agg(c) => c.shutdown(),
            Cluster::Dis(c) => c.shutdown(),
            Cluster::Srv(c) => c.shutdown(),
        }
    }
}

/// The request mix one mode cell drives.
#[derive(Clone, Copy, PartialEq)]
enum Mix {
    /// 100% Post (writes) — the original pipeline stressor.
    Post,
    /// 90% GetTimeline / 10% Post. `pin_primary` routes the reads to the
    /// shard primary with no edge cache (the pre-lease read path);
    /// otherwise reads rotate across leased replicas and repeat reads
    /// short-circuit in the client-edge result cache.
    Read90 { pin_primary: bool },
}

impl Mix {
    fn parse(name: &str) -> Mix {
        match name {
            "post" => Mix::Post,
            "read90" => Mix::Read90 { pin_primary: false },
            "read90-primary" => Mix::Read90 { pin_primary: true },
            other => panic!("unknown OPENLOOP_MODES mix suffix {other:?}"),
        }
    }

    fn suffix(self) -> &'static str {
        match self {
            Mix::Post => "",
            Mix::Read90 { pin_primary: false } => ":read90",
            Mix::Read90 { pin_primary: true } => ":read90-primary",
        }
    }
}

/// Completion-side counters shared with the async callbacks.
#[derive(Default)]
struct RateStats {
    lat_us: Mutex<Vec<u64>>,
    ok: AtomicU64,
    overloaded: AtomicU64,
    deadline: AtomicU64,
    other: AtomicU64,
    inflight: AtomicU64,
    max_inflight: AtomicU64,
}

struct Point {
    offered: f64,
    issued: u64,
    dropped: u64,
    achieved: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    ok: u64,
    overloaded: u64,
    deadline: u64,
    other: u64,
    max_inflight: u64,
    node_shed: u64,
}

struct ModeResult {
    label: String,
    points: Vec<Point>,
    knee_offered: f64,
    knee_achieved: f64,
    /// Highest achieved throughput anywhere on the curve (the saturation
    /// plateau may sit past the 95%-goodput knee).
    peak_achieved: f64,
}

fn percentile_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)] as f64 / 1e3
}

fn storage_shed(core: &ClusterCore) -> u64 {
    core.storage.iter().map(|n| n.stats().shed).sum()
}

/// Run one open-loop window at `rate` requests/second.
#[allow(clippy::too_many_arguments)]
fn run_rate(
    cluster: &Cluster,
    clients: &[StoreClient],
    accounts: usize,
    mix: Mix,
    rate: f64,
    window: Duration,
    max_inflight: u64,
    seed: u64,
) -> Point {
    let stats = Arc::new(RateStats::default());
    let shed_before = storage_shed(cluster.core());
    let endpoint = cluster.endpoint();
    let mut rng = SmallRng::seed_from_u64(seed);
    let start = Instant::now();
    let mut next_s = 0.0f64; // arrival offset in seconds
    let mut issued = 0u64;
    let mut dropped = 0u64;

    while next_s < window.as_secs_f64() {
        let target = start + Duration::from_secs_f64(next_s);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        // Schedule the next Poisson arrival before issuing, so a slow
        // issue path does not shrink the offered rate.
        let u: f64 = rng.gen();
        next_s += (-(1.0 - u).ln()).max(1e-9) / rate;

        if stats.inflight.load(Ordering::Relaxed) >= max_inflight {
            // Generator safety valve: model a client-side queue overflow
            // rather than accumulating unbounded state machines.
            dropped += 1;
            continue;
        }
        issued += 1;
        let author = rng.gen_range(0..accounts);
        let object = ObjectId::new(account_id(author));
        let write = match mix {
            Mix::Post => true,
            Mix::Read90 { .. } => rng.gen_range(0..10) == 0,
        };
        let inflight = stats.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        stats.max_inflight.fetch_max(inflight, Ordering::Relaxed);
        let st = Arc::clone(&stats);
        let issued_at = Instant::now();
        let done = Box::new(move |result: Result<VmValue, InvokeError>| {
            match result {
                Ok(_) => {
                    st.lat_us.lock().push(issued_at.elapsed().as_micros() as u64);
                    st.ok.fetch_add(1, Ordering::Relaxed);
                }
                Err(InvokeError::Overloaded(_)) => {
                    st.overloaded.fetch_add(1, Ordering::Relaxed);
                }
                Err(InvokeError::DeadlineExceeded) => {
                    st.deadline.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    st.other.fetch_add(1, Ordering::Relaxed);
                }
            }
            st.inflight.fetch_sub(1, Ordering::Relaxed);
        });
        let client = &clients[issued as usize % clients.len()];
        let (method, args, read_only) = if write {
            ("create_post", vec![VmValue::str(format!("openloop {issued}"))], false)
        } else {
            ("get_timeline", vec![VmValue::Int(10)], true)
        };
        match endpoint {
            None => client.invoke_async(&object, method, args, read_only, done),
            Some(ep) => client.invoke_async_at(ep, &object, method, args, read_only, done),
        }
    }

    // Drain stragglers (bounded by the client deadline plus slack).
    let drain_deadline = Instant::now() + Duration::from_secs(8);
    while stats.inflight.load(Ordering::Relaxed) > 0 && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut lat = std::mem::take(&mut *stats.lat_us.lock());
    lat.sort_unstable();
    let ok = stats.ok.load(Ordering::Relaxed);
    Point {
        offered: rate,
        issued,
        dropped,
        achieved: ok as f64 / window.as_secs_f64(),
        p50_ms: percentile_ms(&lat, 50.0),
        p95_ms: percentile_ms(&lat, 95.0),
        p99_ms: percentile_ms(&lat, 99.0),
        ok,
        overloaded: stats.overloaded.load(Ordering::Relaxed),
        deadline: stats.deadline.load(Ordering::Relaxed),
        other: stats.other.load(Ordering::Relaxed),
        max_inflight: stats.max_inflight.load(Ordering::Relaxed),
        node_shed: storage_shed(cluster.core()).saturating_sub(shed_before),
    }
}

fn build_cluster(mode: &str, sync_wal: bool) -> Cluster {
    let mut cfg = cluster_config();
    cfg.kv.sync_wal = sync_wal;
    // A deep run queue lets admitted requests wait for seconds before they
    // execute; a shallower one converts that queueing delay into early
    // Overloaded sheds, keeping the p99 of *admitted* requests bounded.
    cfg.run_queue_depth = env_usize("OPENLOOP_QUEUE_DEPTH", 256);
    match mode {
        "aggregated" => Cluster::Agg(AggregatedCluster::build(cfg).expect("cluster")),
        "disaggregated" => Cluster::Dis(DisaggregatedCluster::build(cfg).expect("cluster")),
        "serverless" => {
            let cold = Duration::from_millis(env_usize("SERVERLESS_COLD_MS", 100) as u64);
            Cluster::Srv(ServerlessCluster::build(cfg, cold).expect("cluster"))
        }
        other => panic!("unknown OPENLOOP_MODES entry {other:?}"),
    }
}

/// Deploy the User type and build the social graph. The graph setup runs
/// against the storage nodes directly (placement-routed) in every mode —
/// setup is not the measured path, and the storage layer is shared.
fn prepare(cluster: &Cluster, setup_cfg: &WorkloadConfig) {
    let storage_backend = Arc::new(AggregatedBackend { client: cluster.core().client() });
    storage_backend.deploy().expect("deploy to storage");
    if let Some(ep) = cluster.endpoint() {
        // The executing tier keeps its own module registry.
        let exec_backend = EndpointBackend {
            client: cluster.core().client(),
            endpoint: ep,
            name: cluster.label(),
        };
        exec_backend.deploy().expect("deploy to endpoint");
    }
    setup(&storage_backend, setup_cfg).expect("setup");
}

fn run_mode(mode: &str, rates: &[f64], setup_cfg: &WorkloadConfig) -> ModeResult {
    let sync_wal = env_usize("OPENLOOP_SYNC_WAL", 1) == 1;
    let window = Duration::from_secs_f64(env_f64("OPENLOOP_SECONDS", 2.0));
    let endpoints = env_usize("OPENLOOP_ENDPOINTS", 4).max(1);
    let max_inflight = env_usize("OPENLOOP_MAX_INFLIGHT", 20_000) as u64;

    // `arch` or `arch:mix` (e.g. `aggregated:read90`).
    let (arch, mix) = match mode.split_once(':') {
        Some((arch, mix)) => (arch, Mix::parse(mix)),
        None => (mode, Mix::Post),
    };
    eprintln!("[{mode}] building cluster (sync_wal={sync_wal})...");
    let cluster = build_cluster(arch, sync_wal);
    prepare(&cluster, setup_cfg);
    let clients: Vec<StoreClient> = (0..endpoints).map(|_| cluster.core().client()).collect();
    if let Mix::Read90 { pin_primary } = mix {
        for client in &clients {
            if pin_primary {
                client.pin_reads_to_primary(true);
            } else {
                client.enable_edge_cache(env_usize("OPENLOOP_EDGE_CACHE", 4096));
            }
        }
    }

    let mut points = Vec::new();
    for (i, &rate) in rates.iter().enumerate() {
        let p = run_rate(
            &cluster,
            &clients,
            setup_cfg.accounts,
            mix,
            rate,
            window,
            max_inflight,
            0x0930_1109 ^ (i as u64) << 8,
        );
        eprintln!(
            "[{mode}] offered {:>7.0}/s -> achieved {:>7.1}/s  p50 {:>8.2}ms  p99 {:>9.2}ms  \
             ok {} shed-term {} ddl {} err {} maxinfl {} node-shed {}",
            p.offered,
            p.achieved,
            p.p50_ms,
            p.p99_ms,
            p.ok,
            p.overloaded,
            p.deadline,
            p.other,
            p.max_inflight,
            p.node_shed,
        );
        points.push(p);
    }
    cluster.shutdown();

    // Knee: the highest offered rate still served at >= 95% goodput.
    let knee = points
        .iter()
        .rev()
        .find(|p| p.ok > 0 && p.achieved >= 0.95 * p.offered)
        .map_or((0.0, 0.0), |p| (p.offered, p.achieved));
    let peak = points.iter().map(|p| p.achieved).fold(0.0, f64::max);
    ModeResult {
        label: format!("{}{}", cluster.label(), mix.suffix()),
        points,
        knee_offered: knee.0,
        knee_achieved: knee.1,
        peak_achieved: peak,
    }
}

fn write_json(path: &str, window_s: f64, sync_wal: bool, modes: &[ModeResult]) {
    let mut out = format!(
        "{{\n  \"experiment\": \"OPENLOOP\",\n  \"workload\": \"per-mode mix (default Post)\",\n  \
         \"arrivals\": \"poisson\",\n  \"window_secs\": {window_s:.2},\n  \
         \"sync_wal\": {sync_wal},\n  \"modes\": [\n"
    );
    for (m, mode) in modes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"knee_offered\": {:.1}, \"knee_achieved\": {:.1}, \
             \"peak_achieved\": {:.1}, \"points\": [\n",
            mode.label, mode.knee_offered, mode.knee_achieved, mode.peak_achieved
        ));
        for (i, p) in mode.points.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"offered\": {:.1}, \"issued\": {}, \"dropped\": {}, \
                 \"achieved\": {:.1}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
                 \"p99_ms\": {:.3}, \"ok\": {}, \"overloaded\": {}, \"deadline\": {}, \
                 \"errors\": {}, \"max_inflight\": {}, \"node_shed\": {}}}{}\n",
                p.offered,
                p.issued,
                p.dropped,
                p.achieved,
                p.p50_ms,
                p.p95_ms,
                p.p99_ms,
                p.ok,
                p.overloaded,
                p.deadline,
                p.other,
                p.max_inflight,
                p.node_shed,
                if i + 1 == mode.points.len() { "" } else { "," },
            ));
        }
        out.push_str(&format!("    ]}}{}\n", if m + 1 == modes.len() { "" } else { "," }));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write json");
}

fn main() {
    let rates: Vec<f64> = std::env::var("OPENLOOP_RATES")
        .unwrap_or_else(|_| "50,100,200,400,600,800,1600".into())
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| s.trim().parse().expect("OPENLOOP_RATES entry"))
        .collect();
    let modes_env = std::env::var("OPENLOOP_MODES")
        .unwrap_or_else(|_| "aggregated,disaggregated,serverless".into());
    let setup_cfg = WorkloadConfig {
        accounts: env_usize("RETWIS_ACCOUNTS", 500),
        follows_per_account: env_usize("RETWIS_FOLLOWS", 5),
        zipf_theta: env_f64("RETWIS_THETA", 0.3),
        ..WorkloadConfig::default()
    };
    let window_s = env_f64("OPENLOOP_SECONDS", 2.0);
    let sync_wal = env_usize("OPENLOOP_SYNC_WAL", 1) == 1;
    let json_path =
        std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| "BENCH_openloop.json".into());

    println!(
        "openloop: per-mode mix (default Post), poisson arrivals, rates {rates:?}, \
         window {window_s}s, accounts {}",
        setup_cfg.accounts
    );

    let mut results = Vec::new();
    for mode in modes_env.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        results.push(run_mode(mode, &rates, &setup_cfg));
    }

    println!(
        "\n{:<14} {:>10} {:>10} {:>10} {:>10} {:>11} {:>9} {:>9}",
        "mode", "offered/s", "achieved", "p50 ms", "p99 ms", "max-infl", "shed", "knee"
    );
    for m in &results {
        for p in &m.points {
            let knee_mark =
                if (p.offered - m.knee_offered).abs() < f64::EPSILON { "<--" } else { "" };
            println!(
                "{:<14} {:>10.0} {:>10.1} {:>10.2} {:>10.2} {:>11} {:>9} {:>9}",
                m.label,
                p.offered,
                p.achieved,
                p.p50_ms,
                p.p99_ms,
                p.max_inflight,
                p.node_shed,
                knee_mark
            );
        }
        println!(
            "{:<14} knee: sustains {:.1}/s at {:.0}/s offered (peak {:.1}/s)\n",
            m.label, m.knee_achieved, m.knee_offered, m.peak_achieved
        );
    }

    write_json(&json_path, window_s, sync_wal, &results);
    println!("wrote {json_path}");
    println!(
        "\nshape: aggregated's knee sits well above both baselines (one\n\
         network hop, deferred pipeline); past the knee admission control\n\
         sheds load so the p99 of admitted requests stays bounded instead\n\
         of the queue growing without limit."
    );
}
