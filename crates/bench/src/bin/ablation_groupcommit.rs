//! Ablation ABL-GROUPCOMMIT: the two-layer commit pipeline on the
//! aggregated hot path.
//!
//! Sweeps client count {1, 8, 32, 100} x batching mode on the Post
//! workload with `sync_wal = true` (the durability configuration where
//! per-commit costs actually bite):
//!
//! * `off` — per-batch WAL append + fsync, one Replicate RPC per
//!   committed write set (the seed's behaviour);
//! * `wal` — WAL group commit on, replication still per-write;
//! * `wal+repl` — WAL group commit + per-shard replication windows
//!   coalesced into ReplicateBatch RPCs (the default).
//!
//! Emits `BENCH_groupcommit.json` (override the path with
//! `BENCH_JSON_PATH`) for EXPERIMENTS.md / CI.

use std::sync::Arc;
use std::time::Duration;

use lambda_bench::{cluster_config, env_f64, env_usize, ms};
use lambda_retwis::{run, setup, AggregatedBackend, Op, OpMix, WorkloadConfig};
use lambda_store::AggregatedCluster;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Off,
    WalOnly,
    WalRepl,
}

impl Mode {
    const ALL: [Mode; 3] = [Mode::Off, Mode::WalOnly, Mode::WalRepl];

    fn label(self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::WalOnly => "wal",
            Mode::WalRepl => "wal+repl",
        }
    }

    fn group_commit(self) -> bool {
        self != Mode::Off
    }

    fn repl_batching(self) -> bool {
        self == Mode::WalRepl
    }
}

struct Row {
    clients: usize,
    mode: Mode,
    ops_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    wal_mean_group: f64,
    repl_rounds: u64,
    repl_entries: u64,
}

fn run_cell(clients: usize, mode: Mode, base: &WorkloadConfig) -> Row {
    let mut cluster_cfg = cluster_config();
    cluster_cfg.kv.sync_wal = true;
    cluster_cfg.kv.group_commit = mode.group_commit();
    let cluster = AggregatedCluster::build(cluster_cfg).expect("cluster");
    for node in &cluster.core.storage {
        node.set_replication_batching(mode.repl_batching());
    }
    let backend = Arc::new(AggregatedBackend { client: cluster.client() });
    backend
        .client
        .deploy_type(
            lambda_retwis::USER_TYPE,
            lambda_retwis::user_fields(),
            &lambda_retwis::user_module(),
        )
        .expect("deploy");
    let config = WorkloadConfig { clients, ..base.clone() };
    setup(&backend, &config).expect("setup");
    let result = run(&backend, &config);

    let (groups, batches) = cluster
        .core
        .storage
        .iter()
        .map(|n| {
            let s = n.engine().db().stats();
            (s.commit_groups, s.commit_group_batches)
        })
        .fold((0u64, 0u64), |(g, b), (ng, nb)| (g + ng, b + nb));
    let (rounds, entries) = cluster
        .core
        .storage
        .iter()
        .map(|n| n.replication_batch_stats())
        .fold((0u64, 0u64), |(r, e), (nr, ne)| (r + nr, e + ne));
    cluster.shutdown();

    Row {
        clients,
        mode,
        ops_per_sec: result.throughput(),
        p50_ms: result.latency.median().as_secs_f64() * 1e3,
        p99_ms: result.latency.percentile(99.0).as_secs_f64() * 1e3,
        wal_mean_group: if groups == 0 { 0.0 } else { batches as f64 / groups as f64 },
        repl_rounds: rounds,
        repl_entries: entries,
    }
}

fn write_json(path: &str, rows: &[Row]) {
    let mut out = String::from(
        "{\n  \"experiment\": \"ABL-GROUPCOMMIT\",\n  \"workload\": \"Post\",\n  \
         \"sync_wal\": true,\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"clients\": {}, \"mode\": \"{}\", \"ops_per_sec\": {:.1}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"wal_mean_group\": {:.2}, \
             \"repl_rounds\": {}, \"repl_entries\": {}}}{}\n",
            r.clients,
            r.mode.label(),
            r.ops_per_sec,
            r.p50_ms,
            r.p99_ms,
            r.wal_mean_group,
            r.repl_rounds,
            r.repl_entries,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write json");
}

fn main() {
    let base = WorkloadConfig {
        accounts: env_usize("RETWIS_ACCOUNTS", 500),
        follows_per_account: env_usize("RETWIS_FOLLOWS", 5),
        duration: Duration::from_secs_f64(env_f64("RETWIS_SECONDS", 2.0)),
        mix: OpMix::only(Op::Post),
        ..WorkloadConfig::default()
    };
    let json_path =
        std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| "BENCH_groupcommit.json".into());
    println!(
        "ablation_groupcommit: Post workload, sync_wal=true, accounts={} window={:?}\n",
        base.accounts, base.duration
    );
    println!(
        "{:>8} {:<10} {:>12} {:>10} {:>10} {:>10} {:>12}",
        "clients", "mode", "ops/s", "p50 (ms)", "p99 (ms)", "wal grp", "repl win"
    );

    let mut rows = Vec::new();
    for clients in [1usize, 8, 32, 100] {
        for mode in Mode::ALL {
            let row = run_cell(clients, mode, &base);
            let repl_win = if row.repl_rounds == 0 {
                "-".to_string()
            } else {
                format!("{:.2}", row.repl_entries as f64 / row.repl_rounds as f64)
            };
            println!(
                "{:>8} {:<10} {:>12.0} {:>10} {:>10} {:>10.2} {:>12}",
                row.clients,
                row.mode.label(),
                row.ops_per_sec,
                ms(Duration::from_secs_f64(row.p50_ms / 1e3)),
                ms(Duration::from_secs_f64(row.p99_ms / 1e3)),
                row.wal_mean_group,
                repl_win,
            );
            rows.push(row);
        }
    }
    write_json(&json_path, &rows);
    println!("\nwrote {json_path}");

    // Headline: the speedup both layers buy at the highest client count.
    let hi = rows.iter().filter(|r| r.clients == 100);
    let off = hi.clone().find(|r| r.mode == Mode::Off).map_or(0.0, |r| r.ops_per_sec);
    let full = hi.clone().find(|r| r.mode == Mode::WalRepl).map_or(0.0, |r| r.ops_per_sec);
    if off > 0.0 {
        println!("100 clients: wal+repl = {:.2}x off (expected >= 1.5x with sync_wal)", full / off);
    }
    println!(
        "\nshape: at 1 client the three modes tie (nothing to coalesce); as\n\
         clients grow, group commit amortizes the per-commit fsync and the\n\
         replication window amortizes the per-commit backup round-trip, so\n\
         the gap widens with concurrency."
    );
}
