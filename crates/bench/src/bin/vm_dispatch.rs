//! BENCH-VM-DISPATCH: before/after numbers for the VM dispatch rewrite.
//!
//! Micro: the three ReTwis-shaped instruction mixes (decode-heavy,
//! field-access-heavy, host-call-heavy) executed by the reference
//! match-decode interpreter and by the pre-decoded threaded interpreter,
//! reported as inner-loop iterations per second.
//!
//! End-to-end: the aggregated cluster running Post-only and
//! GetTimeline-only ReTwis workloads with the engine flipped between the
//! two interpreters via `EngineConfig::reference_interpreter`.
//!
//! Emits `BENCH_vm_dispatch.json` (override with `BENCH_JSON_PATH`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use lambda_bench::{cluster_config, env_f64, env_usize};
use lambda_retwis::{run, setup, AggregatedBackend, Op, OpMix, WorkloadConfig};
use lambda_store::AggregatedCluster;
use lambda_vm::host::MemoryHost;
use lambda_vm::{assemble, Interpreter, Limits, Module, VmValue};

struct MicroRow {
    workload: &'static str,
    ref_ops: f64,
    thr_ops: f64,
}

struct E2eRow {
    workload: &'static str,
    engine: &'static str,
    ops_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn programs() -> Vec<(&'static str, Module, &'static str, i64)> {
    let decode = assemble(
        r#"
        fn spin(1) locals=3 {
            push.i 0
            store 1
            push.i 0
            store 2
        head:
            load 2
            load 0
            lt
            jz done
            load 1
            load 2
            add
            store 1
            load 2
            push.i 1
            add
            store 2
            jmp head
        done:
            load 1
            ret
        }
        "#,
    )
    .expect("decode_heavy assembles");
    let fields = assemble(
        r#"
        fn fields(1) locals=6 {
            push.s "user:"
            store 1
            push.i 0
            store 5
        head:
            load 5
            load 0
            lt
            jz done
            load 1
            load 5
            itob
            concat
            store 2
            load 2
            len
            store 3
            load 3
            store 4
            load 5
            push.i 1
            add
            store 5
            jmp head
        done:
            load 4
            ret
        }
        "#,
    )
    .expect("field_access_heavy assembles");
    let hosty = assemble(
        r#"
        fn hosty(1) locals=2 {
            push.i 0
            store 1
        head:
            load 1
            load 0
            lt
            jz done
            push.s "field"
            host.get
            pop
            push.s "tl"
            push.i 5
            push.i 1
            host.scan
            pop
            push.s "field"
            push.s "value"
            host.put
            pop
            load 1
            push.i 1
            add
            store 1
            jmp head
        done:
            unit
            ret
        }
        "#,
    )
    .expect("host_call_heavy assembles");
    vec![
        ("decode_heavy", decode, "spin", 2_000),
        ("field_access_heavy", fields, "fields", 1_000),
        ("host_call_heavy", hosty, "hosty", 200),
    ]
}

fn seeded_host() -> MemoryHost {
    let mut host = MemoryHost::default();
    host.fields.insert(b"field".to_vec(), b"value".to_vec());
    for i in 0..5u8 {
        host.collections.entry(b"tl".to_vec()).or_default().push(vec![i; 8]);
    }
    host
}

/// Iterations of the program's inner loop per second, measured over
/// `window` after a short warmup.
fn measure_micro(interp: &Interpreter, module: &Module, entry: &str, iters: i64) -> f64 {
    let mut host = seeded_host();
    let args = vec![VmValue::Int(iters)];
    let warmup_until = Instant::now() + Duration::from_millis(100);
    while Instant::now() < warmup_until {
        interp.execute(module, entry, args.clone(), &mut host).expect("micro program runs");
    }
    let window = Duration::from_secs_f64(env_f64("VM_DISPATCH_SECONDS", 0.4));
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed() < window {
        interp.execute(module, entry, args.clone(), &mut host).expect("micro program runs");
        calls += 1;
    }
    (calls as f64 * iters as f64) / start.elapsed().as_secs_f64()
}

fn run_e2e(workload: &'static str, op: Op, reference: bool, base: &WorkloadConfig) -> E2eRow {
    let mut cfg = cluster_config();
    cfg.engine.reference_interpreter = reference;
    let cluster = AggregatedCluster::build(cfg).expect("cluster");
    let backend = Arc::new(AggregatedBackend { client: cluster.client() });
    backend
        .client
        .deploy_type(
            lambda_retwis::USER_TYPE,
            lambda_retwis::user_fields(),
            &lambda_retwis::user_module(),
        )
        .expect("deploy");
    let config = WorkloadConfig { mix: OpMix::only(op), ..base.clone() };
    setup(&backend, &config).expect("setup");
    let result = run(&backend, &config);
    cluster.shutdown();
    E2eRow {
        workload,
        engine: if reference { "reference" } else { "threaded" },
        ops_per_sec: result.throughput(),
        p50_ms: result.latency.median().as_secs_f64() * 1e3,
        p99_ms: result.latency.percentile(99.0).as_secs_f64() * 1e3,
    }
}

fn write_json(path: &str, micro: &[MicroRow], e2e: &[E2eRow]) {
    let mut out = String::from("{\n  \"experiment\": \"BENCH-VM-DISPATCH\",\n  \"micro\": [\n");
    for (i, r) in micro.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"reference_ops_per_sec\": {:.0}, \
             \"threaded_ops_per_sec\": {:.0}, \"speedup\": {:.2}}}{}\n",
            r.workload,
            r.ref_ops,
            r.thr_ops,
            r.thr_ops / r.ref_ops,
            if i + 1 == micro.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"e2e\": [\n");
    for (i, r) in e2e.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"engine\": \"{}\", \"ops_per_sec\": {:.1}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
            r.workload,
            r.engine,
            r.ops_per_sec,
            r.p50_ms,
            r.p99_ms,
            if i + 1 == e2e.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write json");
}

fn main() {
    let json_path =
        std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| "BENCH_vm_dispatch.json".into());

    println!("vm_dispatch micro: inner-loop iterations/sec, reference vs threaded\n");
    println!(
        "{:>20} {:>16} {:>16} {:>9}",
        "workload", "reference it/s", "threaded it/s", "speedup"
    );
    let mut micro = Vec::new();
    for (name, module, entry, iters) in &programs() {
        let reference =
            measure_micro(&Interpreter::reference(Limits::default()), module, entry, *iters);
        let threaded = measure_micro(&Interpreter::new(Limits::default()), module, entry, *iters);
        println!(
            "{:>20} {:>16.0} {:>16.0} {:>8.2}x",
            name,
            reference,
            threaded,
            threaded / reference
        );
        micro.push(MicroRow { workload: name, ref_ops: reference, thr_ops: threaded });
    }

    let base = WorkloadConfig {
        accounts: env_usize("RETWIS_ACCOUNTS", 300),
        follows_per_account: env_usize("RETWIS_FOLLOWS", 5),
        clients: env_usize("RETWIS_CLIENTS", 8),
        duration: Duration::from_secs_f64(env_f64("RETWIS_SECONDS", 1.5)),
        ..WorkloadConfig::default()
    };
    println!("\nvm_dispatch e2e: aggregated cluster, {} clients\n", base.clients);
    println!(
        "{:>14} {:<10} {:>12} {:>10} {:>10}",
        "workload", "engine", "ops/s", "p50 (ms)", "p99 (ms)"
    );
    let mut e2e = Vec::new();
    for (name, op) in [("Post", Op::Post), ("GetTimeline", Op::GetTimeline)] {
        for reference in [true, false] {
            let row = run_e2e(name, op, reference, &base);
            println!(
                "{:>14} {:<10} {:>12.0} {:>10.3} {:>10.3}",
                row.workload, row.engine, row.ops_per_sec, row.p50_ms, row.p99_ms
            );
            e2e.push(row);
        }
    }

    write_json(&json_path, &micro, &e2e);
    println!("\nwrote {json_path}");

    for pair in e2e.chunks(2) {
        if let [r, t] = pair {
            if r.ops_per_sec > 0.0 {
                println!(
                    "{}: threaded = {:.2}x reference end-to-end",
                    r.workload,
                    t.ops_per_sec / r.ops_per_sec
                );
            }
        }
    }
}
