//! REBALANCE: hot-object rebalancing under a Zipf hotspot shift.
//!
//! Exercises the coordinator's load-adaptive rebalancer end to end: an
//! open-loop Poisson generator drives Zipf-skewed Post traffic at a
//! fixed offered rate. During the baseline phase the Zipf ranks are
//! interleaved across storage nodes, so every node carries a fair share
//! of the skew. At the shift instant the rank order is re-dealt so the
//! hottest objects all sit on ONE node (the "victim"): its run queue
//! saturates, achieved throughput dips, and requests shed. The
//! coordinator's rebalancer sees the victim's heartbeat load reports,
//! plans crash-safe migrations of its hottest objects onto the coolest
//! primaries, and throughput recovers without the generator ever
//! retargeting — clients just follow `ObjectMoved` and the new routing.
//!
//! Reported: per-window achieved throughput across both phases, the
//! pre-shift baseline, the post-shift dip, the recovered tail, and
//! `recovery_ratio = recovered / baseline` (target >= 0.8), plus the
//! migrations the rebalancer committed and the pins it left behind.
//!
//! Knobs (env): `REBALANCE_RATE` (offered req/s; 0, the default,
//! calibrates against measured cluster capacity),
//! `REBALANCE_LOAD_FRACTION` (auto-calibrated offered rate as a
//! fraction of measured capacity), `REBALANCE_OBJECTS`,
//! `REBALANCE_THETA` (Zipf exponent), `REBALANCE_BASELINE_SECONDS`,
//! `REBALANCE_SHIFT_SECONDS`, `REBALANCE_TAIL_SECONDS` (recovered-tail
//! window), `REBALANCE_WINDOW_MS`, `REBALANCE_INTERVAL_MS` (rebalancer
//! scan period), `REBALANCE_HOT_THRESHOLD` (invocations/beat floor),
//! `REBALANCE_MAX_INFLIGHT` (generator safety cap), plus the usual
//! `BENCH_RTT_US`. Emits `BENCH_rebalance.json` (override with
//! `BENCH_JSON_PATH`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use lambda_bench::{cluster_config, env_f64, env_usize};
use lambda_net::NodeId;
use lambda_objects::{InvokeError, ObjectId};
use lambda_retwis::{account_id, setup, AggregatedBackend, RetwisBackend, WorkloadConfig};
use lambda_store::{AggregatedCluster, StoreClient};
use lambda_vm::VmValue;

/// Per-window completion counters, indexed by completion time.
struct Windows {
    ok: Vec<AtomicU64>,
    errors: AtomicU64,
    overloaded: AtomicU64,
    deadline: AtomicU64,
    moved: AtomicU64,
    inflight: AtomicU64,
    start: Instant,
    width: Duration,
}

impl Windows {
    fn bucket(&self) -> usize {
        let idx = (self.start.elapsed().as_millis() / self.width.as_millis()) as usize;
        idx.min(self.ok.len() - 1)
    }
}

/// Zipf sampler over `n` ranks: weight of rank `i` is `(i+1)^-theta`.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, theta: f64) -> Zipf {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut SmallRng) -> usize {
        let total = *self.cdf.last().expect("non-empty");
        let u: f64 = rng.gen::<f64>() * total;
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Current primary node of each account object.
fn homes(probe: &StoreClient, objects: usize) -> Vec<NodeId> {
    probe.refresh();
    let state = probe.placement().snapshot();
    (0..objects)
        .map(|i| {
            let oid = account_id(i);
            let shard = state.shard_for_object(&oid).expect("account placed");
            state.shard(shard).expect("shard exists").primary
        })
        .collect()
}

/// Baseline rank order: deal objects round-robin across their home
/// nodes, so consecutive Zipf ranks land on different nodes and the
/// skew spreads evenly.
fn interleaved_ranks(home: &[NodeId]) -> Vec<usize> {
    let mut by_node: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
    for (i, n) in home.iter().enumerate() {
        by_node.entry(*n).or_default().push(i);
    }
    let mut groups: Vec<Vec<usize>> = by_node.into_values().collect();
    let mut order = Vec::with_capacity(home.len());
    let mut round = 0;
    loop {
        let mut any = false;
        for g in &mut groups {
            if let Some(&i) = g.get(round) {
                order.push(i);
                any = true;
            }
        }
        if !any {
            break;
        }
        round += 1;
    }
    order
}

/// Hotspot rank order: every object homed on `victim` first (they absorb
/// the head of the Zipf distribution), everything else after.
fn concentrated_ranks(home: &[NodeId], victim: NodeId) -> Vec<usize> {
    let mut order: Vec<usize> = (0..home.len()).filter(|&i| home[i] == victim).collect();
    order.extend((0..home.len()).filter(|&i| home[i] != victim));
    order
}

#[allow(clippy::too_many_lines)]
fn main() {
    let fixed_rate = env_f64("REBALANCE_RATE", 0.0);
    let fraction = env_f64("REBALANCE_LOAD_FRACTION", 0.8);
    let objects = env_usize("REBALANCE_OBJECTS", 64);
    let theta = env_f64("REBALANCE_THETA", 0.95);
    let baseline_s = env_f64("REBALANCE_BASELINE_SECONDS", 4.0);
    let shift_s = env_f64("REBALANCE_SHIFT_SECONDS", 10.0);
    let tail_s = env_f64("REBALANCE_TAIL_SECONDS", 3.0);
    let window_ms = env_usize("REBALANCE_WINDOW_MS", 500) as u64;
    let max_inflight = env_usize("REBALANCE_MAX_INFLIGHT", 20_000) as u64;
    let json_path =
        std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| "BENCH_rebalance.json".into());

    let mut cfg = cluster_config();
    cfg.storage_nodes = 4;
    cfg.shards = 8; // every node leads two shards: always somewhere to move load
    cfg.replication_factor = 2;
    cfg.kv.sync_wal = true;
    cfg.run_queue_depth = env_usize("REBALANCE_QUEUE_DEPTH", 256);
    cfg.rebalance_interval = Duration::from_millis(env_usize("REBALANCE_INTERVAL_MS", 200) as u64);
    cfg.hot_object_threshold = env_usize("REBALANCE_HOT_THRESHOLD", 8) as u64;
    println!(
        "rebalance: {objects} objects, zipf theta {theta}, \
         baseline {baseline_s}s + shifted {shift_s}s, rebalance every {:?} \
         (hot threshold {}/beat)",
        cfg.rebalance_interval, cfg.hot_object_threshold
    );

    let cluster = AggregatedCluster::build(cfg).expect("cluster");
    let backend = Arc::new(AggregatedBackend { client: cluster.core.client() });
    backend.deploy().expect("deploy");
    let setup_cfg = WorkloadConfig {
        accounts: objects,
        // No follow edges: a post touches only its author's object, so
        // load concentration is exactly the rank permutation.
        follows_per_account: 0,
        ..WorkloadConfig::default()
    };
    setup(&backend, &setup_cfg).expect("setup");

    let probe = cluster.core.client();
    let home = homes(&probe, objects);
    let baseline_order = interleaved_ranks(&home);
    // Victim: the node with the most homed objects, so the shift parks
    // as much of the Zipf head on one run queue as possible.
    let mut per_node: BTreeMap<NodeId, usize> = BTreeMap::new();
    for n in &home {
        *per_node.entry(*n).or_default() += 1;
    }
    let victim = *per_node.iter().max_by_key(|(n, c)| (**c, std::cmp::Reverse(**n))).unwrap().0;
    let shifted_order = concentrated_ranks(&home, victim);
    println!(
        "victim node-{} homes {} of {objects} objects; per-node {:?}",
        victim.0,
        per_node[&victim],
        per_node.iter().map(|(n, c)| (n.0, *c)).collect::<Vec<_>>()
    );

    let clients: Vec<StoreClient> = (0..4).map(|_| cluster.core.client()).collect();
    let zipf = Zipf::new(objects, theta);
    let mut rng = SmallRng::seed_from_u64(0x2eba_1a4c);

    // Pick the offered rate relative to what this host can actually
    // sustain: a short bounded-inflight burst of the *baseline* workload
    // (same Zipf skew, interleaved placement — so per-object lock
    // serialization on the head ranks is priced in) measures balanced
    // capacity, and the run offers `fraction` of it. The balanced
    // cluster then has headroom while the post-shift victim — carrying
    // nearly the whole Zipf head — saturates. A fixed absolute rate
    // would make the verdict depend on the host's CPU budget of the
    // moment.
    let rate = if fixed_rate > 0.0 {
        fixed_rate
    } else {
        let warmup = Duration::from_secs_f64(1.0);
        let burst = Duration::from_secs_f64(2.0);
        let probe_rate = 6000.0;
        let counted = Arc::new(AtomicU64::new(0));
        let inflight = Arc::new(AtomicU64::new(0));
        let start = Instant::now();
        let count_from = start + warmup;
        let count_until = start + burst;
        let mut next = 0.0f64;
        let mut n = 0u64;
        while start.elapsed() < burst {
            let target = start + Duration::from_secs_f64(next);
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
            let u: f64 = rng.gen();
            next += (-(1.0 - u).ln()).max(1e-9) / probe_rate;
            // Low inflight bound: measure what the cluster sustains at
            // sane queue depths, not the peak a deep backlog can drain.
            if inflight.load(Ordering::Relaxed) >= 128 {
                continue;
            }
            inflight.fetch_add(1, Ordering::Relaxed);
            n += 1;
            let object = ObjectId::new(account_id(baseline_order[zipf.sample(&mut rng)]));
            let counted = Arc::clone(&counted);
            let inflight = Arc::clone(&inflight);
            clients[n as usize % clients.len()].invoke_async(
                &object,
                "create_post",
                vec![VmValue::str("calibrate")],
                false,
                Box::new(move |result| {
                    let t = Instant::now();
                    if result.is_ok() && t >= count_from && t < count_until {
                        counted.fetch_add(1, Ordering::Relaxed);
                    }
                    inflight.fetch_sub(1, Ordering::Relaxed);
                }),
            );
        }
        let drain = Instant::now() + Duration::from_secs(5);
        while inflight.load(Ordering::Relaxed) > 0 && Instant::now() < drain {
            std::thread::sleep(Duration::from_millis(10));
        }
        let capacity = counted.load(Ordering::Relaxed) as f64 / (burst - warmup).as_secs_f64();
        let r = (capacity * fraction).clamp(300.0, 2500.0);
        println!("calibrated: cluster capacity ~{capacity:.0}/s -> offered {r:.0}/s");
        r
    };

    let total = Duration::from_secs_f64(baseline_s + shift_s);
    let n_windows = (total.as_millis() as u64 / window_ms + 2) as usize;
    let windows = Arc::new(Windows {
        ok: (0..n_windows).map(|_| AtomicU64::new(0)).collect(),
        errors: AtomicU64::new(0),
        overloaded: AtomicU64::new(0),
        deadline: AtomicU64::new(0),
        moved: AtomicU64::new(0),
        inflight: AtomicU64::new(0),
        start: Instant::now(),
        width: Duration::from_millis(window_ms),
    });

    let shift_at = windows.start + Duration::from_secs_f64(baseline_s);
    let mut order = &baseline_order;
    let mut next_s = 0.0f64;
    let mut issued = 0u64;
    let mut dropped = 0u64;

    while next_s < total.as_secs_f64() {
        let target = windows.start + Duration::from_secs_f64(next_s);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        if Instant::now() >= shift_at {
            order = &shifted_order;
        }
        let u: f64 = rng.gen();
        next_s += (-(1.0 - u).ln()).max(1e-9) / rate;

        if windows.inflight.load(Ordering::Relaxed) >= max_inflight {
            dropped += 1;
            continue;
        }
        issued += 1;
        let object = ObjectId::new(account_id(order[zipf.sample(&mut rng)]));
        windows.inflight.fetch_add(1, Ordering::Relaxed);
        let w = Arc::clone(&windows);
        let done = Box::new(move |result: Result<VmValue, InvokeError>| {
            match result {
                Ok(_) => {
                    w.ok[w.bucket()].fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    match e {
                        InvokeError::Overloaded(_) => w.overloaded.fetch_add(1, Ordering::Relaxed),
                        InvokeError::DeadlineExceeded => w.deadline.fetch_add(1, Ordering::Relaxed),
                        InvokeError::ObjectMoved(_) => w.moved.fetch_add(1, Ordering::Relaxed),
                        _ => 0,
                    };
                    w.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            w.inflight.fetch_sub(1, Ordering::Relaxed);
        });
        let client = &clients[issued as usize % clients.len()];
        client.invoke_async(
            &object,
            "create_post",
            vec![VmValue::str(format!("rebalance {issued}"))],
            false,
            done,
        );
    }

    let drain_deadline = Instant::now() + Duration::from_secs(8);
    while windows.inflight.load(Ordering::Relaxed) > 0 && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(10));
    }

    let per_window: Vec<u64> = windows.ok.iter().map(|w| w.load(Ordering::Relaxed)).collect();
    let rate_of = |w: u64| w as f64 * 1000.0 / window_ms as f64;
    let shift_win = (baseline_s * 1000.0 / window_ms as f64) as usize;
    let warmup = (1000 / window_ms).max(1) as usize; // skip the first second
    let tail = ((tail_s * 1000.0) as u64 / window_ms).max(1) as usize;
    let used = ((total.as_millis() as u64) / window_ms) as usize;

    let baseline_avg =
        per_window[warmup.min(shift_win)..shift_win].iter().map(|&w| rate_of(w)).sum::<f64>()
            / (shift_win - warmup.min(shift_win)).max(1) as f64;
    let dip = per_window[shift_win..used.min(shift_win + 2 * warmup).max(shift_win + 1)]
        .iter()
        .map(|&w| rate_of(w))
        .fold(f64::INFINITY, f64::min);
    let recovered_avg =
        per_window[used.saturating_sub(tail)..used].iter().map(|&w| rate_of(w)).sum::<f64>()
            / tail.min(used) as f64;
    let recovery_ratio = if baseline_avg > 0.0 { recovered_avg / baseline_avg } else { 0.0 };

    // Per-replica counters see every chosen command, so the logical count
    // is the max across replicas, not the sum.
    let committed = cluster
        .core
        .coordinators
        .iter()
        .map(|c| c.registry().counter_value("coord_migrations_committed"))
        .max()
        .unwrap_or(0);
    let aborted = cluster
        .core
        .coordinators
        .iter()
        .map(|c| c.registry().counter_value("coord_migrations_aborted"))
        .max()
        .unwrap_or(0);
    let pins = cluster
        .core
        .coordinators
        .iter()
        .map(|c| c.registry().gauge_value("coord_pins"))
        .max()
        .unwrap_or(0);
    let fenced: u64 = cluster
        .core
        .storage
        .iter()
        .map(|n| n.registry().counter_value("node_migration_fenced"))
        .sum();

    println!("\n  t(s)   achieved/s");
    for (i, &w) in per_window[..used].iter().enumerate() {
        let t = (i as u64 * window_ms) as f64 / 1000.0;
        let mark = if i == shift_win { "  <-- hotspot shift" } else { "" };
        println!("{t:>6.1} {:>12.1}{mark}", rate_of(w));
    }
    println!(
        "\nbaseline {baseline_avg:.1}/s, post-shift dip {dip:.1}/s, recovered \
         {recovered_avg:.1}/s -> recovery ratio {recovery_ratio:.3} (target >= 0.8)\n\
         migrations committed {committed}, aborted {aborted}, pins {pins}, \
         writes fenced {fenced}, issued {issued}, dropped {dropped}, errors {} \
         (overloaded {} deadline {} moved {})",
        windows.errors.load(Ordering::Relaxed),
        windows.overloaded.load(Ordering::Relaxed),
        windows.deadline.load(Ordering::Relaxed),
        windows.moved.load(Ordering::Relaxed),
    );

    let mut out = format!(
        "{{\n  \"experiment\": \"REBALANCE\",\n  \
         \"workload\": \"zipf hotspot shift, open-loop Post\",\n  \
         \"offered_rate\": {rate:.1},\n  \"objects\": {objects},\n  \
         \"zipf_theta\": {theta},\n  \"victim_node\": {},\n  \
         \"window_ms\": {window_ms},\n  \"shift_window\": {shift_win},\n  \
         \"baseline_rate\": {baseline_avg:.1},\n  \"dip_rate\": {dip:.1},\n  \
         \"recovered_rate\": {recovered_avg:.1},\n  \
         \"recovery_ratio\": {recovery_ratio:.3},\n  \"recovery_target\": 0.8,\n  \
         \"recovered\": {},\n  \"migrations_committed\": {committed},\n  \
         \"migrations_aborted\": {aborted},\n  \"pins\": {pins},\n  \
         \"writes_fenced\": {fenced},\n  \"issued\": {issued},\n  \
         \"dropped\": {dropped},\n  \"errors\": {},\n  \"windows\": [\n",
        victim.0,
        recovery_ratio >= 0.8,
        windows.errors.load(Ordering::Relaxed),
    );
    for (i, &w) in per_window[..used].iter().enumerate() {
        out.push_str(&format!(
            "    {{\"t_s\": {:.1}, \"achieved\": {:.1}}}{}\n",
            (i as u64 * window_ms) as f64 / 1000.0,
            rate_of(w),
            if i + 1 == used { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&json_path, out).expect("write json");
    println!("wrote {json_path}");

    cluster.shutdown();
}
