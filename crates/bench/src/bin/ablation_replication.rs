//! Ablation ABL-REPL: primary-backup replication cost (§4.2.1).
//!
//! Sweeps the replication factor (1 = no backups, 2, 3 = the paper's
//! replica set) and runs the Post workload. Each additional backup adds
//! one synchronous intra-replica-set round-trip per commit — the paper's
//! claim is that "a function invocation results in at most one network
//! round-trip within the responsible replica set" (backups are contacted
//! in parallel conceptually; here sequentially, an upper bound).

use std::sync::Arc;
use std::time::Duration;

use lambda_bench::{cluster_config, env_f64, env_usize, ms};
use lambda_retwis::{run, setup, AggregatedBackend, Op, OpMix, WorkloadConfig};
use lambda_store::AggregatedCluster;

fn main() {
    let config = WorkloadConfig {
        accounts: env_usize("RETWIS_ACCOUNTS", 500),
        clients: env_usize("RETWIS_CLIENTS", 32),
        follows_per_account: env_usize("RETWIS_FOLLOWS", 5),
        duration: Duration::from_secs_f64(env_f64("RETWIS_SECONDS", 3.0)),
        mix: OpMix::only(Op::Post),
        ..WorkloadConfig::default()
    };
    println!(
        "ablation_replication: Post workload, accounts={} clients={} window={:?}\n",
        config.accounts, config.clients, config.duration
    );
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>16}",
        "replication", "ops/s", "p50 (ms)", "p99 (ms)", "repl. applied"
    );
    for rf in [1usize, 2, 3] {
        let mut cluster_cfg = cluster_config();
        cluster_cfg.replication_factor = rf;
        let cluster = AggregatedCluster::build(cluster_cfg).expect("cluster");
        let backend = Arc::new(AggregatedBackend { client: cluster.client() });
        backend
            .client
            .deploy_type(
                lambda_retwis::USER_TYPE,
                lambda_retwis::user_fields(),
                &lambda_retwis::user_module(),
            )
            .expect("deploy");
        setup(&backend, &config).expect("setup");
        let result = run(&backend, &config);
        let replications: u64 =
            cluster.core.storage.iter().map(|n| n.stats().replications_applied).sum();
        cluster.shutdown();
        println!(
            "{:<22} {:>12.0} {:>12} {:>12} {:>16}",
            format!("rf={rf} ({} backups)", rf - 1),
            result.throughput(),
            ms(result.latency.median()),
            ms(result.latency.percentile(99.0)),
            replications,
        );
    }
    println!(
        "\nshape: each backup adds roughly one intra-replica-set round-trip of\n\
         latency to every commit; rf=3 (the paper's setup) still keeps Post\n\
         latency far below the disaggregated baseline because the execution\n\
         itself pays no storage round-trips."
    );
}
